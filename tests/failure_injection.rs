//! Failure injection across layers: malformed inputs and broken
//! configurations must produce diagnostics, not panics or silent
//! misbehaviour.

use qurator::prelude::*;
use qurator::spec::{ActionDecl, ActionKind, AssertionDecl, TagKind, VarDecl};
use qurator_rdf::namespace::q;
use qurator_rdf::term::Term;

fn engine() -> QualityEngine {
    QualityEngine::with_proteomics_defaults().expect("engine")
}

fn hits(n: usize) -> DataSet {
    let mut ds = DataSet::new();
    for i in 0..n {
        ds.push(
            Term::iri(format!("urn:lsid:t:h:{i}")),
            [
                ("hitRatio", EvidenceValue::from(0.1 * i as f64)),
                ("massCoverage", EvidenceValue::from(3.0 * i as f64)),
                ("peptidesCount", EvidenceValue::from(i as i64)),
            ],
        );
    }
    ds
}

#[test]
fn malformed_xml_views_are_rejected_with_positions() {
    for (xml, needle) in [
        ("<QualityView name='v'><Annotator/></QualityView>", "variables"),
        ("<QualityView name='v'><action name='a'><filter/></action></QualityView>", "condition"),
        ("<QualityView", "xml"),
        ("", "xml"),
        ("<QualityView name='v'><action name='a'><filter><condition>)</condition></filter></action></QualityView>", "syntax"),
    ] {
        let err = qurator::xmlio::parse_quality_view(xml)
            .map(|spec| engine().validate(&spec).map(|_| ()))
            .map_or_else(|e| e.to_string(), |r| r.map_or_else(|e| e.to_string(), |_| String::new()));
        assert!(
            err.to_lowercase().contains(&needle.to_lowercase()),
            "xml {xml:?} should mention {needle:?}, got {err:?}"
        );
    }
}

#[test]
fn unknown_evidence_and_services_fail_validation_not_execution() {
    let engine = engine();
    let mut spec = QualityViewSpec::paper_example();
    spec.assertions[0].variables[0] = VarDecl::named("coverage", "q:NotAnEvidenceType");
    let err = engine.execute_view(&spec, &hits(3)).unwrap_err();
    // validation failures now carry the full collect-all diagnostic list
    assert!(matches!(err, qurator::QuratorError::Diagnostics(_)), "{err}");
    assert!(err.to_string().contains("not a QualityEvidence"), "{err}");
}

#[test]
fn condition_referencing_future_tag_is_rejected() {
    let engine = engine();
    let mut spec = QualityViewSpec::paper_example();
    // move the classifier before its input score QA
    let classifier = spec.assertions.remove(2);
    spec.assertions.insert(0, classifier);
    let err = engine.validate(&spec).unwrap_err();
    assert!(err.to_string().contains("no earlier assertion"), "{err}");
}

#[test]
fn empty_dataset_flows_through_cleanly() {
    let engine = engine();
    let outcome = engine
        .execute_view(&QualityViewSpec::paper_example(), &DataSet::new())
        .expect("empty data is not an error");
    assert!(outcome.groups.iter().all(|g| g.dataset.is_empty()));
}

#[test]
fn single_item_collections_survive_degenerate_statistics() {
    // avg ± stddev over one element: stddev 0 → everything is "mid"
    let engine = engine();
    let outcome = engine.execute_view(&QualityViewSpec::paper_example(), &hits(1)).expect("runs");
    // condition requires HR_MC > 20; a lone z-score is 0 → rejected
    assert!(outcome.groups[0].dataset.is_empty());
}

#[test]
fn dataset_with_missing_fields_yields_null_tags_not_errors() {
    let engine = engine();
    let mut ds = DataSet::new();
    // one full row, one with only hitRatio
    ds.push(
        Term::iri("urn:lsid:t:h:full"),
        [
            ("hitRatio", EvidenceValue::from(0.9)),
            ("massCoverage", EvidenceValue::from(40.0)),
            ("peptidesCount", EvidenceValue::from(10i64)),
        ],
    );
    ds.push(Term::iri("urn:lsid:t:h:sparse"), [("hitRatio", EvidenceValue::from(0.9))]);
    let mut spec = QualityViewSpec::paper_example();
    spec.actions[0].kind = ActionKind::Filter { condition: "ScoreClass in q:high, q:mid".into() };
    let outcome = engine.execute_view(&spec, &ds).expect("runs");
    let kept = &outcome.groups[0];
    // the sparse item's HR_MC is Null → its class is Null → filtered out
    assert_eq!(kept.dataset.items(), &[Term::iri("urn:lsid:t:h:full")]);
}

#[test]
fn duplicate_group_names_rejected() {
    let engine = engine();
    let mut spec = QualityViewSpec::paper_example();
    spec.actions[0].kind = ActionKind::Split {
        groups: vec![("g".into(), "HR_MC > 0".into()), ("g".into(), "HR_MC < 0".into())],
    };
    assert!(engine.validate(&spec).is_err());
}

#[test]
fn repository_type_violation_surfaces_at_execution() {
    // an assertion service that tries to write its tag as *evidence* of a
    // non-evidence class would be refused by the repository; simulate by
    // annotating directly
    let engine = engine();
    let cache = engine.catalog().get_or_create_cache("cache");
    let err = cache
        .annotate(&Term::iri("urn:lsid:t:h:1"), &q::iri("UniversalPIScore"), 1.0.into())
        .unwrap_err();
    assert!(err.to_string().contains("QualityEvidence"));
}

#[test]
fn division_by_zero_in_condition_is_reported() {
    let engine = engine();
    let mut spec = QualityViewSpec::paper_example();
    spec.actions[0].kind = ActionKind::Filter { condition: "HR_MC / 0 > 1".into() };
    let err = engine.execute_view(&spec, &hits(3)).unwrap_err();
    assert!(err.to_string().contains("division"), "{err}");
}

#[test]
fn deep_chain_of_tag_dependencies_compiles_and_runs() {
    // stress the compiler's chaining logic: QA_i consumes tag of QA_{i-1}
    let engine = engine();
    let mut spec = QualityViewSpec::new("chain");
    spec.annotators = QualityViewSpec::paper_example().annotators;
    spec.assertions.push(AssertionDecl {
        service_name: "base".into(),
        service_type: "q:UniversalPIScore".into(),
        tag_name: "T0".into(),
        tag_kind: TagKind::Score,
        tag_sem_type: None,
        repository_ref: "cache".into(),
        variables: vec![VarDecl::named("hitratio", "q:HitRatio")],
    });
    for i in 1..6 {
        spec.assertions.push(AssertionDecl {
            service_name: format!("link{i}"),
            service_type: "q:UniversalPIScore".into(),
            tag_name: format!("T{i}"),
            tag_kind: TagKind::Score,
            tag_sem_type: None,
            repository_ref: "cache".into(),
            variables: vec![VarDecl::named("hitratio", format!("tag:T{}", i - 1))],
        });
    }
    spec.actions.push(ActionDecl {
        name: "keep".into(),
        kind: ActionKind::Filter { condition: "T5 > 0".into() },
    });
    // validator must pass; but the annotator provides MC/PC that nothing
    // consumes → trim its variables to hitRatio only
    spec.annotators[0].variables = vec![VarDecl::evidence("q:HitRatio")];

    let dataset = hits(6);
    let direct = engine.execute_view(&spec, &dataset).expect("interprets");
    engine.finish_execution();
    let (compiled, _) = engine.execute_compiled(&spec, &dataset).expect("compiled");
    assert_eq!(direct, compiled);
    assert!(!direct.groups[0].dataset.is_empty());
}
