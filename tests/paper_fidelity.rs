//! Fidelity checks against specific sentences of the paper: the concrete
//! artifacts it prints (the §5.1 XML fragments, the §4.1 operator
//! semantics, the §6.1 compilation rules, Figure 2's annotation encoding)
//! must hold in this implementation.

use qurator::prelude::*;
use qurator::spec::ActionKind;
use qurator_rdf::namespace::q;
use qurator_rdf::term::Term;

#[test]
fn section_5_1_annotator_fragment_parses() {
    // near-verbatim from the paper (evidence names adapted to the IQ
    // model's registered types)
    let xml = r#"
      <QualityView name="fragment">
        <Annotator serviceName="ImprintOutputAnnotator"
                   serviceType="q:ImprintOutputAnnotation">
          <variables repositoryRef="cache" persistent="false">
            <var evidence="q:MassCoverage"/>
            <var evidence="q:HitRatio"/>
          </variables>
        </Annotator>
        <QualityAssertion serviceName="HR_MC_score" serviceType="q:UniversalPIScore2"
                          tagName="HR_MC" tagSynType="q:score">
          <variables repositoryRef="cache">
            <var variableName="coverage" evidence="q:MassCoverage"/>
            <var variableName="hitratio" evidence="q:HitRatio"/>
            <var variableName="peptidescount" evidence="q:PeptidesCount"/>
          </variables>
        </QualityAssertion>
        <action name="filter top k score">
          <filter>
            <condition>HR_MC &gt; 20</condition>
          </filter>
        </action>
      </QualityView>"#;
    let spec = qurator::xmlio::parse_quality_view(xml).expect("parses");
    assert_eq!(spec.annotators[0].repository_ref, "cache");
    assert!(!spec.annotators[0].persistent, "annotations valid for one execution");
    assert_eq!(spec.assertions[0].tag_name, "HR_MC");
}

#[test]
fn section_4_1_condition_examples_evaluate() {
    use qurator_expr::{parse, Env, Value};
    // "score < 3.2"
    let e = parse("score < 3.2").expect("parses");
    let mut env = Env::new();
    env.bind("score", Value::Num(2.0));
    assert!(e.accepts(&env).unwrap());
    // "PIScoreClassification IN { high, mid }"
    let e = parse("PIScoreClassification IN { 'high', 'mid' }").expect("parses");
    let mut env = Env::new();
    env.bind("PIScoreClassification", Value::symbol("q:mid"));
    assert!(e.accepts(&env).unwrap());
    env.bind("PIScoreClassification", Value::symbol("q:low"));
    assert!(!e.accepts(&env).unwrap());
}

#[test]
fn figure_2_annotation_encoding_matches() {
    // "P30089 is a Uniprot accession number, the LSID-wrapper of which is
    // the URN shown in the oval. The standard rdf:type property indicates
    // that this is an instance of Imprint Hit Entry. The data is annotated
    // with literal-encoded RDF values for quality evidence…"
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let cache = engine.catalog().get_or_create_cache("cache");
    let p30089 = Term::iri("urn:lsid:uniprot.org:uniprot:P30089");
    cache.record_item_type(&p30089, &q::iri("ImprintHitEntry")).expect("typed");
    cache.annotate(&p30089, &q::iri("HitRatio"), 0.82.into()).expect("annotated");
    cache.annotate(&p30089, &q::iri("MassCoverage"), 31.into()).expect("annotated");

    // the annotation graph answers the paper's canonical SPARQL shape
    let rows = cache
        .query(
            r#"PREFIX q: <http://qurator.org/iq#>
               PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               SELECT ?v WHERE {
                 <urn:lsid:uniprot.org:uniprot:P30089> rdf:type q:ImprintHitEntry ;
                     q:contains-evidence ?e .
                 ?e rdf:type q:HitRatio ; q:value ?v .
               }"#,
        )
        .expect("queries");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get("v").and_then(|t| t.as_literal()).and_then(|l| l.as_f64()), Some(0.82));
}

#[test]
fn section_6_1_compile_rules_hold() {
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let wf = engine.compile(&QualityViewSpec::paper_example()).expect("compiles");

    // "one single Data Enrichment (DE) operator"
    let de_nodes = wf.nodes().filter(|n| n.contains("DataEnrichment")).count();
    assert_eq!(de_nodes, 1);

    // "a control link is also installed from each of the annotators to the DE"
    assert!(wf
        .control_links()
        .iter()
        .any(|(a, b)| a == "ImprintOutputAnnotator" && b == "DataEnrichment"));

    // "the output from the DE … feeds all the QA processors" (modulo the
    // tag-chained classifier) and "data connectors are installed from each
    // of the QAs" to the consolidation task
    for qa in ["HR_MC_score", "HR_score", "PIScoreClassifier"] {
        assert!(wf
            .data_links()
            .iter()
            .any(|l| l.from.processor == qa && l.to.processor == "ConsolidateAssertions"));
    }

    // "the ConsolidateAssertions task is added by the compiler"
    assert!(wf.nodes().any(|n| n == "ConsolidateAssertions"));

    // annotators precede the DE, which precedes QAs, which precede actions
    let order = wf.topological_order().expect("acyclic");
    let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
    assert!(pos("ImprintOutputAnnotator") < pos("DataEnrichment"));
    assert!(pos("DataEnrichment") < pos("HR_MC_score"));
    assert!(pos("HR_MC_score") < pos("PIScoreClassifier"));
    assert!(pos("ConsolidateAssertions") < pos("filter top k score"));
}

#[test]
fn section_4_1_splitter_semantics() {
    // "The output consists of k+1 sets of pairs (D_i, Amap_i) … the
    // k+1-th output is a default group … groups D_1…D_k, not necessarily
    // disjoint"
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let mut spec = QualityViewSpec::paper_example();
    spec.actions[0].kind = ActionKind::Split {
        groups: vec![
            ("positive".into(), "HR_MC > 0".into()),
            ("strong-or-positive".into(), "HR_MC > -1".into()),
        ],
    };
    let mut dataset = DataSet::new();
    for (i, hr) in [0.9, 0.7, 0.3, 0.1].iter().enumerate() {
        dataset.push(
            Term::iri(format!("urn:lsid:t:h:{i}")),
            [
                ("hitRatio", EvidenceValue::from(*hr)),
                ("massCoverage", EvidenceValue::from(*hr * 50.0)),
                ("peptidesCount", EvidenceValue::from((*hr * 10.0) as i64)),
            ],
        );
    }
    let outcome = engine.execute_view(&spec, &dataset).expect("runs");
    assert_eq!(outcome.groups.len(), 3, "k groups + default");
    let positive = outcome.group("filter top k score/positive").unwrap();
    let superset = outcome.group("filter top k score/strong-or-positive").unwrap();
    // overlap allowed: every positive item is also in the superset group
    for item in positive.dataset.items() {
        assert!(superset.dataset.items().contains(item));
    }
    // default holds exactly the items in no group
    let default = outcome.group("filter top k score/default").unwrap();
    for item in dataset.items() {
        let in_any =
            positive.dataset.items().contains(item) || superset.dataset.items().contains(item);
        assert_eq!(default.dataset.items().contains(item), !in_any);
    }
    // each group ships its restricted annotation map (D_i, Amap_i)
    for group in &outcome.groups {
        assert_eq!(group.map.len(), group.dataset.len());
    }
}

#[test]
fn run_time_model_views_apply_to_any_annotated_dataset() {
    // "a view is applicable to any data set for which evidence values are
    // available for the required evidence types" — run the same view over
    // two entirely different data domains
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let view = {
        let mut v = QualityViewSpec::paper_example();
        v.annotators.clear(); // enrichment-only
        v.actions[0].kind = ActionKind::Filter { condition: "HR_MC > 0".into() };
        v
    };
    let cache = engine.catalog().get_or_create_cache("cache");
    for (domain, count) in [("proteins", 4u32), ("spectra", 3)] {
        for i in 0..count {
            let item = Term::iri(format!("urn:lsid:test:{domain}:{i}"));
            cache.annotate(&item, &q::iri("HitRatio"), (i as f64).into()).unwrap();
            cache.annotate(&item, &q::iri("MassCoverage"), (i as f64).into()).unwrap();
            cache.annotate(&item, &q::iri("PeptidesCount"), (i as f64).into()).unwrap();
        }
        let dataset = DataSet::from_items(
            (0..count).map(|i| Term::iri(format!("urn:lsid:test:{domain}:{i}"))),
        );
        let outcome = engine.execute_view(&view, &dataset).expect("runs");
        assert!(!outcome.groups[0].dataset.is_empty(), "domain {domain}");
    }
}
