//! Persistence integration: Turtle round-trips of annotation
//! repositories, cache clearing between executions, and the warm-store
//! execution path (§4's persistent-annotation scenario).

use qurator::prelude::*;
use qurator::spec::{ActionDecl, ActionKind, AssertionDecl, TagKind, VarDecl};
use qurator_rdf::namespace::q;
use qurator_rdf::term::Term;
use std::sync::Arc;

fn item(n: u32) -> Term {
    Term::iri(format!("urn:lsid:uniprot.org:uniprot:P{n:05}"))
}

/// A view with no annotators: all evidence must come from the repository.
fn enrichment_only_view(repo: &str) -> QualityViewSpec {
    let mut spec = QualityViewSpec::new("warm");
    spec.assertions.push(AssertionDecl {
        service_name: "score".into(),
        service_type: "q:UniversalPIScore".into(),
        tag_name: "S".into(),
        tag_kind: TagKind::Score,
        tag_sem_type: None,
        repository_ref: repo.into(),
        variables: vec![VarDecl::named("hitratio", "q:HitRatio")],
    });
    spec.actions.push(ActionDecl {
        name: "keep".into(),
        kind: ActionKind::Filter { condition: "S > 0".into() },
    });
    spec
}

#[test]
fn turtle_snapshot_restores_execution_behaviour() {
    // engine A: populate a persistent repository and run
    let engine_a = QualityEngine::with_proteomics_defaults().expect("engine");
    let uniprot_a = engine_a.catalog().create("uniprot", true).expect("create");
    for i in 0..20u32 {
        uniprot_a
            .annotate(&item(i), &q::iri("HitRatio"), (i as f64 / 20.0).into())
            .expect("annotate");
    }
    let dataset = DataSet::from_items((0..20).map(item));
    let view = enrichment_only_view("uniprot");
    let outcome_a = engine_a.execute_view(&view, &dataset).expect("runs");

    // snapshot → engine B
    let turtle = uniprot_a.export_turtle();
    let engine_b = QualityEngine::with_proteomics_defaults().expect("engine");
    let uniprot_b = engine_b.catalog().create("uniprot", true).expect("create");
    uniprot_b.import_turtle(&turtle).expect("import");
    let outcome_b = engine_b.execute_view(&view, &dataset).expect("runs");

    assert_eq!(outcome_a, outcome_b);
    assert_eq!(uniprot_a.triple_count(), uniprot_b.triple_count());
}

#[test]
fn cache_clearing_isolates_executions() {
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let dataset = {
        let mut ds = DataSet::new();
        for i in 0..5u32 {
            ds.push(
                item(i),
                [
                    ("hitRatio", EvidenceValue::from(0.2 * i as f64)),
                    ("massCoverage", EvidenceValue::from(8.0 * i as f64)),
                    ("peptidesCount", EvidenceValue::from(i as i64)),
                ],
            );
        }
        ds
    };
    engine.execute_view(&QualityViewSpec::paper_example(), &dataset).expect("runs");
    let cache = engine.catalog().get("cache").expect("created by run");
    assert!(cache.triple_count() > 0, "annotations written");
    assert!(!cache.is_persistent());
    let cleared = engine.finish_execution();
    assert_eq!(cleared, 1);
    assert_eq!(cache.triple_count(), 0, "cache dropped between executions");
}

#[test]
fn persistent_repositories_survive_finish_execution() {
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let uniprot = engine.catalog().create("uniprot", true).expect("create");
    uniprot.annotate(&item(1), &q::iri("HitRatio"), 0.9.into()).expect("annotate");
    engine.finish_execution();
    assert_eq!(uniprot.triple_count(), 3);
}

#[test]
fn stale_warm_store_yields_nulls_not_errors() {
    // items never annotated: enrichment yields nulls, the score QA tags
    // Null, the filter rejects — no failures anywhere
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    engine.catalog().create("uniprot", true).expect("create");
    let dataset = DataSet::from_items((100..105).map(item));
    let outcome = engine.execute_view(&enrichment_only_view("uniprot"), &dataset).expect("runs");
    assert!(outcome.groups[0].dataset.is_empty());
}

#[test]
fn concurrent_views_share_one_persistent_repository() {
    let engine = Arc::new(QualityEngine::with_proteomics_defaults().expect("engine"));
    let uniprot = engine.catalog().create("uniprot", true).expect("create");
    for i in 0..50u32 {
        uniprot.annotate(&item(i), &q::iri("HitRatio"), (i as f64).into()).expect("annotate");
    }
    let view = enrichment_only_view("uniprot");
    std::thread::scope(|scope| {
        for worker in 0..4u32 {
            let engine = engine.clone();
            let view = view.clone();
            scope.spawn(move || {
                let dataset = DataSet::from_items((worker * 10..worker * 10 + 10).map(item));
                let outcome = engine.execute_view(&view, &dataset).expect("runs");
                assert_eq!(outcome.groups.len(), 1);
            });
        }
    });
}
