//! The soundness property behind the `qv check` CI gate: any view the
//! analyzer accepts (zero error-severity diagnostics from the full
//! lint + bindings + workflow pipeline) must also compile into a
//! workflow and enact end-to-end without an execution failure. In other
//! words, `qv check` is allowed to be strict, but a green check must
//! never be followed by a red run.
//!
//! Views are generated over the stock proteomics vocabulary: a random
//! subset of the three assertion chains (HR, HR_MC, ScoreClass), random
//! comparison operators and thresholds, and a random filter-or-splitter
//! action over the produced tags. The generator is *mostly* correct by
//! construction, but splitter-group interplay, threshold choices and
//! tag usage still exercise the QV019/QV022/QV023 analyses; any case
//! the analyzer rejects is skipped, and the rejection itself is
//! asserted to carry error diagnostics (never an empty verdict).

use proptest::prelude::*;
use qurator::prelude::*;
use qurator::spec::{ActionDecl, ActionKind, AnnotatorDecl, AssertionDecl, TagKind, VarDecl};
use qurator_qvlint::Severity;
use qurator_rdf::lsid::LsidAuthority;
use std::sync::OnceLock;

/// A small synthetic Imprint result set: enough spread in the evidence
/// values that z-scores land on both sides of every threshold.
fn dataset() -> &'static DataSet {
    static DATA: OnceLock<DataSet> = OnceLock::new();
    DATA.get_or_init(|| {
        let authority = LsidAuthority::new("example.org", "hit");
        let mut ds = DataSet::new();
        for i in 0..16i64 {
            let item = authority.term(format!("P{i:02}"));
            ds.push(
                item,
                [
                    ("hitRatio", EvidenceValue::from(0.05 * i as f64)),
                    ("massCoverage", EvidenceValue::from(0.9 - 0.04 * i as f64)),
                    ("peptidesCount", EvidenceValue::from(3 + (i * 7) % 11)),
                ],
            );
        }
        ds
    })
}

fn engine() -> QualityEngine {
    QualityEngine::with_proteomics_defaults().expect("stock engine")
}

const OPS: [&str; 4] = [">", ">=", "<", "<="];
const LABELS: [&str; 3] = ["q:low", "q:mid", "q:high"];

/// A single comparison over a numeric tag. Thresholds are centred on 0
/// because the stock assertions emit z-scores.
fn numeric_clause(tag: &str, op: u8, threshold: i8) -> String {
    format!("{tag} {} {}", OPS[op as usize % OPS.len()], f64::from(threshold) / 8.0)
}

/// A membership test over the classification tag; `mask` selects a
/// non-empty subset of the model's labels.
fn class_clause(mask: u8) -> String {
    let mask = if mask.is_multiple_of(8) { 1 } else { mask % 8 };
    let chosen: Vec<&str> =
        LABELS.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, l)| *l).collect();
    format!("ScoreClass in {}", chosen.join(", "))
}

struct Shape {
    use_score2: bool,
    use_classifier: bool,
}

/// Builds a coherent view for the chosen shape: the annotator provides
/// exactly the evidence the assertions consume, and the condition reads
/// every produced tag (so the generator never trips the dead-evidence
/// and dead-tag analyses by accident — those have their own corpus
/// fixtures).
fn build_view(shape: &Shape, conditions: Vec<String>, split: bool) -> QualityViewSpec {
    let mut evidence = vec![VarDecl::evidence("q:HitRatio")];
    let mut assertions = vec![AssertionDecl {
        service_name: "hr".into(),
        service_type: "q:UniversalPIScore".into(),
        tag_name: "HR".into(),
        tag_kind: TagKind::Score,
        tag_sem_type: None,
        repository_ref: "cache".into(),
        variables: vec![VarDecl::named("hitratio", "q:HitRatio")],
    }];
    if shape.use_score2 {
        evidence.push(VarDecl::evidence("q:MassCoverage"));
        evidence.push(VarDecl::evidence("q:PeptidesCount"));
        assertions.push(AssertionDecl {
            service_name: "score".into(),
            service_type: "q:UniversalPIScore2".into(),
            tag_name: "HR_MC".into(),
            tag_kind: TagKind::Score,
            tag_sem_type: None,
            repository_ref: "cache".into(),
            variables: vec![
                VarDecl::named("coverage", "q:MassCoverage"),
                VarDecl::named("hitratio", "q:HitRatio"),
                VarDecl::named("peptidescount", "q:PeptidesCount"),
            ],
        });
        if shape.use_classifier {
            assertions.push(AssertionDecl {
                service_name: "classify".into(),
                service_type: "q:PIScoreClassifier".into(),
                tag_name: "ScoreClass".into(),
                tag_kind: TagKind::Class,
                tag_sem_type: Some("q:PIScoreClassification".into()),
                repository_ref: "cache".into(),
                variables: vec![VarDecl::named("score", "tag:HR_MC")],
            });
        }
    }
    let kind = if split && conditions.len() >= 2 {
        ActionKind::Split {
            groups: conditions.into_iter().enumerate().map(|(i, c)| (format!("g{i}"), c)).collect(),
        }
    } else {
        ActionKind::Filter { condition: conditions.join(" and ") }
    };
    QualityViewSpec {
        name: "generated".into(),
        annotators: vec![AnnotatorDecl {
            service_name: "imprint".into(),
            service_type: "q:ImprintOutputAnnotation".into(),
            repository_ref: "cache".into(),
            persistent: false,
            variables: evidence,
        }],
        assertions,
        actions: vec![ActionDecl { name: "act".into(), kind }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    /// Accepted views compile and enact; rejected views always explain
    /// themselves with at least one error diagnostic.
    #[test]
    fn checked_views_enact_without_execution_errors(
        use_score2 in any::<bool>(),
        use_classifier in any::<bool>(),
        split in any::<bool>(),
        ops in proptest::array::uniform3(0u8..4),
        thresholds in proptest::array::uniform3(-20i8..20),
        label_mask in 0u8..8,
    ) {
        let shape = Shape { use_score2, use_classifier };
        let mut conditions = vec![numeric_clause("HR", ops[0], thresholds[0])];
        if shape.use_score2 {
            conditions.push(numeric_clause("HR_MC", ops[1], thresholds[1]));
            if shape.use_classifier {
                conditions.push(class_clause(label_mask));
            }
        }
        // A second clause over an existing tag makes splitter groups
        // genuinely different and occasionally subsumed/equivalent.
        conditions.push(numeric_clause("HR", ops[2], thresholds[2]));
        let spec = build_view(&shape, conditions, split);

        let engine = engine();
        let diags = engine.check(&spec, None);
        if qurator_qvlint::has_errors(&diags) {
            // Rejections must be explained: at least one error diagnostic
            // with a registered code.
            prop_assert!(
                diags.iter().any(|d| d.severity == Severity::Error),
                "has_errors with no error diagnostic: {diags:?}"
            );
        } else {
            // The property: a green check means the view compiles …
            let workflow = engine.compile(&spec);
            prop_assert!(workflow.is_ok(), "accepted view failed to compile: {workflow:?}");
            // … and enacts with no execution (or any other) failure.
            let outcome = engine.execute_view(&spec, dataset());
            engine.finish_execution();
            prop_assert!(outcome.is_ok(), "accepted view failed to enact: {:?}", outcome.err());
        }
    }
}

// ---------------------------------------------------------------------------
// Plan-equivalence property (the optimizer-soundness gate)
// ---------------------------------------------------------------------------

/// A span-free, order-insensitive projection of one item's decision
/// trace: evidence (property, value, source), assertions (tag, value,
/// producing service) and actions (group, outcome, condition). Span ids
/// differ between runs by construction, so they are dropped; everything
/// else must agree.
type TraceProjection = (
    Vec<(String, String, Option<String>)>,
    Vec<(String, String, Option<String>)>,
    Vec<(String, String, Option<String>)>,
);

fn project_ledger(
    engine: &QualityEngine,
    with_sources: bool,
) -> std::collections::BTreeMap<String, TraceProjection> {
    engine
        .ledger()
        .items()
        .into_iter()
        .map(|item| {
            let trace = engine.why(&item).expect("ledger listed the item");
            let mut evidence: Vec<_> = trace
                .evidence
                .iter()
                .map(|e| {
                    let source =
                        if with_sources { e.source.as_ref().map(|s| s.to_string()) } else { None };
                    (e.property.to_string(), e.value.to_string(), source)
                })
                .collect();
            evidence.sort();
            let mut assertions: Vec<_> = trace
                .assertions
                .iter()
                .map(|a| {
                    (
                        a.property.to_string(),
                        a.value.to_string(),
                        a.assertion.as_ref().map(|s| s.to_string()),
                    )
                })
                .collect();
            assertions.sort();
            let mut actions: Vec<_> = trace
                .actions
                .iter()
                .map(|a| {
                    (
                        a.group.to_string(),
                        a.outcome.to_string(),
                        a.condition.as_ref().map(|c| c.to_string()),
                    )
                })
                .collect();
            actions.sort();
            (item, (evidence, assertions, actions))
        })
        .collect()
}

/// Runs the direct interpreter on a fresh engine under `config`, with the
/// decision ledger on.
fn run_interpreted(
    spec: &QualityViewSpec,
    config: &qurator_plan::PlanConfig,
    with_sources: bool,
) -> (qurator::engine::ActionOutcome, std::collections::BTreeMap<String, TraceProjection>) {
    let engine = engine();
    engine.set_provenance_enabled(true);
    let outcome = engine.execute_view_with(spec, dataset(), config).expect("accepted view runs");
    let ledger = project_ledger(&engine, with_sources);
    engine.finish_execution();
    (outcome, ledger)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// For every view the analyzer accepts, three executions must agree:
    /// the interpreter over the optimized plan, the interpreter over the
    /// `--no-opt` baseline plan, and the compiled wave engine. Agreement
    /// covers the [`ActionOutcome`] (groups, members, maps) and the
    /// per-item `why(item)` decision ledgers.
    #[test]
    fn optimized_baseline_and_compiled_executions_agree(
        use_score2 in any::<bool>(),
        use_classifier in any::<bool>(),
        split in any::<bool>(),
        ops in proptest::array::uniform3(0u8..4),
        thresholds in proptest::array::uniform3(-20i8..20),
        label_mask in 0u8..8,
    ) {
        let shape = Shape { use_score2, use_classifier };
        let mut conditions = vec![numeric_clause("HR", ops[0], thresholds[0])];
        if shape.use_score2 {
            conditions.push(numeric_clause("HR_MC", ops[1], thresholds[1]));
            if shape.use_classifier {
                conditions.push(class_clause(label_mask));
            }
        }
        conditions.push(numeric_clause("HR", ops[2], thresholds[2]));
        let spec = build_view(&shape, conditions, split);

        if qurator_qvlint::has_errors(&engine().check(&spec, None)) {
            continue; // rejected views are covered by the property above
        }

        let optimize = qurator_plan::PlanConfig { optimize: true };
        let baseline = qurator_plan::PlanConfig { optimize: false };

        // interpreter, optimized plan vs --no-opt baseline: everything
        // must match, including evidence sources
        let (opt_outcome, opt_ledger) = run_interpreted(&spec, &optimize, true);
        let (raw_outcome, raw_ledger) = run_interpreted(&spec, &baseline, true);
        prop_assert_eq!(&opt_outcome, &raw_outcome, "optimizer changed the outcome");
        prop_assert_eq!(&opt_ledger, &raw_ledger, "optimizer changed the decision ledger");

        // compiled wave engine: same outcome; the ledger is reconstructed
        // from the surviving group maps, so compare the survivors'
        // records without the interpreter-only source attribution
        let compiled_engine = engine();
        compiled_engine.set_provenance_enabled(true);
        let (compiled_outcome, _report) =
            compiled_engine.execute_compiled(&spec, dataset()).expect("accepted view enacts");
        let compiled_ledger = project_ledger(&compiled_engine, false);
        compiled_engine.finish_execution();
        prop_assert_eq!(&opt_outcome, &compiled_outcome, "paths disagree on the outcome");

        let (_, sourceless_ledger) = run_interpreted(&spec, &optimize, false);
        // ledger keys are the bare IRI of the item term
        let survivors: std::collections::BTreeSet<String> = compiled_outcome
            .groups
            .iter()
            .flat_map(|g| {
                g.dataset.items().iter().map(|t| {
                    t.as_iri().map(|i| i.as_str().to_string()).unwrap_or_else(|| t.to_string())
                })
            })
            .collect();
        prop_assert!(
            compiled_outcome.groups.iter().all(|g| g.dataset.is_empty())
                || !survivors.is_disjoint(&compiled_ledger.keys().cloned().collect()),
            "survivor keys never match ledger keys — projection is vacuous"
        );
        for (item, compiled_projection) in &compiled_ledger {
            let interpreted = sourceless_ledger.get(item);
            prop_assert!(interpreted.is_some(), "compiled-only ledger item {item}");
            let interpreted = interpreted.unwrap();
            // action records exist for every item on both paths
            prop_assert_eq!(&interpreted.2, &compiled_projection.2, "actions differ for {}", item);
            // evidence/assertion records are reconstructed for survivors
            if survivors.contains(item) {
                prop_assert_eq!(&interpreted.0, &compiled_projection.0, "evidence differs for {}", item);
                prop_assert_eq!(&interpreted.1, &compiled_projection.1, "assertions differ for {}", item);
            }
        }
    }
}
