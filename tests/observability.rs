//! Continuous-observability integration: the retention ring, the drift
//! monitor and the ledger republish path exercised through the engine on
//! the Figure 7 workload (§6.3).
//!
//! Two properties from the PR's acceptance list live here:
//!
//! * an injected shift in the QA classification mix (two windows with
//!   different class distributions) must surface as a threshold-crossing
//!   event in the engine's decision ledger;
//! * the JSON-lines export of the trace ring (`/traces/recent`) must
//!   agree with the in-memory retained set on exactly which span ids were
//!   kept, stay schema-valid, and never produce torn records while
//!   enactments run in parallel.

use std::collections::HashSet;
use std::sync::Mutex;

use qurator::prelude::*;
use qurator_proteomics::{World, WorldConfig};
use qurator_repro::ispider::{figure7_view, hits_to_dataset};
use qurator_telemetry::{drift, json, schema, DriftConfig, TelemetryConfig};

/// The drift monitor is process-global (by design — it mirrors the
/// metrics registry), so the tests in this binary serialise on it.
static DRIFT_LOCK: Mutex<()> = Mutex::new(());

fn figure7_dataset(world: &World) -> DataSet {
    let peak_list = &world.peak_lists()[0];
    let hits = world.imprint.search(peak_list);
    let dataset = hits_to_dataset(&peak_list.spot_id, &hits);
    assert!(!dataset.is_empty(), "spot produces hits");
    dataset
}

#[test]
fn injected_class_shift_crosses_the_threshold_into_the_ledger() {
    let _guard = DRIFT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let world = World::generate(&WorldConfig::paper_scale(42)).expect("testbed");
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    engine.enable_observability(&TelemetryConfig {
        drift: DriftConfig { window: 50, threshold: 0.2 },
        ..TelemetryConfig::default()
    });

    let spec = figure7_view();
    let dataset = figure7_dataset(&world);

    // the QA operator path feeds the monitor: after a run, the view's
    // classification assertion has a window under observation
    engine.execute_view(&spec, &dataset).expect("first run");
    assert!(
        drift::global().snapshot().iter().any(|s| s.assertion == "ScoreClass"),
        "assert_quality feeds the process-global drift monitor"
    );

    // injected shift on a dedicated assertion stream: the first window
    // (all q:high) becomes the reference, the second (all q:low) is a
    // disjoint mix -> L1 = 1.0, far beyond the 0.2 threshold
    drift::global().observe_bulk("ObsTestAssertion", &[("q:high", 50u64)]);
    drift::global().observe_bulk("ObsTestAssertion", &[("q:low", 50u64)]);

    // crossings are republished into the decision ledger when the next
    // enactment finishes (the engine polls its drift cursor per trace)
    engine.execute_view(&spec, &dataset).expect("second run");
    let events = engine.ledger().events();
    let event = events
        .iter()
        .find(|e| {
            e.kind.as_ref() == "qa.drift.threshold" && e.subject.as_ref() == "ObsTestAssertion"
        })
        .unwrap_or_else(|| panic!("no drift event in ledger, got {events:?}"));
    assert!(
        event.detail.contains("L1=1.000"),
        "disjoint mixes are maximally distant: {}",
        event.detail
    );

    // the comparison also left its gauge in the metrics exposition
    let exposition = qurator_telemetry::metrics().render_prometheus();
    assert!(
        exposition.contains("qa.drift.distance{assertion=\"ObsTestAssertion\"} 1000"),
        "{exposition}"
    );
}

#[test]
fn ring_export_agrees_with_memory_under_parallel_enactment() {
    let _guard = DRIFT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let world = World::generate(&WorldConfig::paper_scale(7)).expect("testbed");
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let retainer = engine.enable_observability(&TelemetryConfig {
        trace_capacity: 64,
        sample_rate: 1.0,
        ..TelemetryConfig::default()
    });

    let spec = figure7_view();
    let dataset = figure7_dataset(&world);
    const WRITERS: usize = 4;
    const RUNS: usize = 8;

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| {
                for _ in 0..RUNS {
                    engine.execute_view(&spec, &dataset).expect("parallel run");
                }
            });
        }
        // a concurrent reader snapshots the export mid-flight: whatever it
        // sees must already be schema-valid (no torn or half-written records)
        scope.spawn(|| {
            for _ in 0..24 {
                let jsonl = retainer.recent_jsonl(usize::MAX);
                if !jsonl.is_empty() {
                    schema::validate_trace_jsonl(&jsonl).expect("mid-flight export is well-formed");
                }
                std::thread::yield_now();
            }
        });
    });

    // quiescent: keep-all sampling and capacity > runs means every
    // enactment was retained
    let retained = retainer.recent(usize::MAX);
    assert_eq!(retained.len(), WRITERS * RUNS);
    assert!(retainer.resident() <= retainer.capacity());

    // the export and the in-memory ring agree on the retained span ids
    let jsonl = retainer.recent_jsonl(usize::MAX);
    let span_count = schema::validate_trace_jsonl(&jsonl).expect("final export is schema-valid");
    assert_eq!(span_count, retained.iter().map(|r| r.trace.len()).sum::<usize>());
    let exported_ids: HashSet<u64> = jsonl
        .lines()
        .filter_map(|line| {
            let value = json::parse(line).ok()?;
            if value.get("type")?.as_str()? != "span" {
                return None;
            }
            value.get("id")?.as_u64()
        })
        .collect();
    let memory_ids: HashSet<u64> =
        retained.iter().flat_map(|r| r.trace.spans().iter().map(|s| s.id.0)).collect();
    assert_eq!(exported_ids, memory_ids, "export and ring disagree on retained span ids");
    assert_eq!(exported_ids.len(), span_count, "span ids are globally unique across traces");
}
