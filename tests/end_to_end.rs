//! End-to-end integration: the complete §6.3 experiment through every
//! layer — XML quality view, semantic validation, both execution paths,
//! workflow embedding, and the Figure 7 statistics.

use qurator::deploy::DeploymentPlan;
use qurator::prelude::*;
use qurator_proteomics::{World, WorldConfig};
use qurator_repro::ispider::{figure7_view, hits_to_dataset, FIGURE7_GROUP};
use qurator_repro::{significance_ranking, IspiderPipeline};
use qurator_workflow::PortRef;

fn world() -> World {
    World::generate(&WorldConfig::paper_scale(42)).expect("testbed")
}

#[test]
fn figure7_experiment_reproduces_paper_shape() {
    let world = world();
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let pipeline = IspiderPipeline::new(&world, &engine);

    let unfiltered = pipeline.run_unfiltered();
    let filtered = pipeline.run_filtered(&figure7_view(), FIGURE7_GROUP).expect("runs");

    // paper: 10 spots, ~500 GO-term occurrences before filtering
    assert_eq!(world.peak_lists().len(), 10);
    assert!(
        (300..800).contains(&unfiltered.total_go_occurrences()),
        "got {}",
        unfiltered.total_go_occurrences()
    );

    // filtering keeps a strict, non-empty subset
    assert!(filtered.total_go_occurrences() > 0);
    assert!(filtered.total_go_occurrences() < unfiltered.total_go_occurrences());

    // the quantitative claim behind the paper's qualitative one
    assert!(filtered.precision() > 2.0 * unfiltered.precision());
    assert!(filtered.recall() > 0.5, "filtering must not destroy recall");

    // Figure 7's point: the ranking is substantially reordered
    let (rows, stats) = significance_ranking(&unfiltered, &filtered);
    assert!(stats.rank_correlation < 0.8, "correlation {}", stats.rank_correlation);
    // rows are sorted by ratio descending
    assert!(rows.windows(2).all(|w| w[0].ratio >= w[1].ratio));
    // a term with low original frequency reaches the top region
    let top5_min_orig_rank = rows.iter().take(5).map(|r| r.original_rank).max().unwrap();
    assert!(
        top5_min_orig_rank > stats.terms / 4,
        "some top-significance term must come from deep in the original ranking"
    );
}

#[test]
fn interpreter_and_compiled_agree_on_real_spots() {
    let world = world();
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let view = figure7_view();

    for peak_list in world.peak_lists().iter().take(3) {
        let hits = world.imprint.search(peak_list);
        let dataset = hits_to_dataset(&peak_list.spot_id, &hits);

        let interpreted = engine.execute_view(&view, &dataset).expect("interprets");
        engine.finish_execution();
        let (compiled, _) = engine.execute_compiled(&view, &dataset).expect("compiles+runs");
        engine.finish_execution();
        assert_eq!(interpreted, compiled, "spot {}", peak_list.spot_id);
    }
}

#[test]
fn xml_roundtripped_view_behaves_identically() {
    let world = world();
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let view = figure7_view();
    let xml = qurator::xmlio::spec_to_xml(&view);
    let reparsed = qurator::xmlio::parse_quality_view(&xml).expect("parses");
    assert_eq!(view, reparsed);

    let peak_list = &world.peak_lists()[0];
    let dataset = hits_to_dataset(&peak_list.spot_id, &world.imprint.search(peak_list));
    let a = engine.execute_view(&view, &dataset).expect("runs");
    engine.finish_execution();
    let b = engine.execute_view(&reparsed, &dataset).expect("runs");
    engine.finish_execution();
    assert_eq!(a, b);
}

#[test]
fn embedded_workflow_matches_direct_pipeline() {
    use qurator_workflow::{Context, Data, Enactor};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    let world = Arc::new(world());
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let quality = engine.compile(&figure7_view()).expect("compiles");

    let mut hosted = bench_host::build_host(world.clone());
    let plan = DeploymentPlan {
        prefix: "qv".into(),
        severed: (
            PortRef::new(bench_host::nodes::IMPRINT, "hits"),
            PortRef::new(bench_host::nodes::GOA, "hits"),
        ),
        input_adapter: ("adapt-in".into(), bench_host::input_adapter()),
        output_group: FIGURE7_GROUP.into(),
        output_adapter: ("adapt-out".into(), bench_host::output_adapter()),
    };
    plan.apply(&mut hosted, &quality).expect("embeds");

    let report = Enactor::new().run(&hosted, &BTreeMap::new(), &Context::new()).expect("enacts");
    let total: f64 =
        report.outputs["go_counts"].as_record().unwrap().values().filter_map(Data::as_number).sum();
    engine.finish_execution();

    let engine2 = QualityEngine::with_proteomics_defaults().expect("engine");
    let direct = IspiderPipeline::new(&world, &engine2)
        .run_filtered(&figure7_view(), FIGURE7_GROUP)
        .expect("runs");
    assert_eq!(total as usize, direct.total_go_occurrences());
}

#[test]
fn different_seeds_preserve_the_shape() {
    for seed in [7u64, 99, 1234] {
        let world = World::generate(&WorldConfig::paper_scale(seed)).expect("testbed");
        let engine = QualityEngine::with_proteomics_defaults().expect("engine");
        let pipeline = IspiderPipeline::new(&world, &engine);
        let unfiltered = pipeline.run_unfiltered();
        let filtered = pipeline.run_filtered(&figure7_view(), FIGURE7_GROUP).expect("runs");
        assert!(
            filtered.precision() > unfiltered.precision(),
            "seed {seed}: {} !> {}",
            filtered.precision(),
            unfiltered.precision()
        );
        assert!(filtered.total_go_occurrences() < unfiltered.total_go_occurrences());
    }
}

/// Re-exports of the bench crate's host-workflow builders would create a
/// dev-dependency cycle, so the host workflow is duplicated here in its
/// minimal form.
mod bench_host {
    use qurator::convert;
    use qurator_proteomics::World;
    use qurator_repro::ispider::hits_to_dataset;
    use qurator_workflow::{Data, FnProcessor, PortRef, Processor, Workflow, WorkflowError};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    pub mod nodes {
        pub const PEDRO: &str = "PedroFetch";
        pub const IMPRINT: &str = "ImprintSearch";
        pub const GOA: &str = "GoaLookup";
        pub const AGGREGATE: &str = "AggregateTerms";
    }

    pub fn build_host(world: Arc<World>) -> Workflow {
        let mut wf = Workflow::new("ispider-analysis");
        let pedro_world = world.clone();
        let pedro = FnProcessor::new(nodes::PEDRO, &[], &["spots"], move |_, _| {
            let spots: Vec<Data> =
                pedro_world.peak_lists().iter().map(|pl| Data::Text(pl.spot_id.clone())).collect();
            Ok(BTreeMap::from([("spots".to_string(), Data::List(spots))]))
        });
        let imprint_world = world.clone();
        let imprint = FnProcessor::map1(nodes::IMPRINT, "spot", "hits", move |spot, _| {
            let spot_id = spot.as_text().expect("spot id");
            let peak_list =
                imprint_world.pedro.spot(&imprint_world.experiment, spot_id).map_err(|e| {
                    WorkflowError::Execution {
                        processor: nodes::IMPRINT.into(),
                        message: e.to_string(),
                    }
                })?;
            let hits = imprint_world.imprint.search(peak_list);
            Ok(convert::dataset_to_data(&hits_to_dataset(spot_id, &hits)))
        });
        let goa_world = world.clone();
        let goa = FnProcessor::map1(nodes::GOA, "hits", "terms", move |hits, _| {
            let dataset = convert::data_to_dataset(hits).map_err(|e| WorkflowError::Execution {
                processor: nodes::GOA.into(),
                message: e.to_string(),
            })?;
            let mut terms = Vec::new();
            for item in dataset.items() {
                if let Some(accession) = dataset.field(item, "accession").as_text() {
                    for association in goa_world.goa.lookup(accession) {
                        terms.push(Data::Text(association.term_id.clone()));
                    }
                }
            }
            Ok(Data::List(terms))
        });
        let aggregate =
            FnProcessor::new(nodes::AGGREGATE, &[("terms", 2)], &["go_counts"], |inputs, _| {
                let mut counts: BTreeMap<String, Data> = BTreeMap::new();
                fn walk(v: &Data, counts: &mut BTreeMap<String, Data>) {
                    match v {
                        Data::Text(term) => {
                            let slot = counts.entry(term.clone()).or_insert(Data::Number(0.0));
                            if let Data::Number(n) = slot {
                                *n += 1.0;
                            }
                        }
                        Data::List(items) => items.iter().for_each(|i| walk(i, counts)),
                        _ => {}
                    }
                }
                walk(inputs.get("terms").unwrap_or(&Data::Null), &mut counts);
                Ok(BTreeMap::from([("go_counts".to_string(), Data::Record(counts))]))
            });
        wf.add(nodes::PEDRO, Arc::new(pedro)).unwrap();
        wf.add(nodes::IMPRINT, Arc::new(imprint)).unwrap();
        wf.add(nodes::GOA, Arc::new(goa)).unwrap();
        wf.add(nodes::AGGREGATE, Arc::new(aggregate)).unwrap();
        wf.link(nodes::PEDRO, "spots", nodes::IMPRINT, "spot").unwrap();
        wf.link(nodes::IMPRINT, "hits", nodes::GOA, "hits").unwrap();
        wf.link(nodes::GOA, "terms", nodes::AGGREGATE, "terms").unwrap();
        wf.declare_output("go_counts", PortRef::new(nodes::AGGREGATE, "go_counts")).unwrap();
        wf
    }

    pub fn input_adapter() -> Arc<dyn Processor> {
        Arc::new(FnProcessor::map1("qv-dataset-in", "in", "out", |v, _| Ok(v.clone())))
    }

    pub fn output_adapter() -> Arc<dyn Processor> {
        Arc::new(FnProcessor::map1("qv-dataset-out", "in", "out", |v, _| {
            v.field("dataset").cloned().ok_or_else(|| WorkflowError::Execution {
                processor: "qv-dataset-out".into(),
                message: "expected an action group record".into(),
            })
        }))
    }
}

#[test]
fn multi_action_views_agree_across_paths() {
    use qurator::spec::{ActionDecl, ActionKind};
    use qurator_rdf::term::Term;
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let mut spec = QualityViewSpec::paper_example();
    spec.actions[0].kind = ActionKind::Filter { condition: "HR_MC > 0".into() };
    spec.actions.push(ActionDecl {
        name: "triage".into(),
        kind: ActionKind::Split {
            groups: vec![
                ("hi".into(), "ScoreClass in q:high".into()),
                ("lo".into(), "ScoreClass in q:low".into()),
            ],
        },
    });
    let mut dataset = DataSet::new();
    for (i, hr) in [0.9f64, 0.6, 0.3, 0.1].iter().enumerate() {
        dataset.push(
            Term::iri(format!("urn:lsid:t:h:{i}")),
            [
                ("hitRatio", EvidenceValue::from(*hr)),
                ("massCoverage", EvidenceValue::from(hr * 50.0)),
                ("peptidesCount", EvidenceValue::from((hr * 10.0) as i64)),
            ],
        );
    }
    let interpreted = engine.execute_view(&spec, &dataset).expect("interprets");
    engine.finish_execution();
    let (compiled, _) = engine.execute_compiled(&spec, &dataset).expect("compiles");
    assert_eq!(interpreted, compiled);
    assert_eq!(
        interpreted.group_names(),
        vec!["filter top k score", "triage/hi", "triage/lo", "triage/default"]
    );
}
