//! Golden EXPLAIN snapshots: the `qv plan` text rendering of every view
//! under `samples/` and `examples/` is pinned in `tests/plan_golden/`,
//! in both optimized (`<stem>.plan.txt`) and `--no-opt` baseline
//! (`<stem>.noopt.plan.txt`) form. The text renderer is deliberately
//! duration-free, so the snapshots are stable across machines.
//!
//! When a plan change is intentional, regenerate with
//!
//! ```text
//! UPDATE_PLAN_GOLDEN=1 cargo test --test plan_golden
//! ```
//!
//! The JSON rendering of every plan is additionally validated against
//! the in-tree schema (the same check `qv plan-check` runs in CI).

use qurator::prelude::*;
use qurator_plan::{render, schema, PlanConfig};
use std::path::{Path, PathBuf};

/// Every `.xml` quality view under `samples/` and `examples/`.
fn view_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in ["samples", "examples"] {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "xml") {
                files.push(path);
            }
        }
    }
    files.sort();
    assert!(!files.is_empty(), "no sample views found — looked under samples/ and examples/");
    files
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/plan_golden")
}

fn check_snapshot(name: &str, rendered: &str, mismatches: &mut Vec<String>) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_PLAN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    match std::fs::read_to_string(&path) {
        Err(_) => mismatches.push(format!(
            "{name}: snapshot missing — run UPDATE_PLAN_GOLDEN=1 cargo test --test plan_golden"
        )),
        Ok(expected) if expected != rendered => mismatches.push(format!(
            "{name}: plan rendering changed.\n--- expected\n{expected}\n--- actual\n{rendered}"
        )),
        Ok(_) => {}
    }
}

#[test]
fn every_sample_view_matches_its_golden_plan() {
    let mut mismatches = Vec::new();
    for path in view_files() {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let spec =
            qurator::xmlio::parse_quality_view(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let optimized = engine.plan(&spec).unwrap();
        let baseline = engine.plan_with(&spec, &PlanConfig { optimize: false }).unwrap();
        check_snapshot(
            &format!("{stem}.plan.txt"),
            &render::render_text(&optimized),
            &mut mismatches,
        );
        check_snapshot(
            &format!("{stem}.noopt.plan.txt"),
            &render::render_text(&baseline),
            &mut mismatches,
        );
        for plan in [&optimized, &baseline] {
            let json = render::render_json(plan);
            if let Err(e) = schema::validate_plan_json(&json) {
                mismatches.push(format!("{stem}: JSON rendering fails schema validation: {e}"));
            }
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n\n"));
}

/// The golden directory must not accumulate snapshots for deleted views.
#[test]
fn no_orphaned_snapshots() {
    let stems: Vec<String> = view_files()
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    let Ok(entries) = std::fs::read_dir(golden_dir()) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let covered = stems
            .iter()
            .any(|s| name == format!("{s}.plan.txt") || name == format!("{s}.noopt.plan.txt"));
        assert!(covered, "orphaned snapshot {name}: no matching view under samples/ or examples/");
    }
}
