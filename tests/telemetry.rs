//! Telemetry round-trip over the Figure 7 GO-term workflow (§6.3):
//! every quality decision the engine takes must be explainable after the
//! fact — `why(item)` returns a [`DecisionTrace`] whose accepted/rejected
//! verdicts agree exactly with the `ActionOutcome` the pipeline acted on,
//! and whose span links resolve inside the recorded span tree.

use qurator::prelude::*;
use qurator_proteomics::{World, WorldConfig};
use qurator_repro::ispider::{figure7_view, hits_to_dataset, FIGURE7_GROUP};
use qurator_repro::IspiderPipeline;
use qurator_telemetry::span::SpanId;
use std::collections::HashSet;

#[test]
fn why_round_trips_against_the_action_outcome() {
    let world = World::generate(&WorldConfig::paper_scale(42)).expect("testbed");
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    engine.set_provenance_enabled(true);

    let peak_list = &world.peak_lists()[0];
    let hits = world.imprint.search(peak_list);
    let dataset = hits_to_dataset(&peak_list.spot_id, &hits);
    assert!(!dataset.is_empty(), "spot produces hits");

    let spec = figure7_view();
    let outcome = engine.execute_view(&spec, &dataset).expect("quality view runs");
    let surviving = outcome.group(FIGURE7_GROUP).expect("filter group present");
    let survivors: HashSet<&str> = surviving
        .dataset
        .items()
        .iter()
        .filter_map(|item| item.as_iri().map(|iri| iri.as_str()))
        .collect();
    assert!(!survivors.is_empty(), "filter keeps the high class");
    assert!(survivors.len() < dataset.len(), "filter rejects something");

    let trace = engine.last_trace().expect("interpreter records a span trace");
    trace.validate().expect("well-formed span tree");
    let span_ids: HashSet<u64> = trace.spans().iter().map(|s| s.id.0).collect();

    for item in dataset.items() {
        let key = item.as_iri().expect("LSID item").as_str();
        let decision = engine.why(key).unwrap_or_else(|| panic!("no trace for {key}"));

        // evidence: the Imprint scores the view's enrichment fetched
        assert!(
            decision.evidence.iter().any(|e| e.property.as_ref() == "HitRatio"),
            "{key}: HitRatio evidence recorded"
        );
        // assertion: the avg+stddev classifier assigned a class
        let class = decision
            .assertions
            .iter()
            .find(|a| a.property.as_ref() == "ScoreClass")
            .unwrap_or_else(|| panic!("{key}: ScoreClass assertion recorded"));
        assert!(!class.value.to_string().is_empty());

        // action verdict agrees with the outcome the pipeline used
        let action = decision
            .actions
            .iter()
            .find(|a| a.group.as_ref() == FIGURE7_GROUP)
            .unwrap_or_else(|| panic!("{key}: action recorded for {FIGURE7_GROUP}"));
        let expected = if survivors.contains(key) { "accepted" } else { "rejected" };
        assert_eq!(action.outcome.as_ref(), expected, "{key}: ledger vs ActionOutcome");
        assert_eq!(action.condition.as_deref(), Some("ScoreClass in q:high"));

        // provenance links point into the recorded span tree
        for span in decision
            .evidence
            .iter()
            .filter_map(|e| e.span)
            .chain(decision.assertions.iter().filter_map(|a| a.span))
            .chain(decision.actions.iter().filter_map(|a| a.span))
        {
            assert!(span_ids.contains(&span), "{key}: span {span} resolves in the trace");
            assert!(trace.span(SpanId(span)).is_some());
        }
    }
    engine.finish_execution();
}

#[test]
fn ledger_covers_the_whole_figure7_sample() {
    let world = World::generate(&WorldConfig::paper_scale(7)).expect("testbed");
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    engine.set_provenance_enabled(true);

    let pipeline = IspiderPipeline::new(&world, &engine);
    let filtered = pipeline.run_filtered(&figure7_view(), FIGURE7_GROUP).expect("filtered run");

    // every hit of every spot is accounted for in the ledger…
    let total_hits: usize =
        world.peak_lists().iter().map(|pl| world.imprint.search(pl).len()).sum();
    assert_eq!(engine.ledger().len(), total_hits, "one decision trace per hit");

    // …and the accepted count equals what the pipeline identified
    let accepted = engine
        .ledger()
        .items()
        .iter()
        .filter_map(|item| engine.why(item))
        .filter(|t| {
            t.actions
                .iter()
                .any(|a| a.group.as_ref() == FIGURE7_GROUP && a.outcome.as_ref() == "accepted")
        })
        .count();
    let identified: usize = filtered.spots.iter().map(|s| s.identified.len()).sum();
    assert_eq!(accepted, identified, "ledger verdicts vs pipeline output");

    // suffix lookup works for a surviving accession
    let accession =
        filtered.spots.iter().flat_map(|s| s.identified.iter()).next().expect("something survives");
    assert!(!engine.explain_item(accession).is_empty(), "explain_item finds {accession} by suffix");
}
