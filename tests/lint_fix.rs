//! Properties behind `qv check --fix`: applying machine-applicable
//! suggestions must *converge* (a fixed view re-lints with no
//! machine-applicable suggestions left) and must *preserve semantics*
//! for dead-code deletions (every group the fixer removes was provably
//! empty, and the surviving groups keep exactly the same members and
//! `why(item)` decision ledgers).
//!
//! Views are generated over the stock proteomics vocabulary like
//! `lint_property.rs`, then deliberately seeded with the faults the
//! fixer repairs: a splitter group that is dead under the upstream
//! classification domain (QV025), a foreign label in an `in` list
//! (QV021) and a cross-repository `repositoryRef` (QV024).

use proptest::prelude::*;
use qurator::prelude::*;
use qurator::spec::{ActionDecl, ActionKind, AnnotatorDecl, AssertionDecl, TagKind, VarDecl};
use qurator::xmlio;
use qurator_qvlint::{fix::apply_machine_fixes, Applicability};
use qurator_rdf::lsid::LsidAuthority;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

fn dataset() -> &'static DataSet {
    static DATA: OnceLock<DataSet> = OnceLock::new();
    DATA.get_or_init(|| {
        let authority = LsidAuthority::new("example.org", "hit");
        let mut ds = DataSet::new();
        for i in 0..16i64 {
            let item = authority.term(format!("P{i:02}"));
            ds.push(
                item,
                [
                    ("hitRatio", EvidenceValue::from(0.05 * i as f64)),
                    ("massCoverage", EvidenceValue::from(0.9 - 0.04 * i as f64)),
                    ("peptidesCount", EvidenceValue::from(3 + (i * 7) % 11)),
                ],
            );
        }
        ds
    })
}

fn engine() -> QualityEngine {
    QualityEngine::with_proteomics_defaults().expect("stock engine")
}

const OPS: [&str; 4] = [">", ">=", "<", "<="];
const LABELS: [&str; 3] = ["q:low", "q:mid", "q:high"];

fn numeric_clause(tag: &str, op: u8, threshold: i8) -> String {
    format!("{tag} {} {}", OPS[op as usize % OPS.len()], f64::from(threshold) / 8.0)
}

fn class_clause(mask: u8) -> String {
    let mask = if mask.is_multiple_of(8) { 1 } else { mask % 8 };
    let chosen: Vec<&str> =
        LABELS.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, l)| *l).collect();
    format!("ScoreClass in {}", chosen.join(", "))
}

/// The full HR_MC → ScoreClass chain with a splitter over the produced
/// tags. `seed_dead` appends a group that can never match under the
/// classifier's label domain; `seed_foreign` poisons the first class
/// clause with a label outside the model; `seed_cross_repo` points the
/// HR assertion at a repository no annotator writes.
fn build_view(
    groups: Vec<String>,
    seed_dead: bool,
    seed_foreign: bool,
    seed_cross_repo: bool,
) -> QualityViewSpec {
    let mut groups = groups;
    if seed_foreign {
        if let Some(g) = groups.iter_mut().find(|g| g.contains("ScoreClass in")) {
            g.push_str(", q:banana");
        }
    }
    if seed_dead {
        groups.push("not (ScoreClass in q:low, q:mid, q:high)".to_string());
    }
    QualityViewSpec {
        name: "generated".into(),
        annotators: vec![AnnotatorDecl {
            service_name: "imprint".into(),
            service_type: "q:ImprintOutputAnnotation".into(),
            repository_ref: "cache".into(),
            persistent: false,
            variables: vec![
                VarDecl::evidence("q:HitRatio"),
                VarDecl::evidence("q:MassCoverage"),
                VarDecl::evidence("q:PeptidesCount"),
            ],
        }],
        assertions: vec![
            AssertionDecl {
                service_name: "hr".into(),
                service_type: "q:UniversalPIScore".into(),
                tag_name: "HR".into(),
                tag_kind: TagKind::Score,
                tag_sem_type: None,
                repository_ref: if seed_cross_repo { "archive".into() } else { "cache".into() },
                variables: vec![VarDecl::named("hitratio", "q:HitRatio")],
            },
            AssertionDecl {
                service_name: "score".into(),
                service_type: "q:UniversalPIScore2".into(),
                tag_name: "HR_MC".into(),
                tag_kind: TagKind::Score,
                tag_sem_type: None,
                repository_ref: "cache".into(),
                variables: vec![
                    VarDecl::named("coverage", "q:MassCoverage"),
                    VarDecl::named("hitratio", "q:HitRatio"),
                    VarDecl::named("peptidescount", "q:PeptidesCount"),
                ],
            },
            AssertionDecl {
                service_name: "classify".into(),
                service_type: "q:PIScoreClassifier".into(),
                tag_name: "ScoreClass".into(),
                tag_kind: TagKind::Class,
                tag_sem_type: Some("q:PIScoreClassification".into()),
                repository_ref: "cache".into(),
                variables: vec![VarDecl::named("score", "tag:HR_MC")],
            },
        ],
        actions: vec![ActionDecl {
            name: "act".into(),
            kind: ActionKind::Split {
                groups: groups.into_iter().enumerate().map(|(i, c)| (format!("g{i}"), c)).collect(),
            },
        }],
    }
}

/// The `qv check --fix` loop over in-memory source: check, apply every
/// machine-applicable suggestion, re-parse, repeat until a fixed point.
/// Returns the fixed source and the number of rounds that changed it.
fn fix_to_fixpoint(source: String) -> Result<(String, usize), String> {
    let mut source = source;
    for rounds in 0..8 {
        let root = qurator_xml::parse(&source).map_err(|e| format!("fix broke the XML: {e}"))?;
        let spec = xmlio::element_to_spec(&root).map_err(|e| format!("fix broke the spec: {e}"))?;
        let diags = engine().check(&spec, Some(&root));
        let report = apply_machine_fixes(&source, &diags);
        if !report.changed() {
            return Ok((source, rounds));
        }
        source = report.fixed;
    }
    Err("fix loop did not converge within 8 rounds".into())
}

fn machine_applicable_count(source: &str) -> usize {
    let root = qurator_xml::parse(source).expect("fixed source parses");
    let spec = xmlio::element_to_spec(&root).expect("fixed source is a view");
    engine()
        .check(&spec, Some(&root))
        .iter()
        .filter(|d| {
            d.suggestion
                .as_ref()
                .is_some_and(|s| s.applicability == Applicability::MachineApplicable)
        })
        .count()
}

/// group name → sorted member items, from a fresh interpreted run.
fn outcome_groups(spec: &QualityViewSpec) -> BTreeMap<String, BTreeSet<String>> {
    let engine = engine();
    let outcome = engine.execute_view(spec, dataset()).expect("view enacts");
    engine.finish_execution();
    outcome
        .groups
        .iter()
        .map(|g| (g.name.clone(), g.dataset.items().iter().map(|t| t.to_string()).collect()))
        .collect()
}

/// item → sorted (group, outcome, condition) action records plus the
/// evidence/assertion projections, from a provenance-enabled run.
type LedgerProjection = BTreeMap<String, (Vec<(String, String)>, Vec<(String, String, String)>)>;

fn ledger_projection(
    spec: &QualityViewSpec,
    keep_group: impl Fn(&str) -> bool,
) -> LedgerProjection {
    let engine = engine();
    engine.set_provenance_enabled(true);
    engine.execute_view(spec, dataset()).expect("view enacts");
    let mut out = BTreeMap::new();
    for item in engine.ledger().items() {
        let trace = engine.why(&item).expect("ledger listed the item");
        let mut facts: Vec<(String, String)> = trace
            .evidence
            .iter()
            .map(|e| (e.property.to_string(), e.value.to_string()))
            .chain(trace.assertions.iter().map(|a| (a.property.to_string(), a.value.to_string())))
            .collect();
        facts.sort();
        let mut actions: Vec<(String, String, String)> = trace
            .actions
            .iter()
            .filter(|a| keep_group(&a.group))
            .map(|a| {
                (
                    a.group.to_string(),
                    a.outcome.to_string(),
                    a.condition.as_deref().unwrap_or_default().to_string(),
                )
            })
            .collect();
        actions.sort();
        out.insert(item, (facts, actions));
    }
    engine.finish_execution();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// `--fix` converges: after the apply/re-lint loop reaches a fixed
    /// point, the view carries no machine-applicable suggestion, and the
    /// result still parses as a quality view.
    #[test]
    fn machine_fixes_converge(
        ops in proptest::array::uniform2(0u8..4),
        thresholds in proptest::array::uniform2(-20i8..20),
        label_mask in 0u8..8,
        seed_dead in any::<bool>(),
        seed_foreign in any::<bool>(),
        seed_cross_repo in any::<bool>(),
    ) {
        let groups = vec![
            numeric_clause("HR", ops[0], thresholds[0]),
            numeric_clause("HR_MC", ops[1], thresholds[1]),
            class_clause(label_mask),
        ];
        let spec = build_view(groups, seed_dead, seed_foreign, seed_cross_repo);
        let source = qurator_xml::write_document(&xmlio::spec_to_element(&spec));

        let result = fix_to_fixpoint(source);
        prop_assert!(result.is_ok(), "convergence failure: {}", result.unwrap_err());
        let (fixed, rounds) = result.unwrap();
        prop_assert_eq!(
            machine_applicable_count(&fixed),
            0,
            "fixed view still carries machine-applicable suggestions:\n{}",
            fixed
        );
        // every seeded fault is mechanical, so seeding must cause work
        if seed_dead || seed_foreign || seed_cross_repo {
            prop_assert!(rounds > 0, "seeded faults produced no fixes:\n{}", fixed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Dead-code deletions preserve semantics: the removed groups were
    /// empty on real data, surviving groups keep the same members, and
    /// the per-item `why(item)` ledgers agree once the deleted groups'
    /// records are set aside.
    #[test]
    fn dead_group_fixes_preserve_semantics(
        ops in proptest::array::uniform2(0u8..4),
        thresholds in proptest::array::uniform2(-20i8..20),
        label_mask in 0u8..8,
    ) {
        let groups = vec![
            numeric_clause("HR", ops[0], thresholds[0]),
            numeric_clause("HR_MC", ops[1], thresholds[1]),
            class_clause(label_mask),
        ];
        let spec = build_view(groups, true, false, false);
        let diags = engine().check(&spec, None);
        if qurator_qvlint::has_errors(&diags) {
            continue; // rejected views are lint_property's concern
        }
        let source = qurator_xml::write_document(&xmlio::spec_to_element(&spec));
        let result = fix_to_fixpoint(source);
        prop_assert!(result.is_ok(), "convergence failure: {}", result.unwrap_err());
        let (fixed, rounds) = result.unwrap();
        prop_assert!(rounds > 0, "the seeded dead group was not fixed");
        let fixed_spec =
            xmlio::element_to_spec(&qurator_xml::parse(&fixed).expect("fixed source parses"))
                .expect("fixed source is a view");

        let before = outcome_groups(&spec);
        let after = outcome_groups(&fixed_spec);
        let kept: BTreeSet<&String> = after.keys().collect();
        for (group, members) in &before {
            if kept.contains(group) {
                prop_assert_eq!(
                    members,
                    &after[group],
                    "surviving group {} changed membership", group
                );
            } else {
                prop_assert!(
                    members.is_empty(),
                    "fixer deleted group {} which held {} item(s)", group, members.len()
                );
            }
        }
        prop_assert!(
            kept.iter().all(|g| before.contains_key(g.as_str())),
            "fixer invented a group"
        );

        let keep = |g: &str| after.contains_key(g);
        let before_ledger = ledger_projection(&spec, keep);
        let after_ledger = ledger_projection(&fixed_spec, keep);
        prop_assert_eq!(before_ledger, after_ledger, "why(item) ledgers diverged");
    }
}

// ---------------------------------------------------------------------------
// Deterministic output (the byte-stability regression gate)
// ---------------------------------------------------------------------------

/// `qv check --format json` must be byte-stable run to run, and the
/// diagnostic order must follow (line, col, code) so downstream diffs
/// of CI output never churn.
#[test]
fn json_output_is_byte_stable_and_ordered() {
    let source =
        std::fs::read_to_string("tests/lint_corpus/dataflow_multi.qv").expect("corpus fixture");
    let render = || {
        let root = qurator_xml::parse(&source).expect("fixture parses");
        let spec = xmlio::element_to_spec(&root).expect("fixture is a view");
        let diags = engine().check(&spec, Some(&root));
        (qurator_qvlint::render::render_json(&diags, "dataflow_multi.qv"), diags)
    };
    let (first, diags) = render();
    let (second, _) = render();
    assert_eq!(first, second, "render_json is not byte-stable across runs");
    assert!(diags.len() >= 4, "fixture should produce several findings");
    let keys: Vec<(u32, u32, &str)> = diags
        .iter()
        .map(|d| {
            let s = d.span.map(|s| (s.line, s.col)).unwrap_or((u32::MAX, u32::MAX));
            (s.0, s.1, d.code)
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "diagnostics are not ordered by (line, col, code)");
}
