//! The lint corpus: one deliberately broken view (or SPARQL query) per
//! diagnostic code, each annotated with the exact findings it must
//! produce. The harness runs the full `qv check` analysis (lint +
//! bindings + compiled workflow for `.qv`; the SQ passes for `.rq`) and
//! asserts that
//!
//! * every `<!-- expect: CODE at LINE:COL -->` header matches a produced
//!   diagnostic with that code *and* that source position (so span
//!   plumbing through the XML DOM stays exact), and
//! * every produced error is covered by some `expect:` header (warnings
//!   and hints may ride along unannotated).
//!
//! A second block checks the collect-all property: the multi-fault
//! fixture reports all of its seeded faults at once, and the paper's
//! sample view checks clean.

use qurator::prelude::*;
use qurator::xmlio::parse_quality_view_with_source;
use qurator_qvlint::{sparql::analyze_sparql, Diagnostic, Severity};
use std::path::Path;

/// An `expect:` header: `<!-- expect: QV017 at 4:12 -->` (the position is
/// optional: `<!-- expect: QV018 -->` asserts only the code).
#[derive(Debug)]
struct Expectation {
    code: String,
    at: Option<(u32, u32)>,
}

fn parse_expectations(source: &str) -> Vec<Expectation> {
    let mut out = Vec::new();
    for line in source.lines() {
        let line = line.trim();
        // XML fixtures use `<!-- expect: … -->`, SPARQL fixtures `# expect: …`
        let body = if let Some(rest) = line.strip_prefix("<!-- expect:") {
            rest.strip_suffix("-->").unwrap_or_else(|| panic!("malformed expect header: {line:?}"))
        } else if let Some(rest) = line.strip_prefix("# expect:") {
            rest
        } else {
            continue;
        };
        let body = body.trim();
        let (code, at) = match body.split_once(" at ") {
            None => (body.to_string(), None),
            Some((code, pos)) => {
                let (line, col) = pos
                    .trim()
                    .split_once(':')
                    .unwrap_or_else(|| panic!("malformed position in {body:?}"));
                (code.trim().to_string(), Some((line.parse().unwrap(), col.parse().unwrap())))
            }
        };
        out.push(Expectation { code, at });
    }
    out
}

fn check_file(path: &Path) -> Vec<Diagnostic> {
    let source = std::fs::read_to_string(path).unwrap();
    if path.extension().is_some_and(|e| e == "rq") {
        return analyze_sparql(&source);
    }
    let (spec, root) = parse_quality_view_with_source(&source)
        .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
    let engine = QualityEngine::with_proteomics_defaults().unwrap();
    engine.check(&spec, Some(&root))
}

fn render(diags: &[Diagnostic]) -> String {
    diags.iter().map(|d| format!("  {d}\n")).collect()
}

#[test]
fn every_corpus_fixture_produces_its_expected_findings() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&corpus)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", corpus.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "qv" || e == "rq"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 12, "corpus too small: {} fixtures", entries.len());

    let mut covered_codes = std::collections::BTreeSet::new();
    for path in &entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(path).unwrap();
        let expectations = parse_expectations(&source);
        assert!(!expectations.is_empty(), "{name}: no expect headers");
        let diags = check_file(path);

        for e in &expectations {
            let matched = diags.iter().any(|d| {
                d.code == e.code
                    && match e.at {
                        None => true,
                        Some((line, col)) => d.span.is_some_and(|s| s.line == line && s.col == col),
                    }
            });
            assert!(
                matched,
                "{name}: expected {} at {:?}, produced:\n{}",
                e.code,
                e.at,
                render(&diags)
            );
            covered_codes.insert(e.code.clone());
        }
        for d in &diags {
            if d.severity == Severity::Error {
                assert!(
                    expectations.iter().any(|e| e.code == d.code),
                    "{name}: unexpected error {d}\nall findings:\n{}",
                    render(&diags)
                );
            }
        }
    }
    assert!(
        covered_codes.len() >= 12,
        "corpus covers only {} distinct codes: {covered_codes:?}",
        covered_codes.len()
    );
}

#[test]
fn the_multi_fault_fixture_reports_every_fault_at_once() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus/multi_fault.qv");
    let diags = check_file(&path);
    let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
    for expected in ["QV006", "QV010", "QV016"] {
        assert!(codes.contains(&expected), "missing {expected} in {codes:?}");
    }
}

#[test]
fn the_shipped_sample_view_checks_clean() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("samples/paper_view.xml");
    let diags = check_file(&path);
    assert!(diags.is_empty(), "sample view must lint clean:\n{}", render(&diags));
}
