//! Quickstart: author a quality view in the paper's XML syntax, run it
//! over a small annotated data set, and watch the filter act.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qurator::prelude::*;
use qurator_rdf::namespace::q;
use qurator_rdf::term::Term;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A quality engine preloaded with the running example's IQ model
    //    and services (Imprint annotator, universal-score QAs, classifier).
    let engine = QualityEngine::with_proteomics_defaults()?;

    // 2. The §5.1 quality view: capture Imprint evidence, compute the
    //    HR/MC score and the three-way classification, filter.
    let view = qurator::xmlio::parse_quality_view(
        r#"
        <QualityView name="quickstart">
          <Annotator serviceName="ImprintOutputAnnotator"
                     serviceType="q:ImprintOutputAnnotation">
            <variables repositoryRef="cache" persistent="false">
              <var evidence="q:HitRatio"/>
              <var evidence="q:MassCoverage"/>
              <var evidence="q:PeptidesCount"/>
            </variables>
          </Annotator>
          <QualityAssertion serviceName="HR_MC_score" serviceType="q:UniversalPIScore2"
                            tagName="HR_MC" tagSynType="q:score">
            <variables repositoryRef="cache">
              <var variableName="coverage" evidence="q:MassCoverage"/>
              <var variableName="hitratio" evidence="q:HitRatio"/>
              <var variableName="peptidescount" evidence="q:PeptidesCount"/>
            </variables>
          </QualityAssertion>
          <QualityAssertion serviceName="classifier" serviceType="q:PIScoreClassifier"
                            tagName="ScoreClass" tagSynType="q:class"
                            tagSemType="q:PIScoreClassification">
            <variables repositoryRef="cache">
              <var variableName="score" evidence="tag:HR_MC"/>
            </variables>
          </QualityAssertion>
          <action name="keep acceptable">
            <filter>
              <condition>ScoreClass in q:high, q:mid and HR_MC &gt; 0</condition>
            </filter>
          </action>
        </QualityView>
        "#,
    )?;
    println!("== quality view '{}' parsed and validated ==", view.name);

    // 3. A data set shaped like Imprint output (protein hits + evidence).
    let rows: [(&str, f64, f64, i64); 6] = [
        ("P30089", 0.91, 48.0, 14),
        ("P30090", 0.72, 31.0, 10),
        ("P30091", 0.55, 26.0, 8),
        ("P30092", 0.31, 14.0, 5),
        ("P30093", 0.12, 6.0, 2),
        ("P30094", 0.05, 2.0, 1),
    ];
    let mut dataset = DataSet::new();
    for (accession, hit_ratio, mass_coverage, peptides) in rows {
        dataset.push(
            Term::iri(format!("urn:lsid:uniprot.org:uniprot:{accession}")),
            [
                ("hitRatio", EvidenceValue::from(hit_ratio)),
                ("massCoverage", EvidenceValue::from(mass_coverage)),
                ("peptidesCount", EvidenceValue::from(peptides)),
            ],
        );
    }

    // 4. Execute (direct interpretation) and inspect the outcome.
    let outcome = engine.execute_view(&view, &dataset)?;
    let kept = outcome.group("keep acceptable").expect("declared action");
    println!("input items: {}   surviving: {}", dataset.len(), kept.dataset.len());
    println!("\n{:<44} {:>8} {:>10}", "item", "HR_MC", "class");
    for item in kept.dataset.items() {
        let row = kept.map.item(item).expect("restricted map");
        let score =
            row.tag("HR_MC").as_number().map(|s| format!("{s:+.2}")).unwrap_or_else(|| "-".into());
        println!(
            "{:<44} {:>8} {:>10}",
            item.as_iri().map(|i| i.local_name().to_string()).unwrap_or_default(),
            score,
            row.tag("ScoreClass")
        );
    }

    // 5. The same view also compiles into a workflow (the §6 path).
    let workflow = engine.compile(&view)?;
    println!(
        "\ncompiled workflow: {} processors, {} data links, {} control links",
        workflow.nodes().count(),
        workflow.data_links().len(),
        workflow.control_links().len()
    );
    engine.finish_execution();

    // sanity for `cargo test --examples`-style smoke runs
    assert!(kept.dataset.len() < dataset.len());
    assert!(engine.catalog().get("cache").is_some());
    let _ = q::iri("HitRatio");
    Ok(())
}
