//! Quality views outside the life sciences: environmental sensor data.
//!
//! The paper argues the framework is domain-independent — views "can be
//! applied to any data set that can be annotated with the input evidence
//! types" (§4.1). This example builds an entirely fresh IQ extension for
//! a sensor-network domain (no proteomics anywhere): evidence types are
//! calibration age, reading variance and network packet loss; the QA is
//! the stock z-score over those; the splitter triages stations into
//! `usable`, `recalibrate` and a default quarantine group.
//!
//! ```sh
//! cargo run --example sensor_quality
//! ```

use qurator::prelude::*;
use qurator_annotations::AnnotationRepository;
use qurator_ontology::IqModel;
use qurator_rdf::namespace::q;
use qurator_rdf::term::{Iri, Term};
use qurator_services::{AnnotationService, DataSet as Ds};
use std::sync::Arc;

/// Synthetic telemetry for one weather station.
struct Station {
    id: &'static str,
    days_since_calibration: f64,
    reading_variance: f64,
    packet_loss: f64,
}

const FLEET: [Station; 8] = [
    Station {
        id: "WS-001",
        days_since_calibration: 12.0,
        reading_variance: 0.4,
        packet_loss: 0.01,
    },
    Station {
        id: "WS-002",
        days_since_calibration: 420.0,
        reading_variance: 0.5,
        packet_loss: 0.02,
    },
    Station {
        id: "WS-003",
        days_since_calibration: 30.0,
        reading_variance: 6.5,
        packet_loss: 0.00,
    },
    Station {
        id: "WS-004",
        days_since_calibration: 45.0,
        reading_variance: 0.7,
        packet_loss: 0.03,
    },
    Station {
        id: "WS-005",
        days_since_calibration: 700.0,
        reading_variance: 8.0,
        packet_loss: 0.40,
    },
    Station {
        id: "WS-006",
        days_since_calibration: 90.0,
        reading_variance: 1.1,
        packet_loss: 0.05,
    },
    Station {
        id: "WS-007",
        days_since_calibration: 15.0,
        reading_variance: 0.3,
        packet_loss: 0.02,
    },
    Station {
        id: "WS-008",
        days_since_calibration: 200.0,
        reading_variance: 2.0,
        packet_loss: 0.15,
    },
];

/// The domain annotation function: pulls telemetry fields into evidence.
struct TelemetryAnnotator;

impl AnnotationService for TelemetryAnnotator {
    fn service_type(&self) -> Iri {
        q::iri("SensorTelemetryAnnotation")
    }

    fn provides(&self) -> Vec<Iri> {
        vec![q::iri("CalibrationAge"), q::iri("ReadingVariance"), q::iri("PacketLoss")]
    }

    fn annotate(&self, data: &Ds, repo: &AnnotationRepository) -> qurator_services::Result<usize> {
        let mut written = 0;
        for item in data.items() {
            for (field, evidence) in [
                ("calibrationAge", q::iri("CalibrationAge")),
                ("readingVariance", q::iri("ReadingVariance")),
                ("packetLoss", q::iri("PacketLoss")),
            ] {
                let value = data.field(item, field);
                if !value.is_null() {
                    repo.annotate(item, &evidence, value)?;
                    written += 1;
                }
            }
        }
        Ok(written)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- a sensor-domain IQ model, built from the bare upper ontology
    let mut iq = IqModel::new();
    iq.register_evidence_type("CalibrationAge", None)?;
    iq.register_evidence_type("ReadingVariance", None)?;
    iq.register_evidence_type("PacketLoss", None)?;
    iq.register_data_entity_type("SensorStation")?;
    iq.register_annotation_function("SensorTelemetryAnnotation")?;
    iq.register_assertion_type("SensorHealthScore")?;
    iq.assign_dimension("SensorHealthScore", &qurator_ontology::iq::vocab::currency())?;
    iq.ontology().check_consistency()?;

    let engine = QualityEngine::new(iq);
    engine.register_annotation_service(Arc::new(TelemetryAnnotator))?;
    // the stock z-score QA reused verbatim in a new domain (component
    // reuse, the paper's claim (ii)/(iii))
    engine.register_assertion_service(Arc::new(qurator_services::stdlib::ZScoreAssertion::new(
        q::iri("SensorHealthScore"),
        &["age", "variance", "loss"],
    )))?;

    let view = qurator::xmlio::parse_quality_view(
        r#"
        <QualityView name="station-triage">
          <Annotator serviceName="telemetry" serviceType="q:SensorTelemetryAnnotation">
            <variables repositoryRef="cache" persistent="false">
              <var evidence="q:CalibrationAge"/>
              <var evidence="q:ReadingVariance"/>
              <var evidence="q:PacketLoss"/>
            </variables>
          </Annotator>
          <QualityAssertion serviceName="health" serviceType="q:SensorHealthScore"
                            tagName="Badness" tagSynType="q:score">
            <variables repositoryRef="cache">
              <var variableName="age" evidence="q:CalibrationAge"/>
              <var variableName="variance" evidence="q:ReadingVariance"/>
              <var variableName="loss" evidence="q:PacketLoss"/>
            </variables>
          </QualityAssertion>
          <action name="triage">
            <splitter>
              <group name="usable">
                <condition>Badness &lt; 0 and PacketLoss &lt; 0.1</condition>
              </group>
              <group name="recalibrate">
                <condition>Badness &gt;= 0 and CalibrationAge &gt; 180</condition>
              </group>
            </splitter>
          </action>
        </QualityView>"#,
    )?;

    let mut dataset = DataSet::new();
    for s in &FLEET {
        dataset.push(
            Term::iri(format!("urn:lsid:sensors.example.org:station:{}", s.id)),
            [
                ("calibrationAge", EvidenceValue::from(s.days_since_calibration)),
                ("readingVariance", EvidenceValue::from(s.reading_variance)),
                ("packetLoss", EvidenceValue::from(s.packet_loss)),
            ],
        );
    }

    let outcome = engine.execute_view(&view, &dataset)?;
    println!("== weather-station triage (z-score 'Badness': higher = worse) ==\n");
    for group in &outcome.groups {
        println!("{}", group.name);
        for item in group.dataset.items() {
            let row = group.map.item(item).expect("restricted");
            println!(
                "  {:<8} badness {:>6}  cal.age {:>5}  variance {:>4}  loss {:>5}",
                item.as_iri().unwrap().local_name(),
                row.tag("Badness")
                    .as_number()
                    .map(|b| format!("{b:+.2}"))
                    .unwrap_or_else(|| "-".into()),
                row.evidence(&q::iri("CalibrationAge")),
                row.evidence(&q::iri("ReadingVariance")),
                row.evidence(&q::iri("PacketLoss")),
            );
        }
    }

    let usable = outcome.group("triage/usable").unwrap().dataset.len();
    let quarantined = outcome.group("triage/default").unwrap().dataset.len();
    println!("\n{usable} usable, {quarantined} quarantined of {} stations", FLEET.len());
    assert!(usable >= 3, "healthy stations must survive");
    let recalibrate = outcome.group("triage/recalibrate").unwrap();
    assert!(
        recalibrate.dataset.items().iter().any(|i| i.as_iri().unwrap().local_name() == "WS-005"),
        "the worst, oldest station is flagged for recalibration"
    );
    engine.finish_execution();
    Ok(())
}
