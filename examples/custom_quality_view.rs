//! Extending the framework with user-defined components — the paper's
//! central cost-effectiveness claim (§1: "domain experts can rapidly and
//! easily encode and test their own heuristic quality criteria").
//!
//! This example:
//! 1. registers a *new* evidence type (`q:LabReputation`) and a *new*
//!    assertion class (`q:WeightedLabScore`) in the IQ model;
//! 2. implements and registers a custom annotation service and a custom
//!    decision model;
//! 3. authors a quality view with a **splitter** action partitioning data
//!    into trusted / review / rejected groups;
//! 4. runs the view, then edits one condition on the fly and re-runs
//!    (the §4 condition-editing loop).
//!
//! ```sh
//! cargo run --example custom_quality_view
//! ```

use qurator::prelude::*;
use qurator_annotations::AnnotationRepository;
use qurator_ontology::IqModel;
use qurator_rdf::namespace::q;
use qurator_rdf::term::{Iri, Term};
use qurator_services::{AnnotationService, AssertionService, VariableBindings};
use std::sync::Arc;

/// A domain-specific annotation function: looks the originating lab up in
/// a reputation table (the paper's example of heuristic evidence —
/// "the reputation and track record of the originating lab … may be a
/// good discriminator for quality").
struct LabReputationAnnotator;

impl AnnotationService for LabReputationAnnotator {
    fn service_type(&self) -> Iri {
        q::iri("LabReputationAnnotation")
    }

    fn provides(&self) -> Vec<Iri> {
        vec![q::iri("LabReputation")]
    }

    fn annotate(
        &self,
        data: &DataSet,
        repository: &AnnotationRepository,
    ) -> qurator_services::Result<usize> {
        let mut written = 0;
        for item in data.items() {
            let lab = data.field(item, "lab");
            let reputation = match lab.as_text() {
                Some("aberdeen-mcb") => 0.95,
                Some("manchester-cs") => 0.85,
                Some("unknown-lab") => 0.30,
                _ => 0.50,
            };
            repository.annotate(item, &q::iri("LabReputation"), reputation.into())?;
            written += 1;
        }
        Ok(written)
    }
}

/// A custom decision model: reputation-weighted hit ratio.
struct WeightedLabScore;

impl AssertionService for WeightedLabScore {
    fn service_type(&self) -> Iri {
        q::iri("WeightedLabScore")
    }

    fn expected_variables(&self) -> Vec<String> {
        vec!["hr".into(), "rep".into()]
    }

    fn assert_quality(
        &self,
        map: &mut AnnotationMap,
        bindings: &VariableBindings,
        tag: &str,
    ) -> qurator_services::Result<()> {
        for item in map.items().to_vec() {
            let hr = bindings.value(map, &item, "hr").as_number();
            let rep = bindings.value(map, &item, "rep").as_number();
            let value = match (hr, rep) {
                (Some(hr), Some(rep)) => EvidenceValue::Number(100.0 * hr * rep),
                _ => EvidenceValue::Null,
            };
            map.set_tag(&item, tag, value);
        }
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- 1. extend the IQ model
    let mut iq = IqModel::with_proteomics_extension()?;
    iq.register_evidence_type("LabReputation", None)?;
    iq.register_annotation_function("LabReputationAnnotation")?;
    iq.register_assertion_type("WeightedLabScore")?;
    iq.assign_dimension("WeightedLabScore", &qurator_ontology::iq::vocab::reputation())?;
    iq.ontology().check_consistency()?;

    // -- 2. build an engine and register both stock and custom services
    let engine = QualityEngine::new(iq);
    engine.register_annotation_service(Arc::new(
        qurator_services::stdlib::FieldCaptureAnnotator::new(
            q::iri("ImprintOutputAnnotation"),
            &[("hitRatio", q::iri("HitRatio"))],
        ),
    ))?;
    engine.register_annotation_service(Arc::new(LabReputationAnnotator))?;
    engine.register_assertion_service(Arc::new(WeightedLabScore))?;

    // -- 3. the quality view, with a splitter
    let xml = r#"
      <QualityView name="lab-triage">
        <Annotator serviceName="imprint" serviceType="q:ImprintOutputAnnotation">
          <variables repositoryRef="cache" persistent="false">
            <var evidence="q:HitRatio"/>
          </variables>
        </Annotator>
        <Annotator serviceName="reputation" serviceType="q:LabReputationAnnotation">
          <variables repositoryRef="cache" persistent="false">
            <var evidence="q:LabReputation"/>
          </variables>
        </Annotator>
        <QualityAssertion serviceName="weighted" serviceType="q:WeightedLabScore"
                          tagName="WScore" tagSynType="q:score">
          <variables repositoryRef="cache">
            <var variableName="hr" evidence="q:HitRatio"/>
            <var variableName="rep" evidence="q:LabReputation"/>
          </variables>
        </QualityAssertion>
        <action name="triage">
          <splitter>
            <group name="trusted"><condition>WScore &gt;= 60</condition></group>
            <group name="review"><condition>WScore &gt;= 25 and WScore &lt; 60</condition></group>
          </splitter>
        </action>
      </QualityView>"#;
    let mut view = qurator::xmlio::parse_quality_view(xml)?;

    // -- 4. data from three labs
    let mut dataset = DataSet::new();
    let rows: [(&str, &str, f64); 6] = [
        ("H1", "aberdeen-mcb", 0.9),
        ("H2", "aberdeen-mcb", 0.4),
        ("H3", "manchester-cs", 0.8),
        ("H4", "unknown-lab", 0.95),
        ("H5", "unknown-lab", 0.5),
        ("H6", "somewhere-else", 0.6),
    ];
    for (id, lab, hr) in rows {
        dataset.push(
            Term::iri(format!("urn:lsid:example.org:hit:{id}")),
            [("hitRatio", EvidenceValue::from(hr)), ("lab", EvidenceValue::from(lab))],
        );
    }

    let outcome = engine.execute_view(&view, &dataset)?;
    println!("== triage with WScore thresholds 60 / 25 ==");
    for group in &outcome.groups {
        let ids: Vec<&str> = group
            .dataset
            .items()
            .iter()
            .filter_map(|i| i.as_iri().map(|iri| iri.local_name()))
            .collect();
        println!("{:<18} {:?}", group.name, ids);
    }
    let trusted_before = outcome.group("triage/trusted").unwrap().dataset.len();

    // -- 5. edit a condition and re-run (no recompilation, §4)
    engine.finish_execution();
    if let qurator::spec::ActionKind::Split { groups } = &mut view.actions[0].kind {
        groups[0].1 = "WScore >= 40".to_string();
    }
    let outcome = engine.execute_view(&view, &dataset)?;
    let trusted_after = outcome.group("triage/trusted").unwrap().dataset.len();
    println!("\nafter lowering the trusted threshold to 40:");
    println!("trusted group grew from {trusted_before} to {trusted_after} items");

    assert!(trusted_after >= trusted_before);
    engine.finish_execution();
    Ok(())
}
