//! The full ISPIDER proteomics scenario (paper §1.1 + §6.3): PEDRo peak
//! lists → Imprint PMF identification → quality view → GOA lookup →
//! GO-term significance ranking — the experiment behind Figure 7.
//!
//! ```sh
//! cargo run --example ispider_pmf [seed]
//! ```

use qurator::prelude::*;
use qurator_proteomics::{World, WorldConfig};
use qurator_repro::ispider::{figure7_view, FIGURE7_GROUP};
use qurator_repro::IspiderPipeline;

fn figure7_view_group() -> (QualityViewSpec, &'static str) {
    (figure7_view(), FIGURE7_GROUP)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("== building the synthetic testbed (seed {seed}) ==");
    let world = World::generate(&WorldConfig::paper_scale(seed))?;
    println!(
        "proteome: {} proteins | GO: {} terms | GOA: {} associations | PEDRo: {} spots",
        world.proteome.len(),
        world.go.len(),
        world.goa.association_count(),
        world.peak_lists().len()
    );

    let engine = QualityEngine::with_proteomics_defaults()?;
    let pipeline = IspiderPipeline::new(&world, &engine);

    println!("\n== run 1: original ISPIDER workflow (no quality view) ==");
    let unfiltered = pipeline.run_unfiltered();
    println!(
        "identifications: {} | GO-term occurrences: {} | precision: {:.2} | recall: {:.2}",
        unfiltered.spots.iter().map(|s| s.identified.len()).sum::<usize>(),
        unfiltered.total_go_occurrences(),
        unfiltered.precision(),
        unfiltered.recall()
    );

    println!("\n== run 2: with the §6.3 quality view (keep score > avg + stddev) ==");
    let (view, group) = figure7_view_group();
    let filtered = pipeline.run_filtered(&view, group)?;
    println!(
        "identifications: {} | GO-term occurrences: {} | precision: {:.2} | recall: {:.2}",
        filtered.spots.iter().map(|s| s.identified.len()).sum::<usize>(),
        filtered.total_go_occurrences(),
        filtered.precision(),
        filtered.recall()
    );

    let (rows, stats) = qurator_repro::significance_ranking(&unfiltered, &filtered);
    println!("\n== Figure 7: GO terms by significance ratio (top 15 of {}) ==", stats.terms);
    println!(
        "{:<12} {:>9} {:>7} {:>7} {:>10} {:>10}",
        "GO term", "ratio", "with", "w/out", "sig. rank", "orig rank"
    );
    for row in rows.iter().take(15) {
        println!(
            "{:<12} {:>9.2} {:>7} {:>7} {:>10} {:>10}",
            row.term_id,
            row.ratio,
            row.occurrences_with,
            row.occurrences_without,
            row.significance_rank,
            row.original_rank
        );
    }
    println!(
        "\nSpearman correlation between original and significance rankings: {:.3}",
        stats.rank_correlation
    );
    println!(
        "(the paper's observation: the quality view 'significantly alters the original ranking')"
    );

    assert!(filtered.precision() >= unfiltered.precision());
    Ok(())
}
