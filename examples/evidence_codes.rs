//! Persistent annotations: the Uniprot evidence-code use case (§4).
//!
//! "When the quality process involves querying a database with stable
//! data … the quality annotations are likely to be long-lived and can be
//! made persistent. Take for instance the Uniprot database; a measure of
//! credibility of a functional annotation made by a Uniprot curator …
//! is bound to be long-lived."
//!
//! This example annotates proteins with the mean credibility of their GOA
//! evidence codes (the reliability indicator of the paper's ref [16]),
//! stores the annotations in a **persistent** repository, serializes that
//! repository to Turtle, reloads it into a fresh engine, and runs a
//! quality view that never recomputes the credibility — pure Data
//! Enrichment from the warm store.
//!
//! ```sh
//! cargo run --example evidence_codes
//! ```

use qurator::prelude::*;
use qurator_proteomics::{World, WorldConfig};
use qurator_rdf::namespace::q;
use qurator_rdf::term::Term;
use std::sync::Arc;

fn protein_term(accession: &str) -> Term {
    Term::iri(format!("urn:lsid:uniprot.org:uniprot:{accession}"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(&WorldConfig::paper_scale(11))?;

    // -- 1. extend the IQ model with the credibility evidence type
    let mut iq = qurator_ontology::IqModel::with_proteomics_extension()?;
    iq.register_evidence_type("CuratorCredibility", None)?;
    let engine = QualityEngine::new(iq);
    engine.register_assertion_service(Arc::new(qurator_services::stdlib::ZScoreAssertion::new(
        q::iri("UniversalPIScore"),
        &["cred"],
    )))?;

    // -- 2. offline batch: compute evidence-code credibility for the whole
    //    proteome and persist it (this is the long-lived annotation pass),
    //    using the reusable GoaCredibilityAnnotator component
    let uniprot = engine.catalog().create("uniprot", true)?;
    let annotator = qurator_repro::GoaCredibilityAnnotator::new(Arc::new(world.goa.clone()));
    let annotated = annotator.annotate_proteome(&world.proteome, &uniprot)?;
    println!("persisted credibility for {annotated} proteins ({} triples)", uniprot.triple_count());

    // -- 3. serialize ... and reload into a brand new engine
    let turtle = uniprot.export_turtle();
    println!("turtle snapshot: {} bytes", turtle.len());

    let mut iq2 = qurator_ontology::IqModel::with_proteomics_extension()?;
    iq2.register_evidence_type("CuratorCredibility", None)?;
    let engine2 = QualityEngine::new(iq2);
    engine2.register_assertion_service(Arc::new(
        qurator_services::stdlib::ZScoreAssertion::new(q::iri("UniversalPIScore"), &["cred"]),
    ))?;
    let warm = engine2.catalog().create("uniprot", true)?;
    warm.import_turtle(&turtle)?;
    println!("reloaded {} triples into a fresh engine", warm.triple_count());

    // -- 4. a view with NO annotators: evidence comes from the warm store
    let view = qurator::xmlio::parse_quality_view(
        r#"
        <QualityView name="credibility-gate">
          <QualityAssertion serviceName="credscore" serviceType="q:UniversalPIScore"
                            tagName="CRED" tagSynType="q:score">
            <variables repositoryRef="uniprot">
              <var variableName="cred" evidence="q:CuratorCredibility"/>
            </variables>
          </QualityAssertion>
          <action name="well-curated">
            <filter><condition>CuratorCredibility &gt;= 0.7</condition></filter>
          </action>
        </QualityView>"#,
    )?;

    // -- 5. gate the proteins identified in the first two spots
    let mut dataset = DataSet::new();
    for peak_list in world.peak_lists().iter().take(2) {
        for hit in world.imprint.search(peak_list) {
            dataset.push(protein_term(&hit.accession), [] as [(String, EvidenceValue); 0]);
        }
    }
    let outcome = engine2.execute_view(&view, &dataset)?;
    let kept = outcome.group("well-curated").unwrap();
    println!(
        "\n{} of {} identified proteins have mean evidence-code credibility >= 0.7",
        kept.dataset.len(),
        dataset.len()
    );
    for item in kept.dataset.items().iter().take(8) {
        let cred = kept
            .map
            .item(item)
            .map(|r| r.evidence(&q::iri("CuratorCredibility")))
            .unwrap_or(EvidenceValue::Null);
        println!("  {:<44} credibility {}", item.as_iri().unwrap().local_name(), cred);
    }

    assert!(kept.dataset.len() <= dataset.len());
    assert!(warm.is_persistent());
    Ok(())
}
