//! The ISPIDER proteomics pipeline (paper §1.1, §6.3) against the
//! synthetic testbed, with and without an embedded quality view.
//!
//! §6.3's experiment: run the workflow on the peak lists of 10 protein
//! spots, collect the GO terms of all identified proteins (~500 term
//! occurrences), then re-run with a quality filter and rank GO terms by
//! the **significance ratio** — occurrences *with* filtering divided by
//! occurrences *without*. Because the simulator records ground truth, we
//! additionally report identification precision before and after
//! filtering, quantifying what the paper argued qualitatively.

use qurator::prelude::*;
use qurator_proteomics::{HitEntry, World};
use qurator_rdf::lsid::LsidAuthority;
use qurator_rdf::term::Term;
use std::collections::BTreeMap;

/// Builds a [`DataSet`] (LSID-wrapped items + Imprint evidence payloads)
/// from one spot's hit entries — the adapter between the Imprint output
/// and the quality framework's common data model.
pub fn hits_to_dataset(spot_id: &str, hits: &[HitEntry]) -> DataSet {
    // Hit entries are per-search results: wrap accession + spot into the
    // LSID object id so items from different spots stay distinct.
    let authority = LsidAuthority::new("pedro.man.ac.uk", "hit");
    let mut dataset = DataSet::new();
    for hit in hits {
        let item = authority.term(format!("{spot_id}.{}", hit.accession));
        dataset.push(
            item,
            [
                ("hitRatio", EvidenceValue::from(hit.hit_ratio)),
                ("massCoverage", EvidenceValue::from(hit.mass_coverage)),
                ("peptidesCount", EvidenceValue::from(hit.peptides_count as i64)),
                ("accession", EvidenceValue::from(hit.accession.as_str())),
                ("rank", EvidenceValue::from(hit.rank as i64)),
            ],
        );
    }
    dataset
}

/// The accession recorded in a data-set item's payload.
pub fn accession_of(dataset: &DataSet, item: &Term) -> Option<String> {
    dataset.field(item, "accession").as_text().map(str::to_string)
}

/// Per-spot pipeline products.
#[derive(Debug, Clone)]
pub struct SpotResult {
    pub spot_id: String,
    /// Accessions surviving (or all hits, for the unfiltered run).
    pub identified: Vec<String>,
    /// The spot's ground-truth accessions.
    pub truth: Vec<String>,
}

/// Aggregated output of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    pub spots: Vec<SpotResult>,
    /// GO term id → number of occurrences accumulated over the sample.
    pub go_counts: BTreeMap<String, usize>,
}

impl PipelineOutput {
    /// Total GO-term occurrences.
    pub fn total_go_occurrences(&self) -> usize {
        self.go_counts.values().sum()
    }

    /// Identification precision: true identifications / all
    /// identifications (ground truth from the simulator).
    pub fn precision(&self) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for spot in &self.spots {
            total += spot.identified.len();
            correct +=
                spot.identified.iter().filter(|accession| spot.truth.contains(accession)).count();
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Identification recall: found true proteins / all true proteins.
    pub fn recall(&self) -> f64 {
        let mut found = 0usize;
        let mut total = 0usize;
        for spot in &self.spots {
            total += spot.truth.len();
            found += spot.truth.iter().filter(|t| spot.identified.contains(t)).count();
        }
        if total == 0 {
            0.0
        } else {
            found as f64 / total as f64
        }
    }
}

/// The ISPIDER pipeline bound to a testbed world and a quality engine.
pub struct IspiderPipeline<'a> {
    pub world: &'a World,
    pub engine: &'a QualityEngine,
}

impl<'a> IspiderPipeline<'a> {
    /// Creates a pipeline over the given world/engine.
    pub fn new(world: &'a World, engine: &'a QualityEngine) -> Self {
        IspiderPipeline { world, engine }
    }

    /// Runs the original (unfiltered) workflow: every Imprint hit
    /// contributes its GOA terms.
    pub fn run_unfiltered(&self) -> PipelineOutput {
        let mut spots = Vec::new();
        let mut go_counts: BTreeMap<String, usize> = BTreeMap::new();
        for peak_list in self.world.peak_lists() {
            let hits = self.world.imprint.search(peak_list);
            let identified: Vec<String> = hits.iter().map(|h| h.accession.clone()).collect();
            for accession in &identified {
                for association in self.world.goa.lookup(accession) {
                    *go_counts.entry(association.term_id.clone()).or_insert(0) += 1;
                }
            }
            spots.push(SpotResult {
                spot_id: peak_list.spot_id.clone(),
                identified,
                truth: peak_list.true_proteins.clone(),
            });
        }
        PipelineOutput { spots, go_counts }
    }

    /// Runs the workflow with the quality view applied per spot (QAs are
    /// whole-collection models, and in the paper the collection is one
    /// Imprint run — "given the set of protein IDs computed by one run of
    /// the Imprint algorithm").
    pub fn run_filtered(
        &self,
        spec: &QualityViewSpec,
        group: &str,
    ) -> qurator::Result<PipelineOutput> {
        let mut spots = Vec::new();
        let mut go_counts: BTreeMap<String, usize> = BTreeMap::new();
        for peak_list in self.world.peak_lists() {
            let hits = self.world.imprint.search(peak_list);
            let dataset = hits_to_dataset(&peak_list.spot_id, &hits);
            let outcome = self.engine.execute_view(spec, &dataset)?;
            self.engine.finish_execution();
            let surviving = outcome.group(group).ok_or_else(|| {
                qurator::QuratorError::Execution(format!("no action group {group:?}"))
            })?;
            let identified: Vec<String> = surviving
                .dataset
                .items()
                .iter()
                .filter_map(|item| accession_of(&surviving.dataset, item))
                .collect();
            for accession in &identified {
                for association in self.world.goa.lookup(accession) {
                    *go_counts.entry(association.term_id.clone()).or_insert(0) += 1;
                }
            }
            spots.push(SpotResult {
                spot_id: peak_list.spot_id.clone(),
                identified,
                truth: peak_list.true_proteins.clone(),
            });
        }
        Ok(PipelineOutput { spots, go_counts })
    }
}

/// One row of the Figure 7 ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct SignificanceRow {
    pub term_id: String,
    pub occurrences_without: usize,
    pub occurrences_with: usize,
    /// `occurrences_with / occurrences_without` — "a high ratio indicates
    /// that the GO term is relatively unaffected by the filtering, and
    /// thus it is representative of high-quality proteins" (§6.3).
    pub ratio: f64,
    /// 1-based rank by raw frequency in the unfiltered run.
    pub original_rank: usize,
    /// 1-based rank by significance ratio.
    pub significance_rank: usize,
}

/// Summary statistics over a ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct GoTermStats {
    pub terms: usize,
    pub total_without: usize,
    pub total_with: usize,
    /// Spearman rank correlation between original and significance ranks
    /// (the paper: filtering "significantly alters the original ranking",
    /// i.e. this should be visibly below 1).
    pub rank_correlation: f64,
}

/// Computes the Figure 7 ranking: GO terms ordered by significance ratio
/// (descending), ties broken by filtered count then term id.
pub fn significance_ranking(
    without: &PipelineOutput,
    with: &PipelineOutput,
) -> (Vec<SignificanceRow>, GoTermStats) {
    // original frequency ranking
    let mut by_frequency: Vec<(&String, &usize)> = without.go_counts.iter().collect();
    by_frequency.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    let original_rank: BTreeMap<&String, usize> =
        by_frequency.iter().enumerate().map(|(i, (term, _))| (*term, i + 1)).collect();

    let mut rows: Vec<SignificanceRow> = without
        .go_counts
        .iter()
        .map(|(term, &occurrences_without)| {
            let occurrences_with = with.go_counts.get(term).copied().unwrap_or(0);
            SignificanceRow {
                term_id: term.clone(),
                occurrences_without,
                occurrences_with,
                ratio: occurrences_with as f64 / occurrences_without as f64,
                original_rank: original_rank[term],
                significance_rank: 0,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.ratio
            .partial_cmp(&a.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.occurrences_with.cmp(&a.occurrences_with))
            .then(a.term_id.cmp(&b.term_id))
    });
    for (i, row) in rows.iter_mut().enumerate() {
        row.significance_rank = i + 1;
    }

    let n = rows.len();
    let rank_correlation = if n < 2 {
        1.0
    } else {
        let d2: f64 = rows
            .iter()
            .map(|r| {
                let d = r.original_rank as f64 - r.significance_rank as f64;
                d * d
            })
            .sum();
        1.0 - (6.0 * d2) / ((n * (n * n - 1)) as f64)
    };
    let stats = GoTermStats {
        terms: n,
        total_without: without.total_go_occurrences(),
        total_with: with.total_go_occurrences(),
        rank_correlation,
    };
    (rows, stats)
}

/// The §6.3 quality view: keep only "the top quality protein IDs, i.e.,
/// those with a score higher than the average + standard deviation". With
/// the z-score QA and the avg±σ classifier this is exactly
/// `ScoreClass in q:high`.
pub fn figure7_view() -> QualityViewSpec {
    let mut spec = QualityViewSpec::paper_example();
    spec.actions[0].kind =
        qurator::spec::ActionKind::Filter { condition: "ScoreClass in q:high".to_string() };
    spec
}

/// The name of the filter group in [`figure7_view`].
pub const FIGURE7_GROUP: &str = "filter top k score";

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_proteomics::WorldConfig;

    #[test]
    fn hits_to_dataset_preserves_evidence() {
        let hit = HitEntry {
            accession: "P10001".into(),
            rank: 1,
            matched_peaks: 12,
            hit_ratio: 0.4,
            mass_coverage: 33.0,
            peptides_count: 12,
            eldp: 8,
        };
        let ds = hits_to_dataset("spot-00", &[hit]);
        assert_eq!(ds.len(), 1);
        let item = &ds.items()[0];
        assert_eq!(item.as_iri().unwrap().as_str(), "urn:lsid:pedro.man.ac.uk:hit:spot-00.P10001");
        assert_eq!(ds.field(item, "hitRatio"), EvidenceValue::Number(0.4));
        assert_eq!(accession_of(&ds, item).as_deref(), Some("P10001"));
    }

    #[test]
    fn figure7_shapes_hold_at_small_scale() {
        let world = World::generate(&WorldConfig::paper_scale(42)).unwrap();
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let pipeline = IspiderPipeline::new(&world, &engine);

        let unfiltered = pipeline.run_unfiltered();
        let filtered = pipeline.run_filtered(&figure7_view(), FIGURE7_GROUP).unwrap();

        // filtering reduces volume…
        assert!(filtered.total_go_occurrences() < unfiltered.total_go_occurrences());
        // …and (the quantitative claim behind §6.3) improves precision
        assert!(
            filtered.precision() > unfiltered.precision(),
            "filtered {} vs unfiltered {}",
            filtered.precision(),
            unfiltered.precision()
        );

        let (rows, stats) = significance_ranking(&unfiltered, &filtered);
        assert_eq!(stats.terms, rows.len());
        assert!(stats.rank_correlation < 0.999, "ranking must change");
        // ranks are a permutation
        let mut ranks: Vec<usize> = rows.iter().map(|r| r.significance_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=rows.len()).collect::<Vec<_>>());
        // ratios within [0, 1]
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.ratio)));
    }
}
