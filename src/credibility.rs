//! The evidence-code credibility annotation function (paper §3/§4 and
//! ref \[16\]): a reusable annotator that scores protein accessions by the
//! mean credibility of their GOA evidence codes.
//!
//! This is the paper's canonical *persistent* annotation: "a measure of
//! credibility of a functional annotation made by a Uniprot curator,
//! whether based on the evidence codes to which we alluded earlier or
//! other evidence, is bound to be long-lived". Deploy it once against a
//! persistent repository and let quality views enrich from it.

use qurator_proteomics::goa::GoaDb;
use qurator_rdf::lsid::LsidAuthority;
use qurator_rdf::namespace::q;
use qurator_rdf::term::{Iri, Term};
use qurator_services::{AnnotationService, DataSet};
use std::sync::Arc;

/// The evidence type this annotator provides. Register it in the IQ model
/// with [`register_credibility_evidence`] before use.
pub fn curator_credibility() -> Iri {
    q::iri("CuratorCredibility")
}

/// Registers the `q:CuratorCredibility` evidence type and the
/// `q:GoaCredibilityAnnotation` function class in an IQ model.
pub fn register_credibility_evidence(
    iq: &mut qurator_ontology::IqModel,
) -> qurator_ontology::Result<()> {
    iq.register_evidence_type("CuratorCredibility", None)?;
    iq.register_annotation_function("GoaCredibilityAnnotation")?;
    Ok(())
}

/// Annotates items with the mean credibility of their GOA evidence codes.
///
/// Items are expected to be LSID-wrapped protein accessions
/// (`urn:lsid:uniprot.org:uniprot:P30089`) or to carry an `accession`
/// payload field (the Imprint hit-entry shape); both are tried, payload
/// first. Items with no GOA coverage are left unannotated (null evidence).
pub struct GoaCredibilityAnnotator {
    goa: Arc<GoaDb>,
}

impl GoaCredibilityAnnotator {
    /// Builds the annotator over a GOA database.
    pub fn new(goa: Arc<GoaDb>) -> Self {
        GoaCredibilityAnnotator { goa }
    }

    /// Bulk-annotates an entire proteome into a (persistent) repository —
    /// the offline batch pass of the §4 scenario. Returns how many
    /// proteins were annotated.
    pub fn annotate_proteome(
        &self,
        proteome: &qurator_proteomics::Proteome,
        repository: &qurator_annotations::AnnotationRepository,
    ) -> qurator_services::Result<usize> {
        let authority = LsidAuthority::new("uniprot.org", "uniprot");
        let mut annotated = 0;
        for protein in proteome.proteins() {
            if let Some(credibility) = self.goa.mean_credibility(&protein.accession) {
                repository.annotate(
                    &authority.term(&protein.accession),
                    &curator_credibility(),
                    credibility.into(),
                )?;
                annotated += 1;
            }
        }
        Ok(annotated)
    }

    /// Candidate accessions for an item, most specific first: the payload
    /// `accession` field, the full LSID object, then the object with one
    /// leading `spot.` prefix removed (accessions themselves may contain
    /// dots, e.g. versioned ones, so we never split from the right).
    fn accession_candidates(dataset: &DataSet, item: &Term) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(a) = dataset.field(item, "accession").as_text() {
            out.push(a.to_string());
        }
        if let Some(iri) = item.as_iri() {
            if let Ok(lsid) = qurator_rdf::lsid::Lsid::parse(iri.as_str()) {
                let object = lsid.object();
                out.push(object.to_string());
                if let Some((_, rest)) = object.split_once('.') {
                    out.push(rest.to_string());
                }
            }
        }
        out
    }
}

impl AnnotationService for GoaCredibilityAnnotator {
    fn service_type(&self) -> Iri {
        q::iri("GoaCredibilityAnnotation")
    }

    fn provides(&self) -> Vec<Iri> {
        vec![curator_credibility()]
    }

    fn annotate(
        &self,
        data: &DataSet,
        repository: &qurator_annotations::AnnotationRepository,
    ) -> qurator_services::Result<usize> {
        let mut written = 0;
        for item in data.items() {
            let credibility = Self::accession_candidates(data, item)
                .into_iter()
                .find_map(|accession| self.goa.mean_credibility(&accession));
            if let Some(credibility) = credibility {
                repository.annotate(item, &curator_credibility(), credibility.into())?;
                written += 1;
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_annotations::{AnnotationRepository, EvidenceValue};
    use qurator_proteomics::{World, WorldConfig};

    fn setup() -> (World, Arc<qurator_ontology::IqModel>) {
        let world = World::generate(&WorldConfig::paper_scale(5)).unwrap();
        let mut iq = qurator_ontology::IqModel::with_proteomics_extension().unwrap();
        register_credibility_evidence(&mut iq).unwrap();
        (world, Arc::new(iq))
    }

    #[test]
    fn annotates_by_payload_accession_and_by_lsid() {
        let (world, iq) = setup();
        let goa = Arc::new(world.goa.clone());
        let annotator = GoaCredibilityAnnotator::new(goa.clone());
        let repo = AnnotationRepository::new("cache", false, iq);

        let accession = &world.proteome.proteins()[0].accession;
        let mut data = DataSet::new();
        // payload-carrying item (Imprint hit shape, spot-prefixed LSID)
        let hit_item = Term::iri(format!("urn:lsid:pedro.man.ac.uk:hit:spot-00.{accession}"));
        data.push(hit_item.clone(), [("accession", EvidenceValue::from(accession.as_str()))]);
        // bare LSID item
        let bare_item = Term::iri(format!("urn:lsid:uniprot.org:uniprot:{accession}"));
        data.push(bare_item.clone(), [] as [(String, EvidenceValue); 0]);
        // unknown item: skipped, not an error
        data.push(
            Term::iri("urn:lsid:uniprot.org:uniprot:ZZZZZ"),
            [] as [(String, EvidenceValue); 0],
        );

        let written = annotator.annotate(&data, &repo).unwrap();
        assert_eq!(written, 2);
        let expected = goa.mean_credibility(accession).unwrap();
        for item in [&hit_item, &bare_item] {
            assert_eq!(
                repo.lookup(item, &curator_credibility()).unwrap(),
                EvidenceValue::Number(expected)
            );
        }
    }

    #[test]
    fn lsid_fallback_strips_spot_prefix() {
        let (world, iq) = setup();
        let annotator = GoaCredibilityAnnotator::new(Arc::new(world.goa.clone()));
        let repo = AnnotationRepository::new("cache", false, iq);
        let accession = &world.proteome.proteins()[3].accession;
        let item = Term::iri(format!("urn:lsid:pedro.man.ac.uk:hit:spot-07.{accession}"));
        let data = DataSet::from_items([item.clone()]);
        assert_eq!(annotator.annotate(&data, &repo).unwrap(), 1);
        assert!(!repo.lookup(&item, &curator_credibility()).unwrap().is_null());
    }

    #[test]
    fn proteome_batch_pass() {
        let (world, iq) = setup();
        let annotator = GoaCredibilityAnnotator::new(Arc::new(world.goa.clone()));
        let repo = AnnotationRepository::new("uniprot", true, iq);
        let annotated = annotator.annotate_proteome(&world.proteome, &repo).unwrap();
        assert_eq!(annotated, world.proteome.len(), "GOA covers the whole synthetic proteome");
        assert_eq!(repo.triple_count(), 3 * annotated);
    }

    #[test]
    fn usable_inside_a_quality_view() {
        use qurator::prelude::*;
        let (world, _) = setup();
        let mut iq = qurator_ontology::IqModel::with_proteomics_extension().unwrap();
        register_credibility_evidence(&mut iq).unwrap();
        let engine = QualityEngine::new(iq);
        engine
            .register_annotation_service(Arc::new(GoaCredibilityAnnotator::new(Arc::new(
                world.goa.clone(),
            ))))
            .unwrap();
        engine
            .register_assertion_service(Arc::new(qurator_services::stdlib::ZScoreAssertion::new(
                qurator_rdf::namespace::q::iri("UniversalPIScore"),
                &["cred"],
            )))
            .unwrap();
        let view = qurator::xmlio::parse_quality_view(
            r#"
            <QualityView name="cred-gate">
              <Annotator serviceName="goacred" serviceType="q:GoaCredibilityAnnotation">
                <variables repositoryRef="cache" persistent="false">
                  <var evidence="q:CuratorCredibility"/>
                </variables>
              </Annotator>
              <QualityAssertion serviceName="score" serviceType="q:UniversalPIScore"
                                tagName="Z" tagSynType="q:score">
                <variables repositoryRef="cache">
                  <var variableName="cred" evidence="q:CuratorCredibility"/>
                </variables>
              </QualityAssertion>
              <action name="trusted">
                <filter><condition>CuratorCredibility &gt;= 0.7</condition></filter>
              </action>
            </QualityView>"#,
        )
        .unwrap();
        let authority = LsidAuthority::new("uniprot.org", "uniprot");
        let dataset = DataSet::from_items(
            world.proteome.proteins().iter().take(30).map(|p| authority.term(&p.accession)),
        );
        let outcome = engine.execute_view(&view, &dataset).unwrap();
        let kept = &outcome.group("trusted").unwrap().dataset;
        assert!(!kept.is_empty() && kept.len() < 30);
    }
}
