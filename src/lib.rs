//! # qurator-repro
//!
//! Umbrella crate of the *Quality Views* (VLDB 2006) reproduction: wires
//! the proteomics testbed to the Qurator quality framework and packages
//! the ISPIDER experiment of §6.3 (Figure 7) as a reusable library used
//! by the examples, the integration tests and the benchmark harness.
//!
//! The pipeline mirrors Figure 1 + Figure 6 of the paper:
//!
//! ```text
//! PEDRo peak lists ─▶ Imprint PMF ─▶ [quality view] ─▶ GOA lookup ─▶ GO term ranking
//! ```

pub mod credibility;
pub mod ispider;

pub use credibility::GoaCredibilityAnnotator;
pub use ispider::{
    significance_ranking, GoTermStats, IspiderPipeline, PipelineOutput, SignificanceRow,
};
