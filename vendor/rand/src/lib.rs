//! Offline stand-in for the `rand` crate (API subset).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges, and [`Rng::gen`] for a
//! few primitive types — everything the proteomics simulators use. The
//! generator is splitmix64: deterministic, fast, and statistically fine
//! for synthetic-data generation (this is not a cryptographic RNG).

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly-random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&j));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn spread_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
