//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny API subset it uses: [`Mutex`] and [`RwLock`] with
//! non-poisoning guards. Locks are implemented on top of `std::sync`;
//! poisoning is recovered transparently (a panicking critical section
//! leaves the data in place, matching parking_lot's semantics closely
//! enough for this codebase, which treats a panicked worker as an error
//! value rather than a reason to abort).

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
