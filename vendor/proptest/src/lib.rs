//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its property tests use: the [`Strategy`] trait
//! with `prop_map`/`prop_filter`/`boxed`, strategies for ranges, tuples,
//! regex-like string patterns, collections, options and fixed-size
//! arrays, plus the `proptest!`, `prop_oneof!`, `prop_assert!` and
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failing case reports the generated inputs via
//!   the panic message of the inner assertion instead of a minimal
//!   counterexample;
//! * **deterministic seeding** — each test derives its RNG seed from the
//!   test's module path, so failures reproduce across runs;
//! * the string-pattern strategy supports the character-class + bounded
//!   repetition dialect used in this repository (`[a-z0-9]{1,8}`-style),
//!   not full regex.

pub mod test_runner {
    /// Per-test configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 RNG used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(state: u64) -> Self {
            TestRng { state }
        }

        /// Seeds from a test name so each test gets a stable stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A value generator. Unlike real proptest there is no shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence: whence.into(), f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let candidate = self.inner.generate(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates in a row", self.whence);
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let arm = rng.below(self.arms.len() as u64) as usize;
            self.arms[arm].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// String patterns: character classes with bounded repetition, e.g.
    /// `"[a-zA-Z][a-zA-Z0-9_.-]{0,10}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // one atom: a character class or a literal character
            let choices: Vec<char> = match chars[i] {
                '[' => {
                    let mut class = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            for c in lo..=hi {
                                class.push(c);
                            }
                            i += 3;
                        } else {
                            class.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // ']'
                    class
                }
                '\\' => {
                    i += 1;
                    assert!(i < chars.len(), "dangling escape in {pattern:?}");
                    let c = chars[i];
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // optional quantifier
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("quantifier min"),
                        hi.trim().parse::<usize>().expect("quantifier max"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("quantifier count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                let pick = rng.below(choices.len() as u64) as usize;
                out.push(choices[pick]);
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Whole-domain generation for `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // finite, sign-balanced, wide-exponent spread
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = rng.below(61) as i32 - 30;
            mantissa * (2f64).powi(exp)
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Collisions shrink the set, mirroring proptest's behaviour of
            // treating the size as an upper bound under low entropy.
            for _ in 0..target {
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
        UniformArray { element }
    }

    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray { element }
    }

    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray { element }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Generation-only re-implementation of proptest's entry macro.
///
/// Supports the forms used in this repository:
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// docs
///     #[test]
///     fn name(x in strategy, y in other_strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Assertion macros: panic directly (no shrink phase to report to).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u32..5, -1.0f64..1.0);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 5);
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = "x\\[y?".generate(&mut rng);
            assert!(t == "x[y" || t == "x[");
        }
    }

    #[test]
    fn oneof_and_map_and_filter() {
        let mut rng = TestRng::from_seed(3);
        let s = prop_oneof![(0u8..3).prop_map(|v| v as i32), Just(100i32),]
            .prop_filter("positive", |v| *v >= 0);
        let mut saw_const = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 100 || v < 3);
            saw_const |= v == 100;
        }
        assert!(saw_const);
    }

    #[test]
    fn collections_and_arrays() {
        let mut rng = TestRng::from_seed(4);
        let v = crate::collection::vec((0u8..4, 0u8..4), 0..9).generate(&mut rng);
        assert!(v.len() < 9);
        let s = crate::collection::btree_set(0u8..100, 5..6).generate(&mut rng);
        assert!(s.len() <= 5);
        let a = crate::array::uniform3(-1.0f64..1.0).generate(&mut rng);
        assert_eq!(a.len(), 3);
        let o = crate::option::of("[a-z]{1,2}").generate(&mut rng);
        if let Some(s) = o {
            assert!(!s.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself works end to end.
        #[test]
        fn macro_roundtrip(x in 0u32..10, s in "[ab]{1,3}") {
            prop_assert!(x < 10);
            prop_assert_eq!(s.is_empty(), false, "generated {:?}", s);
        }
    }
}
