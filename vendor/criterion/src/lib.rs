//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the benchmarking API subset its benches use: `Criterion`
//! with `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: warm up for `warm_up_time`, then repeatedly call
//! the routine until `measurement_time` elapses, and report the mean
//! wall-clock time per iteration (plus derived throughput when set).
//! There is no statistical analysis, outlier rejection, or HTML report —
//! just honest means, which is what EXPERIMENTS.md quotes.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Measures one routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    /// (total busy time, iterations) of the measurement phase.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses.
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        // Measurement: run until the budget elapses, timing every call.
        let mut busy = Duration::ZERO;
        let mut iterations = 0u64;
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            busy += t0.elapsed();
            iterations += 1;
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.measured = Some((busy, iterations));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_secs_f64() * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

fn run_and_report(
    id: &str,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher { warm_up_time, measurement_time, measured: None };
    f(&mut bencher);
    match bencher.measured {
        Some((busy, iterations)) if iterations > 0 => {
            let mean = busy / iterations as u32;
            let mut line =
                format!("{id:<48} time: [{}]  ({iterations} iterations)", format_duration(mean));
            if let Some(tp) = throughput {
                let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!("  thrpt: {:.0} B/s", per_sec(n)));
                    }
                }
            }
            println!("{line}");
        }
        _ => println!("{id:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            sample_size: 15,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_and_report(&id.into_id(), self.warm_up_time, self.measurement_time, None, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_and_report(&id.into_id(), self.warm_up_time, self.measurement_time, None, |b| {
            f(b, input)
        });
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_and_report(
            &format!("{}/{}", self.name, id.into_id()),
            self.warm_up_time,
            self.measurement_time,
            self.throughput,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_and_report(
            &format!("{}/{}", self.name, id.into_id()),
            self.warm_up_time,
            self.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("x", 10), &10u32, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).into_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").into_id(), "p");
    }
}
