//! The simulated mass spectrometer and wet lab.
//!
//! A *sample* (protein spot) contains a small number of ground-truth
//! proteins. The instrument observes their tryptic peptides as singly
//! charged [M+H]+ peaks, subject to:
//!
//! * **detector dropout** — each true peptide is observed only with some
//!   probability;
//! * **calibration error** — observed masses deviate by a (deterministic
//!   pseudo-)Gaussian relative error;
//! * **contamination** — keratin/trypsin-autolysis-style peaks from a
//!   contaminant protein pool;
//! * **noise** — uniformly random spurious peaks.
//!
//! Because ground truth is recorded alongside each peak list, downstream
//! experiments can measure what the paper could only argue qualitatively:
//! that quality filtering enriches true identifications (§6.3).

use crate::amino::PROTON;
use crate::digest::digest;
use crate::protein::Proteome;
use crate::{ProteomicsError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One acquired peak list (the PMF input for a protein spot).
#[derive(Debug, Clone, PartialEq)]
pub struct PeakList {
    /// Spot identifier (unique within an experiment).
    pub spot_id: String,
    /// Observed [M+H]+ peak masses, ascending.
    pub peaks: Vec<f64>,
    /// Ground truth: accessions of the proteins actually in the sample.
    pub true_proteins: Vec<String>,
}

impl PeakList {
    /// Number of peaks.
    pub fn len(&self) -> usize {
        self.peaks.len()
    }

    /// True when the spectrum is empty.
    pub fn is_empty(&self) -> bool {
        self.peaks.is_empty()
    }
}

/// Acquisition parameters.
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Proteins per sample (spot).
    pub proteins_per_sample: usize,
    /// Probability that a true peptide produces a peak.
    pub detection_probability: f64,
    /// Relative (1σ) mass error, e.g. `5e-5` = 50 ppm.
    pub mass_error_sigma: f64,
    /// Number of contaminant peaks drawn from the contaminant pool.
    pub contaminant_peaks: usize,
    /// Number of uniform noise peaks.
    pub noise_peaks: usize,
    /// Missed cleavages the digest may exhibit.
    pub max_missed_cleavages: usize,
    /// Minimum peptide length contributing peaks.
    pub min_peptide_len: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            proteins_per_sample: 3,
            detection_probability: 0.65,
            mass_error_sigma: 5e-5,
            contaminant_peaks: 6,
            noise_peaks: 8,
            max_missed_cleavages: 1,
            min_peptide_len: 6,
        }
    }
}

/// The instrument: owns the contaminant pool and an RNG stream.
#[derive(Debug)]
pub struct Spectrometer {
    rng: StdRng,
    /// Digested contaminant peptide masses (keratin/trypsin stand-ins).
    contaminant_masses: Vec<f64>,
}

impl Spectrometer {
    /// Builds an instrument. Contaminants are the first few proteins of a
    /// dedicated contaminant proteome derived from the seed.
    pub fn new(seed: u64) -> Self {
        let contaminant_proteome =
            crate::protein::Proteome::generate(&crate::protein::ProteomeConfig {
                size: 4,
                min_len: 300,
                max_len: 600,
                seed: seed ^ 0xC0FFEE,
            })
            .expect("static config is valid");
        let contaminant_masses: Vec<f64> = contaminant_proteome
            .proteins()
            .iter()
            .flat_map(|p| digest(&p.sequence, 0, 6))
            .map(|pep| pep.mass + PROTON)
            .collect();
        Spectrometer { rng: StdRng::seed_from_u64(seed), contaminant_masses }
    }

    /// Deterministic pseudo-Gaussian via Box–Muller.
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Acquires one spot: picks `proteins_per_sample` distinct proteins
    /// from the proteome, digests them, and observes noisy peaks.
    pub fn acquire(
        &mut self,
        proteome: &Proteome,
        spot_id: &str,
        config: &SampleConfig,
    ) -> Result<PeakList> {
        if config.proteins_per_sample == 0 || config.proteins_per_sample > proteome.len() {
            return Err(ProteomicsError::BadConfig(format!(
                "proteins_per_sample {} vs proteome size {}",
                config.proteins_per_sample,
                proteome.len()
            )));
        }
        if !(0.0..=1.0).contains(&config.detection_probability) {
            return Err(ProteomicsError::BadConfig(format!(
                "detection_probability {}",
                config.detection_probability
            )));
        }
        // sample distinct protein indexes
        let mut chosen: Vec<usize> = Vec::with_capacity(config.proteins_per_sample);
        while chosen.len() < config.proteins_per_sample {
            let candidate = self.rng.gen_range(0..proteome.len());
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        let mut peaks: Vec<f64> = Vec::new();
        let mut true_proteins = Vec::with_capacity(chosen.len());
        for &index in &chosen {
            let protein = &proteome.proteins()[index];
            true_proteins.push(protein.accession.clone());
            for peptide in
                digest(&protein.sequence, config.max_missed_cleavages, config.min_peptide_len)
            {
                if self.rng.gen::<f64>() <= config.detection_probability {
                    let error = 1.0 + self.gaussian() * config.mass_error_sigma;
                    peaks.push((peptide.mass + PROTON) * error);
                }
            }
        }
        // contamination
        for _ in 0..config.contaminant_peaks {
            if self.contaminant_masses.is_empty() {
                break;
            }
            let m = self.contaminant_masses[self.rng.gen_range(0..self.contaminant_masses.len())];
            let error = 1.0 + self.gaussian() * config.mass_error_sigma;
            peaks.push(m * error);
        }
        // uniform noise over the usual PMF m/z range
        for _ in 0..config.noise_peaks {
            peaks.push(self.rng.gen_range(700.0..3500.0));
        }
        peaks.sort_by(|a, b| a.partial_cmp(b).expect("finite masses"));
        Ok(PeakList { spot_id: spot_id.to_string(), peaks, true_proteins })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protein::ProteomeConfig;

    fn proteome() -> Proteome {
        Proteome::generate(&ProteomeConfig { size: 30, ..Default::default() }).unwrap()
    }

    #[test]
    fn acquisition_is_deterministic_under_seed() {
        let p = proteome();
        let config = SampleConfig::default();
        let a = Spectrometer::new(9).acquire(&p, "s1", &config).unwrap();
        let b = Spectrometer::new(9).acquire(&p, "s1", &config).unwrap();
        assert_eq!(a, b);
        let c = Spectrometer::new(10).acquire(&p, "s1", &config).unwrap();
        assert_ne!(a.peaks, c.peaks);
    }

    #[test]
    fn ground_truth_recorded_and_distinct() {
        let p = proteome();
        let pl = Spectrometer::new(1).acquire(&p, "s1", &SampleConfig::default()).unwrap();
        assert_eq!(pl.true_proteins.len(), 3);
        let mut dedup = pl.true_proteins.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
        for accession in &pl.true_proteins {
            assert!(p.get(accession).is_ok());
        }
    }

    #[test]
    fn peaks_sorted_and_in_range() {
        let p = proteome();
        let pl = Spectrometer::new(2).acquire(&p, "s1", &SampleConfig::default()).unwrap();
        assert!(!pl.is_empty());
        assert!(pl.peaks.windows(2).all(|w| w[0] <= w[1]));
        assert!(pl.peaks.iter().all(|&m| m > 100.0 && m < 100_000.0));
    }

    #[test]
    fn zero_detection_probability_leaves_only_junk() {
        let p = proteome();
        let config = SampleConfig {
            detection_probability: 0.0,
            contaminant_peaks: 2,
            noise_peaks: 3,
            ..Default::default()
        };
        let pl = Spectrometer::new(3).acquire(&p, "s1", &config).unwrap();
        assert_eq!(pl.len(), 5);
    }

    #[test]
    fn full_detection_without_noise_matches_digest_size() {
        let p = proteome();
        let config = SampleConfig {
            detection_probability: 1.0,
            mass_error_sigma: 0.0,
            contaminant_peaks: 0,
            noise_peaks: 0,
            proteins_per_sample: 1,
            ..Default::default()
        };
        let pl = Spectrometer::new(4).acquire(&p, "s1", &config).unwrap();
        let truth = p.get(&pl.true_proteins[0]).unwrap();
        let expected =
            digest(&truth.sequence, config.max_missed_cleavages, config.min_peptide_len).len();
        assert_eq!(pl.len(), expected);
    }

    #[test]
    fn bad_configs_rejected() {
        let p = proteome();
        let mut s = Spectrometer::new(5);
        assert!(s
            .acquire(&p, "s", &SampleConfig { proteins_per_sample: 0, ..Default::default() })
            .is_err());
        assert!(s
            .acquire(&p, "s", &SampleConfig { proteins_per_sample: 10_000, ..Default::default() })
            .is_err());
        assert!(s
            .acquire(&p, "s", &SampleConfig { detection_probability: 1.5, ..Default::default() })
            .is_err());
    }

    #[test]
    fn mass_error_perturbs_peaks() {
        let p = proteome();
        let exact = SampleConfig {
            mass_error_sigma: 0.0,
            contaminant_peaks: 0,
            noise_peaks: 0,
            detection_probability: 1.0,
            proteins_per_sample: 1,
            ..Default::default()
        };
        let noisy = SampleConfig { mass_error_sigma: 1e-4, ..exact.clone() };
        let a = Spectrometer::new(6).acquire(&p, "s", &exact).unwrap();
        let b = Spectrometer::new(6).acquire(&p, "s", &noisy).unwrap();
        assert_eq!(a.len(), b.len());
        let max_rel: f64 =
            a.peaks.iter().zip(&b.peaks).map(|(x, y)| ((x - y) / x).abs()).fold(0.0, f64::max);
        assert!(max_rel > 0.0 && max_rel < 1e-3, "max relative error {max_rel}");
    }
}
