//! A synthetic Gene Ontology: a rooted DAG of molecular-function terms.
//!
//! The ISPIDER workflow's last step maps identified proteins to GO terms
//! "describing molecular function, expressed in a standard controlled
//! vocabulary". The generator builds a deterministic DAG whose term ids
//! follow the `GO:0000000` convention.

use crate::{ProteomicsError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// One GO term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoTerm {
    /// `GO:`-prefixed 7-digit identifier.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Indexes of `is_a` parents (empty only for the root).
    pub parents: Vec<usize>,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct GoConfig {
    /// Number of terms including the root.
    pub terms: usize,
    /// Maximum `is_a` parents per term.
    pub max_parents: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GoConfig {
    fn default() -> Self {
        GoConfig { terms: 300, max_parents: 2, seed: 42 }
    }
}

/// The ontology DAG.
#[derive(Debug, Clone)]
pub struct GeneOntology {
    terms: Vec<GoTerm>,
}

impl GeneOntology {
    /// Generates a DAG: term 0 is the root `molecular_function`; every
    /// later term picks parents among strictly earlier terms (acyclic by
    /// construction).
    pub fn generate(config: &GoConfig) -> Result<Self> {
        if config.terms == 0 || config.max_parents == 0 {
            return Err(ProteomicsError::BadConfig(format!("{config:?}")));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut terms = Vec::with_capacity(config.terms);
        terms.push(GoTerm {
            id: format!("GO:{:07}", 3674), // the real molecular_function id
            name: "molecular_function".to_string(),
            parents: Vec::new(),
        });
        for index in 1..config.terms {
            let parent_count = rng.gen_range(1..=config.max_parents.min(index));
            let mut parents = BTreeSet::new();
            while parents.len() < parent_count {
                parents.insert(rng.gen_range(0..index));
            }
            terms.push(GoTerm {
                id: format!("GO:{:07}", 16000 + index),
                name: format!("synthetic function {index}"),
                parents: parents.into_iter().collect(),
            });
        }
        Ok(GeneOntology { terms })
    }

    /// All terms.
    pub fn terms(&self) -> &[GoTerm] {
        &self.terms
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the ontology has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Index of a term by id.
    pub fn index_of(&self, id: &str) -> Result<usize> {
        self.terms
            .iter()
            .position(|t| t.id == id)
            .ok_or_else(|| ProteomicsError::NotFound(format!("GO term {id:?}")))
    }

    /// The term at an index.
    pub fn term(&self, index: usize) -> &GoTerm {
        &self.terms[index]
    }

    /// Reflexive-transitive ancestors of a term index.
    pub fn ancestors(&self, index: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        let mut stack = vec![index];
        while let Some(current) = stack.pop() {
            if out.insert(current) {
                stack.extend(self.terms[current].parents.iter().copied());
            }
        }
        out
    }

    /// Leaf terms (no children) — the specific functions GOA prefers to
    /// annotate with.
    pub fn leaves(&self) -> Vec<usize> {
        let mut has_child = vec![false; self.terms.len()];
        for term in &self.terms {
            for &parent in &term.parents {
                has_child[parent] = true;
            }
        }
        has_child.iter().enumerate().filter(|(_, &h)| !h).map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shape() {
        let go = GeneOntology::generate(&GoConfig::default()).unwrap();
        assert_eq!(go.len(), 300);
        assert_eq!(go.term(0).name, "molecular_function");
        assert!(go.term(0).parents.is_empty());
        for (i, term) in go.terms().iter().enumerate().skip(1) {
            assert!(!term.parents.is_empty());
            assert!(term.parents.iter().all(|&p| p < i), "acyclic by construction");
            assert!(term.id.starts_with("GO:"));
            assert_eq!(term.id.len(), 10);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = GeneOntology::generate(&GoConfig::default()).unwrap();
        let b = GeneOntology::generate(&GoConfig::default()).unwrap();
        assert_eq!(a.terms(), b.terms());
    }

    #[test]
    fn ancestors_reach_root() {
        let go = GeneOntology::generate(&GoConfig { terms: 50, ..Default::default() }).unwrap();
        for i in 0..go.len() {
            let anc = go.ancestors(i);
            assert!(anc.contains(&0), "term {i} must reach the root");
            assert!(anc.contains(&i), "reflexive");
        }
    }

    #[test]
    fn leaves_have_no_children() {
        let go = GeneOntology::generate(&GoConfig { terms: 80, ..Default::default() }).unwrap();
        let leaves = go.leaves();
        assert!(!leaves.is_empty());
        for &leaf in &leaves {
            assert!(go.terms().iter().all(|t| !t.parents.contains(&leaf)));
        }
    }

    #[test]
    fn index_lookup() {
        let go = GeneOntology::generate(&GoConfig { terms: 5, ..Default::default() }).unwrap();
        assert_eq!(go.index_of("GO:0003674").unwrap(), 0);
        assert!(go.index_of("GO:9999999").is_err());
    }

    #[test]
    fn bad_config_rejected() {
        assert!(GeneOntology::generate(&GoConfig { terms: 0, ..Default::default() }).is_err());
        assert!(GeneOntology::generate(&GoConfig { max_parents: 0, ..Default::default() }).is_err());
    }
}
