//! The assembled testbed: proteome + instrument + PEDRo + Imprint + GO +
//! GOA, all seeded from one configuration.
//!
//! Examples, integration tests and the Figure 7 harness build a [`World`]
//! and run the ISPIDER pipeline against it.

use crate::go::{GeneOntology, GoConfig};
use crate::goa::{GoaConfig, GoaDb};
use crate::imprint::{Imprint, ImprintConfig};
use crate::pedro::PedroDb;
use crate::protein::{Proteome, ProteomeConfig};
use crate::spectrometer::{SampleConfig, Spectrometer};
use crate::Result;

/// Full testbed configuration.
#[derive(Debug, Clone, Default)]
pub struct WorldConfig {
    pub proteome: ProteomeConfig,
    pub sample: SampleConfig,
    pub imprint: ImprintConfig,
    pub go: GoConfig,
    pub goa: GoaConfig,
    /// Number of protein spots acquired into the PEDRo experiment.
    pub spots: usize,
    /// Name of the deposited experiment.
    pub experiment: String,
}

impl WorldConfig {
    /// The paper-scale default: 10 protein spots (§6.3 processes "the
    /// peptide masses for 10 protein spots").
    pub fn paper_scale(seed: u64) -> Self {
        WorldConfig {
            proteome: ProteomeConfig { seed, ..Default::default() },
            sample: SampleConfig::default(),
            imprint: ImprintConfig::default(),
            go: GoConfig { seed: seed ^ 0x60, ..Default::default() },
            goa: GoaConfig { seed: seed ^ 0x604, ..Default::default() },
            spots: 10,
            experiment: "ispider-pmf".to_string(),
        }
    }
}

/// The assembled testbed.
#[derive(Debug)]
pub struct World {
    pub proteome: Proteome,
    pub pedro: PedroDb,
    pub imprint: Imprint,
    pub go: GeneOntology,
    pub goa: GoaDb,
    pub experiment: String,
}

impl World {
    /// Builds everything from the configuration.
    pub fn generate(config: &WorldConfig) -> Result<Self> {
        let proteome = Proteome::generate(&config.proteome)?;
        let go = GeneOntology::generate(&config.go)?;
        let goa = GoaDb::generate(&proteome, &go, &config.goa)?;
        let imprint = Imprint::new(&proteome, config.imprint.clone())?;

        let mut spectrometer = Spectrometer::new(config.proteome.seed ^ 0x5bec);
        let mut peak_lists = Vec::with_capacity(config.spots);
        for spot in 0..config.spots {
            peak_lists.push(spectrometer.acquire(
                &proteome,
                &format!("spot-{spot:02}"),
                &config.sample,
            )?);
        }
        let mut pedro = PedroDb::new();
        pedro.deposit(&config.experiment, peak_lists)?;

        Ok(World { proteome, pedro, imprint, go, goa, experiment: config.experiment.clone() })
    }

    /// Convenience: the deposited peak lists.
    pub fn peak_lists(&self) -> &[crate::spectrometer::PeakList] {
        self.pedro.peak_lists(&self.experiment).expect("deposited at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_world_assembles() {
        let world = World::generate(&WorldConfig::paper_scale(42)).unwrap();
        assert_eq!(world.peak_lists().len(), 10);
        assert_eq!(world.proteome.len(), 600);
        assert_eq!(world.go.len(), 300);
        assert_eq!(world.goa.protein_count(), 600);
    }

    #[test]
    fn pipeline_end_to_end_produces_go_terms() {
        let world = World::generate(&WorldConfig::paper_scale(7)).unwrap();
        let mut go_term_occurrences = 0usize;
        for peak_list in world.peak_lists() {
            let hits = world.imprint.search(peak_list);
            assert!(!hits.is_empty(), "every spot should identify something");
            for hit in hits {
                go_term_occurrences += world.goa.lookup(&hit.accession).len();
            }
        }
        // §6.3: "a total number of about 500 related GO terms" over 10 spots.
        assert!(
            (150..2000).contains(&go_term_occurrences),
            "GO occurrences {go_term_occurrences} out of plausible range"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = World::generate(&WorldConfig::paper_scale(3)).unwrap();
        let b = World::generate(&WorldConfig::paper_scale(3)).unwrap();
        assert_eq!(a.peak_lists(), b.peak_lists());
    }
}
