//! Imprint: the protein-mass-fingerprinting search engine.
//!
//! The paper's Imprint is "an in-house software tool for PMF" that reports
//! ranked identifications together with quality indicators; we reimplement
//! the essential algorithm: match observed peaks against the in-silico
//! digests of every database protein within a mass tolerance, rank by
//! matched-peak count, and report the Stead et al. universal metrics:
//!
//! * **Hit Ratio (HR)** — matched peaks / total peaks ("an indication of
//!   the signal to noise ratio in a mass spectrum");
//! * **Mass Coverage (MC)** — "the amount of protein sequence matched"
//!   (percentage of residues covered by matched peptides);
//! * **ELDP** — excess of limit-digested peptides: matched peptides with
//!   no missed cleavage minus those with missed cleavages (a digestion
//!   quality indicator from the same metric family).

use crate::amino::PROTON;
use crate::digest::{digest, sequence_coverage, Peptide};
use crate::protein::Proteome;
use crate::spectrometer::PeakList;
use crate::{ProteomicsError, Result};

/// Search parameters.
#[derive(Debug, Clone)]
pub struct ImprintConfig {
    /// Match tolerance in parts-per-million.
    pub tolerance_ppm: f64,
    /// Missed cleavages considered in the theoretical digest.
    pub max_missed_cleavages: usize,
    /// Minimum peptide length contributing theoretical masses.
    pub min_peptide_len: usize,
    /// Maximum number of hits reported per spectrum.
    pub max_hits: usize,
    /// Hits with fewer matched peaks than this are suppressed.
    pub min_matched_peaks: usize,
}

impl Default for ImprintConfig {
    fn default() -> Self {
        ImprintConfig {
            tolerance_ppm: 100.0,
            max_missed_cleavages: 1,
            min_peptide_len: 6,
            max_hits: 20,
            min_matched_peaks: 2,
        }
    }
}

/// One ranked identification with its quality evidence — the schema of the
/// paper's `Imprint Hit Entry` data entity.
#[derive(Debug, Clone, PartialEq)]
pub struct HitEntry {
    /// Identified protein accession.
    pub accession: String,
    /// 1-based native rank (by matched peak count).
    pub rank: usize,
    /// Number of spectrum peaks matched by this protein.
    pub matched_peaks: usize,
    /// Hit Ratio in [0, 1].
    pub hit_ratio: f64,
    /// Mass Coverage as a percentage in [0, 100].
    pub mass_coverage: f64,
    /// Distinct matched peptides.
    pub peptides_count: usize,
    /// Excess of limit-digested peptides (can be negative).
    pub eldp: i64,
}

/// The search engine with a precomputed digest index.
#[derive(Debug)]
pub struct Imprint {
    config: ImprintConfig,
    /// Per protein: its digested peptides (same order as the proteome).
    digests: Vec<Vec<Peptide>>,
    accessions: Vec<String>,
    lengths: Vec<usize>,
}

impl Imprint {
    /// Builds the engine, digesting every database protein once.
    pub fn new(proteome: &Proteome, config: ImprintConfig) -> Result<Self> {
        if config.tolerance_ppm <= 0.0 || config.max_hits == 0 {
            return Err(ProteomicsError::BadConfig(format!("{config:?}")));
        }
        let digests = proteome
            .proteins()
            .iter()
            .map(|p| digest(&p.sequence, config.max_missed_cleavages, config.min_peptide_len))
            .collect();
        Ok(Imprint {
            config,
            digests,
            accessions: proteome.proteins().iter().map(|p| p.accession.clone()).collect(),
            lengths: proteome.proteins().iter().map(|p| p.len()).collect(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ImprintConfig {
        &self.config
    }

    /// Searches one peak list, returning ranked hit entries.
    pub fn search(&self, peak_list: &PeakList) -> Vec<HitEntry> {
        if peak_list.is_empty() {
            return Vec::new();
        }
        let peaks = &peak_list.peaks; // sorted ascending
        let total_peaks = peaks.len();

        struct Candidate {
            index: usize,
            matched_peaks: usize,
            matched_peptides: Vec<usize>,
            eldp: i64,
        }
        let mut candidates: Vec<Candidate> = Vec::new();

        for (index, peptides) in self.digests.iter().enumerate() {
            let mut matched_peak_flags = vec![false; total_peaks];
            let mut matched_peptides = Vec::new();
            let mut eldp = 0i64;
            for (peptide_index, peptide) in peptides.iter().enumerate() {
                let target = peptide.mass + PROTON;
                let tolerance = target * self.config.tolerance_ppm * 1e-6;
                if let Some(peak_index) = nearest_within(peaks, target, tolerance) {
                    matched_peak_flags[peak_index] = true;
                    matched_peptides.push(peptide_index);
                    if peptide.missed_cleavages == 0 {
                        eldp += 1;
                    } else {
                        eldp -= 1;
                    }
                }
            }
            let matched_peaks = matched_peak_flags.iter().filter(|&&m| m).count();
            if matched_peaks >= self.config.min_matched_peaks {
                candidates.push(Candidate { index, matched_peaks, matched_peptides, eldp });
            }
        }

        // native ranking: matched peaks desc, then coverage desc
        let mut scored: Vec<(Candidate, f64)> = candidates
            .into_iter()
            .map(|c| {
                let peptide_refs: Vec<&Peptide> =
                    c.matched_peptides.iter().map(|&i| &self.digests[c.index][i]).collect();
                let coverage = sequence_coverage(self.lengths[c.index], &peptide_refs) * 100.0;
                (c, coverage)
            })
            .collect();
        scored.sort_by(|(a, cov_a), (b, cov_b)| {
            b.matched_peaks
                .cmp(&a.matched_peaks)
                .then(cov_b.partial_cmp(cov_a).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.index.cmp(&b.index))
        });
        scored.truncate(self.config.max_hits);

        scored
            .into_iter()
            .enumerate()
            .map(|(i, (c, coverage))| HitEntry {
                accession: self.accessions[c.index].clone(),
                rank: i + 1,
                matched_peaks: c.matched_peaks,
                hit_ratio: c.matched_peaks as f64 / total_peaks as f64,
                mass_coverage: coverage,
                peptides_count: c.matched_peptides.len(),
                eldp: c.eldp,
            })
            .collect()
    }
}

/// Index of the peak closest to `target` within `tolerance`, if any
/// (binary search over the ascending peak array).
fn nearest_within(peaks: &[f64], target: f64, tolerance: f64) -> Option<usize> {
    let partition = peaks.partition_point(|&m| m < target);
    let mut best: Option<(usize, f64)> = None;
    for candidate in [partition.wrapping_sub(1), partition] {
        if let Some(&mass) = peaks.get(candidate) {
            let distance = (mass - target).abs();
            if distance <= tolerance && best.is_none_or(|(_, d)| distance < d) {
                best = Some((candidate, distance));
            }
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protein::{Proteome, ProteomeConfig};
    use crate::spectrometer::{SampleConfig, Spectrometer};

    fn proteome() -> Proteome {
        Proteome::generate(&ProteomeConfig { size: 120, ..Default::default() }).unwrap()
    }

    fn acquire(seed: u64) -> (Proteome, PeakList) {
        let p = proteome();
        let pl = Spectrometer::new(seed).acquire(&p, "spot", &SampleConfig::default()).unwrap();
        (p, pl)
    }

    #[test]
    fn nearest_within_behaviour() {
        let peaks = [100.0, 200.0, 300.0];
        assert_eq!(nearest_within(&peaks, 199.9, 0.5), Some(1));
        assert_eq!(nearest_within(&peaks, 150.0, 10.0), None);
        assert_eq!(nearest_within(&peaks, 99.0, 2.0), Some(0));
        assert_eq!(nearest_within(&peaks, 301.0, 2.0), Some(2));
        assert_eq!(nearest_within(&[], 1.0, 1.0), None);
    }

    #[test]
    fn true_proteins_rank_high() {
        let (p, pl) = acquire(11);
        let imprint = Imprint::new(&p, ImprintConfig::default()).unwrap();
        let hits = imprint.search(&pl);
        assert!(!hits.is_empty());
        // all three sample proteins should appear, and the top hit should
        // be a true protein
        let top3: Vec<&str> = hits.iter().take(3).map(|h| h.accession.as_str()).collect();
        assert!(pl.true_proteins.iter().any(|t| top3.contains(&t.as_str())));
        for truth in &pl.true_proteins {
            assert!(
                hits.iter().any(|h| &h.accession == truth),
                "true protein {truth} missing from hits"
            );
        }
    }

    #[test]
    fn ranks_are_dense_and_ordered() {
        let (p, pl) = acquire(12);
        let hits = Imprint::new(&p, ImprintConfig::default()).unwrap().search(&pl);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.rank, i + 1);
        }
        assert!(hits.windows(2).all(|w| w[0].matched_peaks >= w[1].matched_peaks));
    }

    #[test]
    fn metrics_are_in_range() {
        let (p, pl) = acquire(13);
        let hits = Imprint::new(&p, ImprintConfig::default()).unwrap().search(&pl);
        for h in &hits {
            assert!((0.0..=1.0).contains(&h.hit_ratio), "HR {}", h.hit_ratio);
            assert!((0.0..=100.0).contains(&h.mass_coverage), "MC {}", h.mass_coverage);
            assert!(h.peptides_count >= h.matched_peaks.min(h.peptides_count));
            assert!(h.matched_peaks >= 2);
        }
    }

    #[test]
    fn search_produces_false_positives_with_loose_tolerance() {
        let (p, pl) = acquire(14);
        let config =
            ImprintConfig { tolerance_ppm: 2000.0, min_matched_peaks: 2, ..Default::default() };
        let hits = Imprint::new(&p, config).unwrap().search(&pl);
        let false_positives =
            hits.iter().filter(|h| !pl.true_proteins.contains(&h.accession)).count();
        assert!(false_positives > 0, "loose tolerance must admit false positives");
    }

    #[test]
    fn tighter_tolerance_reduces_hits() {
        let (p, pl) = acquire(15);
        let loose = Imprint::new(&p, ImprintConfig { tolerance_ppm: 1000.0, ..Default::default() })
            .unwrap()
            .search(&pl)
            .len();
        let tight = Imprint::new(&p, ImprintConfig { tolerance_ppm: 20.0, ..Default::default() })
            .unwrap()
            .search(&pl)
            .len();
        assert!(tight <= loose, "tight {tight} loose {loose}");
    }

    #[test]
    fn empty_spectrum_yields_nothing() {
        let p = proteome();
        let imprint = Imprint::new(&p, ImprintConfig::default()).unwrap();
        let empty = PeakList { spot_id: "s".into(), peaks: vec![], true_proteins: vec![] };
        assert!(imprint.search(&empty).is_empty());
    }

    #[test]
    fn max_hits_truncates() {
        let (p, pl) = acquire(16);
        let config = ImprintConfig {
            tolerance_ppm: 3000.0,
            max_hits: 5,
            min_matched_peaks: 1,
            ..Default::default()
        };
        let hits = Imprint::new(&p, config).unwrap().search(&pl);
        assert!(hits.len() <= 5);
    }

    #[test]
    fn bad_config_rejected() {
        let p = proteome();
        assert!(
            Imprint::new(&p, ImprintConfig { tolerance_ppm: 0.0, ..Default::default() }).is_err()
        );
        assert!(Imprint::new(&p, ImprintConfig { max_hits: 0, ..Default::default() }).is_err());
    }
}
