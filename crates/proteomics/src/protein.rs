//! Proteins and the synthetic proteome generator.

use crate::amino::{natural_frequency, ALPHABET};
use crate::{ProteomicsError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One protein record (the reference-database entry Imprint searches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Protein {
    /// Uniprot-style accession, e.g. `P30089`.
    pub accession: String,
    /// Residue sequence (one-letter codes).
    pub sequence: String,
    /// Free-text description.
    pub description: String,
}

impl Protein {
    /// Sequence length in residues.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// True for the (never generated) empty protein.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

/// Configuration for the synthetic proteome.
#[derive(Debug, Clone)]
pub struct ProteomeConfig {
    /// Number of proteins to generate.
    pub size: usize,
    /// Minimum sequence length.
    pub min_len: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// RNG seed (everything downstream is deterministic under it).
    pub seed: u64,
}

impl Default for ProteomeConfig {
    fn default() -> Self {
        // The default sizing keeps Figure 7 runs around the paper's scale
        // (a reference DB large enough to produce false positives).
        ProteomeConfig { size: 600, min_len: 120, max_len: 900, seed: 42 }
    }
}

/// The reference protein database.
#[derive(Debug, Clone, Default)]
pub struct Proteome {
    proteins: Vec<Protein>,
    by_accession: BTreeMap<String, usize>,
}

impl Proteome {
    /// Generates a synthetic proteome.
    pub fn generate(config: &ProteomeConfig) -> Result<Self> {
        if config.size == 0 || config.min_len == 0 || config.min_len > config.max_len {
            return Err(ProteomicsError::BadConfig(format!("proteome config {config:?}")));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Cumulative distribution over the alphabet for weighted sampling.
        let cdf: Vec<(char, f64)> = {
            let mut acc = 0.0;
            ALPHABET
                .iter()
                .map(|&c| {
                    acc += natural_frequency(c);
                    (c, acc)
                })
                .collect()
        };
        let total = cdf.last().expect("non-empty alphabet").1;

        let mut proteins = Vec::with_capacity(config.size);
        for index in 0..config.size {
            let len = rng.gen_range(config.min_len..=config.max_len);
            let sequence: String = (0..len)
                .map(|_| {
                    let x = rng.gen::<f64>() * total;
                    cdf.iter().find(|(_, cum)| x <= *cum).map(|(c, _)| *c).unwrap_or('A')
                })
                .collect();
            proteins.push(Protein {
                accession: format!("P{:05}", 10000 + index),
                sequence,
                description: format!("Synthetic protein {index}"),
            });
        }
        Ok(Self::from_proteins(proteins))
    }

    /// Builds a proteome from explicit records.
    pub fn from_proteins(proteins: Vec<Protein>) -> Self {
        let by_accession =
            proteins.iter().enumerate().map(|(i, p)| (p.accession.clone(), i)).collect();
        Proteome { proteins, by_accession }
    }

    /// All proteins, in accession-index order.
    pub fn proteins(&self) -> &[Protein] {
        &self.proteins
    }

    /// Lookup by accession.
    pub fn get(&self, accession: &str) -> Result<&Protein> {
        self.by_accession
            .get(accession)
            .map(|&i| &self.proteins[i])
            .ok_or_else(|| ProteomicsError::NotFound(format!("protein {accession:?}")))
    }

    /// Number of proteins.
    pub fn len(&self) -> usize {
        self.proteins.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.proteins.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = ProteomeConfig { size: 10, ..Default::default() };
        let a = Proteome::generate(&config).unwrap();
        let b = Proteome::generate(&config).unwrap();
        assert_eq!(a.proteins(), b.proteins());
        let c = Proteome::generate(&ProteomeConfig { seed: 7, ..config }).unwrap();
        assert_ne!(a.proteins()[0].sequence, c.proteins()[0].sequence);
    }

    #[test]
    fn lengths_respect_bounds() {
        let config = ProteomeConfig { size: 50, min_len: 100, max_len: 200, seed: 1 };
        let p = Proteome::generate(&config).unwrap();
        assert_eq!(p.len(), 50);
        for protein in p.proteins() {
            assert!((100..=200).contains(&protein.len()));
        }
    }

    #[test]
    fn sequences_use_standard_alphabet() {
        let p = Proteome::generate(&ProteomeConfig { size: 5, ..Default::default() }).unwrap();
        for protein in p.proteins() {
            assert!(protein.sequence.chars().all(|c| crate::amino::residue_mass(c).is_some()));
        }
    }

    #[test]
    fn composition_roughly_matches_frequencies() {
        let p =
            Proteome::generate(&ProteomeConfig { size: 60, min_len: 400, max_len: 500, seed: 3 })
                .unwrap();
        let mut counts = BTreeMap::new();
        let mut total = 0usize;
        for protein in p.proteins() {
            for c in protein.sequence.chars() {
                *counts.entry(c).or_insert(0usize) += 1;
                total += 1;
            }
        }
        // leucine should be the most common residue (9.7% natural)
        let leu = counts[&'L'] as f64 / total as f64;
        assert!((0.07..0.13).contains(&leu), "L fraction {leu}");
        // tryptophan the rarest (1.1%)
        let trp = counts[&'W'] as f64 / total as f64;
        assert!(trp < 0.03, "W fraction {trp}");
    }

    #[test]
    fn accession_lookup() {
        let p = Proteome::generate(&ProteomeConfig { size: 3, ..Default::default() }).unwrap();
        assert!(p.get("P10000").is_ok());
        assert!(p.get("P10002").is_ok());
        assert!(matches!(p.get("P99999"), Err(ProteomicsError::NotFound(_))));
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(Proteome::generate(&ProteomeConfig { size: 0, ..Default::default() }).is_err());
        assert!(Proteome::generate(&ProteomeConfig {
            min_len: 50,
            max_len: 10,
            ..Default::default()
        })
        .is_err());
    }
}
