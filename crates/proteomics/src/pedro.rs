//! PEDRo: the experimental-proteomics data store holding peak lists.
//!
//! The ISPIDER workflow's first step is "a set of peak lists are retrieved
//! from the Pedro database"; this module is that store, keyed by
//! experiment name and spot id.

use crate::spectrometer::PeakList;
use crate::{ProteomicsError, Result};
use std::collections::BTreeMap;

/// The peak-list database.
#[derive(Debug, Clone, Default)]
pub struct PedroDb {
    experiments: BTreeMap<String, Vec<PeakList>>,
}

impl PedroDb {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores an experiment's peak lists; errors when the experiment
    /// already exists (experiments are immutable once deposited).
    pub fn deposit(&mut self, experiment: &str, peak_lists: Vec<PeakList>) -> Result<()> {
        if self.experiments.contains_key(experiment) {
            return Err(ProteomicsError::BadConfig(format!(
                "experiment {experiment:?} already deposited"
            )));
        }
        self.experiments.insert(experiment.to_string(), peak_lists);
        Ok(())
    }

    /// All peak lists of an experiment, in deposition order.
    pub fn peak_lists(&self, experiment: &str) -> Result<&[PeakList]> {
        self.experiments
            .get(experiment)
            .map(Vec::as_slice)
            .ok_or_else(|| ProteomicsError::NotFound(format!("experiment {experiment:?}")))
    }

    /// One spot of an experiment.
    pub fn spot(&self, experiment: &str, spot_id: &str) -> Result<&PeakList> {
        self.peak_lists(experiment)?
            .iter()
            .find(|pl| pl.spot_id == spot_id)
            .ok_or_else(|| ProteomicsError::NotFound(format!("spot {spot_id:?} in {experiment:?}")))
    }

    /// Names of deposited experiments.
    pub fn experiments(&self) -> Vec<&str> {
        self.experiments.keys().map(String::as_str).collect()
    }

    /// Total number of spots across experiments.
    pub fn spot_count(&self) -> usize {
        self.experiments.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(spot: &str) -> PeakList {
        PeakList {
            spot_id: spot.to_string(),
            peaks: vec![1000.0, 2000.0],
            true_proteins: vec!["P10000".into()],
        }
    }

    #[test]
    fn deposit_and_retrieve() {
        let mut db = PedroDb::new();
        db.deposit("ispider", vec![pl("s1"), pl("s2")]).unwrap();
        assert_eq!(db.peak_lists("ispider").unwrap().len(), 2);
        assert_eq!(db.spot("ispider", "s2").unwrap().spot_id, "s2");
        assert_eq!(db.experiments(), vec!["ispider"]);
        assert_eq!(db.spot_count(), 2);
    }

    #[test]
    fn missing_entries_error() {
        let mut db = PedroDb::new();
        db.deposit("e", vec![pl("s1")]).unwrap();
        assert!(matches!(db.peak_lists("nope"), Err(ProteomicsError::NotFound(_))));
        assert!(matches!(db.spot("e", "nope"), Err(ProteomicsError::NotFound(_))));
    }

    #[test]
    fn experiments_are_immutable() {
        let mut db = PedroDb::new();
        db.deposit("e", vec![pl("s1")]).unwrap();
        assert!(db.deposit("e", vec![pl("s2")]).is_err());
        assert_eq!(db.peak_lists("e").unwrap().len(), 1);
    }
}
