//! Amino acids and their monoisotopic residue masses.

/// The 20 standard amino acids (one-letter codes).
pub const ALPHABET: [char; 20] = [
    'A', 'R', 'N', 'D', 'C', 'E', 'Q', 'G', 'H', 'I', 'L', 'K', 'M', 'F', 'P', 'S', 'T', 'W', 'Y',
    'V',
];

/// Monoisotopic mass of one water molecule (added once per peptide).
pub const WATER: f64 = 18.010565;

/// Monoisotopic mass of a proton (for singly-charged [M+H]+ peaks).
pub const PROTON: f64 = 1.007276;

/// Monoisotopic residue mass for a one-letter amino-acid code.
///
/// Returns `None` for non-standard letters; sequence generators only emit
/// standard residues, but parsers of user input should handle the `None`.
pub fn residue_mass(code: char) -> Option<f64> {
    Some(match code {
        'G' => 57.021464,
        'A' => 71.037114,
        'S' => 87.032028,
        'P' => 97.052764,
        'V' => 99.068414,
        'T' => 101.047679,
        'C' => 103.009185,
        'L' => 113.084064,
        'I' => 113.084064,
        'N' => 114.042927,
        'D' => 115.026943,
        'Q' => 128.058578,
        'K' => 128.094963,
        'E' => 129.042593,
        'M' => 131.040485,
        'H' => 137.058912,
        'F' => 147.068414,
        'R' => 156.101111,
        'Y' => 163.063329,
        'W' => 186.079313,
        _ => return None,
    })
}

/// Approximate natural abundance of each amino acid in vertebrate
/// proteomes (used by the synthetic sequence generator; frequencies sum to
/// ~1.0 — Swiss-Prot composition statistics, rounded).
pub fn natural_frequency(code: char) -> f64 {
    match code {
        'A' => 0.083,
        'R' => 0.056,
        'N' => 0.041,
        'D' => 0.055,
        'C' => 0.014,
        'E' => 0.067,
        'Q' => 0.039,
        'G' => 0.071,
        'H' => 0.023,
        'I' => 0.059,
        'L' => 0.097,
        'K' => 0.058,
        'M' => 0.024,
        'F' => 0.039,
        'P' => 0.047,
        'S' => 0.066,
        'T' => 0.054,
        'W' => 0.011,
        'Y' => 0.029,
        'V' => 0.069,
        _ => 0.0,
    }
}

/// The monoisotopic mass of an (uncharged) peptide sequence; `None` when a
/// non-standard residue appears.
pub fn peptide_mass(sequence: &str) -> Option<f64> {
    let mut total = WATER;
    for c in sequence.chars() {
        total += residue_mass(c)?;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_alphabet_letters_have_masses() {
        for c in ALPHABET {
            assert!(residue_mass(c).is_some(), "{c}");
            assert!(natural_frequency(c) > 0.0, "{c}");
        }
        assert!(residue_mass('X').is_none());
        assert!(residue_mass('B').is_none());
    }

    #[test]
    fn frequencies_sum_to_about_one() {
        let total: f64 = ALPHABET.iter().map(|&c| natural_frequency(c)).sum();
        assert!((total - 1.0).abs() < 0.01, "sum was {total}");
    }

    #[test]
    fn known_peptide_masses() {
        // glycine alone: residue + water
        let g = peptide_mass("G").unwrap();
        assert!((g - 75.032029).abs() < 1e-5, "G = {g}");
        // angiotensin II (DRVYIHPF), literature monoisotopic mass ≈ 1045.53
        let a2 = peptide_mass("DRVYIHPF").unwrap();
        assert!((a2 - 1045.534).abs() < 0.01, "DRVYIHPF = {a2}");
        assert!(peptide_mass("PEPTIDEX").is_none());
    }

    #[test]
    fn mass_is_additive() {
        let ab = peptide_mass("AR").unwrap();
        let a = residue_mass('A').unwrap();
        let r = residue_mass('R').unwrap();
        assert!((ab - (a + r + WATER)).abs() < 1e-9);
    }
}
