//! GOA: protein → GO-term associations with evidence codes.
//!
//! The running example "queries the GOA database, which links protein
//! accession numbers with terms describing molecular function". Evidence
//! codes model the reliability indicator of the paper's ref \[16\] (Lord et
//! al.): curated codes (IDA, TAS, IMP) versus the electronically inferred
//! IEA.

use crate::go::GeneOntology;
use crate::protein::Proteome;
use crate::{ProteomicsError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// GO evidence codes (the subset the credibility function distinguishes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EvidenceCode {
    /// Inferred from Direct Assay (curated, strong).
    Ida,
    /// Traceable Author Statement (curated).
    Tas,
    /// Inferred from Mutant Phenotype (curated).
    Imp,
    /// Inferred from Electronic Annotation (uncurated, weak).
    Iea,
}

impl EvidenceCode {
    /// The standard three-letter code.
    pub fn code(self) -> &'static str {
        match self {
            EvidenceCode::Ida => "IDA",
            EvidenceCode::Tas => "TAS",
            EvidenceCode::Imp => "IMP",
            EvidenceCode::Iea => "IEA",
        }
    }

    /// The curator-credibility weight used by the evidence-code annotation
    /// function (ref \[16\] established such codes as reliability
    /// indicators).
    pub fn credibility(self) -> f64 {
        match self {
            EvidenceCode::Ida => 1.0,
            EvidenceCode::Imp => 0.9,
            EvidenceCode::Tas => 0.8,
            EvidenceCode::Iea => 0.3,
        }
    }

    /// Parses a three-letter code.
    pub fn parse(code: &str) -> Option<Self> {
        match code {
            "IDA" => Some(EvidenceCode::Ida),
            "TAS" => Some(EvidenceCode::Tas),
            "IMP" => Some(EvidenceCode::Imp),
            "IEA" => Some(EvidenceCode::Iea),
            _ => None,
        }
    }
}

/// One association row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoAnnotation {
    /// Index of the GO term in the ontology.
    pub term_index: usize,
    /// GO term id (denormalized for convenience).
    pub term_id: String,
    /// Evidence code backing the association.
    pub evidence: EvidenceCode,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct GoaConfig {
    /// Associations per protein (min..=max inclusive).
    pub terms_per_protein: (usize, usize),
    /// Probability that an association is electronically inferred (IEA).
    pub iea_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GoaConfig {
    fn default() -> Self {
        GoaConfig { terms_per_protein: (1, 4), iea_fraction: 0.4, seed: 42 }
    }
}

/// The association database.
#[derive(Debug, Clone, Default)]
pub struct GoaDb {
    associations: BTreeMap<String, Vec<GoAnnotation>>,
}

impl GoaDb {
    /// Generates associations for every protein of the proteome, preferring
    /// leaf terms (specific functions).
    pub fn generate(
        proteome: &Proteome,
        ontology: &GeneOntology,
        config: &GoaConfig,
    ) -> Result<Self> {
        let (min_terms, max_terms) = config.terms_per_protein;
        if min_terms == 0 || min_terms > max_terms || !(0.0..=1.0).contains(&config.iea_fraction) {
            return Err(ProteomicsError::BadConfig(format!("{config:?}")));
        }
        let leaves = ontology.leaves();
        if leaves.is_empty() {
            return Err(ProteomicsError::BadConfig("ontology has no leaves".into()));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut associations = BTreeMap::new();
        for protein in proteome.proteins() {
            let count = rng.gen_range(min_terms..=max_terms);
            let mut rows: Vec<GoAnnotation> = Vec::with_capacity(count);
            while rows.len() < count {
                let term_index = leaves[rng.gen_range(0..leaves.len())];
                if rows.iter().any(|r| r.term_index == term_index) {
                    continue;
                }
                let evidence = if rng.gen::<f64>() < config.iea_fraction {
                    EvidenceCode::Iea
                } else {
                    match rng.gen_range(0..3) {
                        0 => EvidenceCode::Ida,
                        1 => EvidenceCode::Tas,
                        _ => EvidenceCode::Imp,
                    }
                };
                rows.push(GoAnnotation {
                    term_index,
                    term_id: ontology.term(term_index).id.clone(),
                    evidence,
                });
            }
            associations.insert(protein.accession.clone(), rows);
        }
        Ok(GoaDb { associations })
    }

    /// Associations of one protein (empty slice when unknown — GOA does
    /// not cover every accession).
    pub fn lookup(&self, accession: &str) -> &[GoAnnotation] {
        self.associations.get(accession).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of annotated proteins.
    pub fn protein_count(&self) -> usize {
        self.associations.len()
    }

    /// Total association rows.
    pub fn association_count(&self) -> usize {
        self.associations.values().map(Vec::len).sum()
    }

    /// Mean credibility of a protein's annotations (the persistent
    /// evidence-code indicator; `None` when unannotated).
    pub fn mean_credibility(&self, accession: &str) -> Option<f64> {
        let rows = self.lookup(accession);
        if rows.is_empty() {
            return None;
        }
        Some(rows.iter().map(|r| r.evidence.credibility()).sum::<f64>() / rows.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::go::GoConfig;
    use crate::protein::ProteomeConfig;

    fn world() -> (Proteome, GeneOntology) {
        let proteome =
            Proteome::generate(&ProteomeConfig { size: 40, ..Default::default() }).unwrap();
        let go = GeneOntology::generate(&GoConfig { terms: 120, ..Default::default() }).unwrap();
        (proteome, go)
    }

    #[test]
    fn every_protein_annotated_within_bounds() {
        let (proteome, go) = world();
        let goa = GoaDb::generate(&proteome, &go, &GoaConfig::default()).unwrap();
        assert_eq!(goa.protein_count(), 40);
        for protein in proteome.proteins() {
            let rows = goa.lookup(&protein.accession);
            assert!((1..=4).contains(&rows.len()));
            // no duplicate terms per protein
            let mut ids: Vec<&usize> = rows.iter().map(|r| &r.term_index).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), rows.len());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (proteome, go) = world();
        let a = GoaDb::generate(&proteome, &go, &GoaConfig::default()).unwrap();
        let b = GoaDb::generate(&proteome, &go, &GoaConfig::default()).unwrap();
        assert_eq!(a.lookup("P10005"), b.lookup("P10005"));
    }

    #[test]
    fn iea_fraction_controls_mix() {
        let (proteome, go) = world();
        let all_iea =
            GoaDb::generate(&proteome, &go, &GoaConfig { iea_fraction: 1.0, ..Default::default() })
                .unwrap();
        assert!(all_iea.lookup("P10000").iter().all(|r| r.evidence == EvidenceCode::Iea));
        let none_iea =
            GoaDb::generate(&proteome, &go, &GoaConfig { iea_fraction: 0.0, ..Default::default() })
                .unwrap();
        assert!(none_iea.lookup("P10000").iter().all(|r| r.evidence != EvidenceCode::Iea));
    }

    #[test]
    fn credibility_ordering_and_mean() {
        assert!(EvidenceCode::Ida.credibility() > EvidenceCode::Iea.credibility());
        let (proteome, go) = world();
        let goa = GoaDb::generate(&proteome, &go, &GoaConfig::default()).unwrap();
        let c = goa.mean_credibility("P10000").unwrap();
        assert!((0.0..=1.0).contains(&c));
        assert!(goa.mean_credibility("UNKNOWN").is_none());
    }

    #[test]
    fn evidence_code_roundtrip() {
        for code in [EvidenceCode::Ida, EvidenceCode::Tas, EvidenceCode::Imp, EvidenceCode::Iea] {
            assert_eq!(EvidenceCode::parse(code.code()), Some(code));
        }
        assert_eq!(EvidenceCode::parse("XXX"), None);
    }

    #[test]
    fn unknown_accession_empty() {
        let (proteome, go) = world();
        let goa = GoaDb::generate(&proteome, &go, &GoaConfig::default()).unwrap();
        assert!(goa.lookup("NOPE").is_empty());
    }

    #[test]
    fn bad_configs() {
        let (proteome, go) = world();
        assert!(GoaDb::generate(
            &proteome,
            &go,
            &GoaConfig { terms_per_protein: (0, 3), ..Default::default() }
        )
        .is_err());
        assert!(GoaDb::generate(
            &proteome,
            &go,
            &GoaConfig { terms_per_protein: (4, 2), ..Default::default() }
        )
        .is_err());
        assert!(GoaDb::generate(
            &proteome,
            &go,
            &GoaConfig { iea_fraction: 1.5, ..Default::default() }
        )
        .is_err());
    }
}
