//! In-silico tryptic digestion.
//!
//! Trypsin cleaves C-terminal to lysine (K) and arginine (R), except when
//! the next residue is proline (P). Real digests are incomplete, so PMF
//! tools also consider peptides spanning a bounded number of *missed
//! cleavages*.

use crate::amino::peptide_mass;

/// One tryptic peptide with its position and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Peptide {
    /// Residue sequence.
    pub sequence: String,
    /// 0-based start offset within the parent protein.
    pub start: usize,
    /// Number of internal missed cleavage sites (0 = limit digest).
    pub missed_cleavages: usize,
    /// Monoisotopic (uncharged) mass.
    pub mass: f64,
}

impl Peptide {
    /// End offset (exclusive) within the parent protein.
    pub fn end(&self) -> usize {
        self.start + self.sequence.len()
    }
}

/// The cleavage sites of a sequence: indices *after which* trypsin cuts.
pub fn cleavage_sites(sequence: &str) -> Vec<usize> {
    let chars: Vec<char> = sequence.chars().collect();
    let mut sites = Vec::new();
    for i in 0..chars.len() {
        let cleaves =
            matches!(chars[i], 'K' | 'R') && chars.get(i + 1).is_none_or(|&next| next != 'P');
        if cleaves && i + 1 < chars.len() {
            sites.push(i + 1);
        }
    }
    sites
}

/// Digests a protein sequence allowing up to `max_missed` missed
/// cleavages. Peptides shorter than `min_len` residues are discarded
/// (too small to be observed in a PMF spectrum).
pub fn digest(sequence: &str, max_missed: usize, min_len: usize) -> Vec<Peptide> {
    let sites = cleavage_sites(sequence);
    // fragment boundaries: 0, sites…, len
    let mut boundaries = Vec::with_capacity(sites.len() + 2);
    boundaries.push(0);
    boundaries.extend(&sites);
    boundaries.push(sequence.len());

    let mut peptides = Vec::new();
    for i in 0..boundaries.len() - 1 {
        for missed in 0..=max_missed {
            let j = i + 1 + missed;
            if j >= boundaries.len() {
                break;
            }
            let (start, end) = (boundaries[i], boundaries[j]);
            let fragment = &sequence[start..end];
            if fragment.len() < min_len {
                continue;
            }
            if let Some(mass) = peptide_mass(fragment) {
                peptides.push(Peptide {
                    sequence: fragment.to_string(),
                    start,
                    missed_cleavages: missed,
                    mass,
                });
            }
        }
    }
    peptides
}

/// The fraction of the parent sequence covered by a set of peptides —
/// the definition behind Imprint's Mass Coverage metric.
pub fn sequence_coverage(parent_len: usize, peptides: &[&Peptide]) -> f64 {
    if parent_len == 0 {
        return 0.0;
    }
    let mut covered = vec![false; parent_len];
    for p in peptides {
        for flag in covered.iter_mut().take(p.end().min(parent_len)).skip(p.start) {
            *flag = true;
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / parent_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaves_after_k_and_r_but_not_before_p() {
        // positions:        0123456789
        let sites = cleavage_sites("AAKAARPAAK");
        // K at 2 -> site 3; R at 5 followed by P -> no site; K at 9 is the
        // terminus -> no internal site.
        assert_eq!(sites, vec![3]);
    }

    #[test]
    fn limit_digest_fragments() {
        let peptides = digest("AAKAAARAAA", 0, 1);
        let seqs: Vec<&str> = peptides.iter().map(|p| p.sequence.as_str()).collect();
        assert_eq!(seqs, vec!["AAK", "AAAR", "AAA"]);
        assert!(peptides.iter().all(|p| p.missed_cleavages == 0));
        // offsets tile the sequence
        assert_eq!(peptides[0].start, 0);
        assert_eq!(peptides[1].start, 3);
        assert_eq!(peptides[2].start, 7);
    }

    #[test]
    fn missed_cleavages_concatenate_fragments() {
        let peptides = digest("AAKAAARAAA", 1, 1);
        let seqs: Vec<(&str, usize)> =
            peptides.iter().map(|p| (p.sequence.as_str(), p.missed_cleavages)).collect();
        assert!(seqs.contains(&("AAKAAAR", 1)));
        assert!(seqs.contains(&("AAARAAA", 1)));
        assert!(seqs.contains(&("AAK", 0)));
    }

    #[test]
    fn min_length_filters_short_fragments() {
        let peptides = digest("AKAAAAK", 0, 4);
        let seqs: Vec<&str> = peptides.iter().map(|p| p.sequence.as_str()).collect();
        assert_eq!(seqs, vec!["AAAAK"]); // "AK" dropped
    }

    #[test]
    fn peptide_masses_are_positive_and_additive() {
        let peptides = digest("AAKAAAR", 0, 1);
        for p in &peptides {
            assert!(p.mass > 18.0);
            assert_eq!(Some(p.mass), crate::amino::peptide_mass(&p.sequence));
        }
    }

    #[test]
    fn coverage_computation() {
        let peptides = digest("AAKAAARAAA", 0, 1);
        let all: Vec<&Peptide> = peptides.iter().collect();
        assert!((sequence_coverage(10, &all) - 1.0).abs() < 1e-12);
        let first: Vec<&Peptide> = peptides.iter().take(1).collect();
        assert!((sequence_coverage(10, &first) - 0.3).abs() < 1e-12);
        assert_eq!(sequence_coverage(0, &all), 0.0);
        assert_eq!(sequence_coverage(10, &[]), 0.0);
    }

    #[test]
    fn no_cleavage_sites_yields_whole_sequence() {
        let peptides = digest("AAAAAA", 2, 1);
        assert_eq!(peptides.len(), 1);
        assert_eq!(peptides[0].sequence, "AAAAAA");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Limit-digest fragments tile the input: concatenating them in
        /// order reproduces the sequence (with min_len 0 so nothing drops).
        #[test]
        fn limit_digest_tiles(seq in "[ARNDCEQGHILKMFPSTWYV]{1,80}") {
            let peptides = digest(&seq, 0, 1);
            let rebuilt: String = peptides.iter().map(|p| p.sequence.clone()).collect();
            prop_assert_eq!(rebuilt, seq);
        }

        /// Every digested peptide occurs at its claimed offset.
        #[test]
        fn offsets_are_correct(seq in "[ARNDCEQGHILKMFPSTWYV]{1,60}") {
            for p in digest(&seq, 2, 1) {
                prop_assert_eq!(&seq[p.start..p.end()], p.sequence.as_str());
            }
        }
    }
}
