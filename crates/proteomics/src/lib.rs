//! # qurator-proteomics
//!
//! The proteomics substrate for the Quality Views reproduction (VLDB 2006,
//! §1.1 and §6.3): everything the paper's running example depends on,
//! rebuilt as a controllable simulation with known ground truth.
//!
//! The paper's experiment runs on real infrastructure we cannot use —
//! a mass spectrometer in Aberdeen, the in-house Imprint PMF tool, the
//! PEDRo peak-list database and the GOA annotation database. Each is
//! replaced by a synthetic equivalent that exercises the same code path:
//!
//! * [`amino`] — amino-acid alphabet and monoisotopic masses;
//! * [`protein`] — proteins and a synthetic proteome generator with
//!   realistic residue frequencies;
//! * [`digest`] — in-silico tryptic digestion (cleave after K/R unless
//!   followed by P) with missed cleavages and peptide masses;
//! * [`spectrometer`] — the wet lab: samples with known protein content,
//!   detector dropout, mass calibration error, contaminant and noise peaks
//!   (the paper's "biological contamination, procedural errors in the lab,
//!   and technology limitations");
//! * [`imprint`] — protein mass fingerprinting: peak list × protein DB →
//!   ranked identifications with the Stead et al. universal quality
//!   metrics **Hit Ratio**, **Mass Coverage**, ELDP;
//! * [`go`] — a synthetic Gene Ontology (molecular-function DAG);
//! * [`goa`] — GOA-style protein → GO-term associations with evidence
//!   codes (the credibility indicator of the paper's ref \[16\]);
//! * [`pedro`] — the PEDRo peak-list store keyed by experiment/spot;
//! * [`world`] — [`world::World`]: one seeded bundle of all of the above,
//!   the testbed examples and benches instantiate.
//!
//! Everything is deterministic under a seed, so the Figure 7 reproduction
//! is repeatable.

pub mod amino;
pub mod digest;
pub mod go;
pub mod goa;
pub mod imprint;
pub mod pedro;
pub mod protein;
pub mod spectrometer;
pub mod world;

pub use imprint::{HitEntry, Imprint, ImprintConfig};
pub use pedro::PedroDb;
pub use protein::{Protein, Proteome, ProteomeConfig};
pub use spectrometer::{PeakList, SampleConfig, Spectrometer};
pub use world::{World, WorldConfig};

/// Errors from the proteomics substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProteomicsError {
    /// Unknown accession / spot / term.
    NotFound(String),
    /// A configuration value is out of range.
    BadConfig(String),
}

impl std::fmt::Display for ProteomicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProteomicsError::NotFound(m) => write!(f, "not found: {m}"),
            ProteomicsError::BadConfig(m) => write!(f, "bad configuration: {m}"),
        }
    }
}

impl std::error::Error for ProteomicsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ProteomicsError>;
