//! The XML writer: canonical pretty-printed output.

use crate::dom::{Element, Node};
use std::fmt::Write as _;

/// Escapes character data for element content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            c => out.push(c),
        }
    }
    out
}

/// Serializes an element (pretty-printed, 2-space indent).
pub fn write_element(root: &Element) -> String {
    let mut out = String::new();
    write_node(&mut out, root, 0);
    out
}

/// Serializes an element with an XML declaration header.
pub fn write_document(root: &Element) -> String {
    format!("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n{}", write_element(root))
}

fn write_node(out: &mut String, e: &Element, depth: usize) {
    let indent = "  ".repeat(depth);
    let _ = write!(out, "{indent}<{}", e.name());
    for (name, value) in e.attributes() {
        let _ = write!(out, " {name}=\"{}\"", escape_attr(value));
    }
    let nodes = e.nodes();
    if nodes.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Text-only elements stay on one line.
    if nodes.iter().all(|n| matches!(n, Node::Text(_))) {
        out.push('>');
        for n in nodes {
            if let Node::Text(t) = n {
                out.push_str(&escape_text(t));
            }
        }
        let _ = writeln!(out, "</{}>", e.name());
        return;
    }
    out.push_str(">\n");
    for n in nodes {
        match n {
            Node::Element(child) => write_node(out, child, depth + 1),
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    let _ = writeln!(out, "{indent}  {}", escape_text(t));
                }
            }
        }
    }
    let _ = writeln!(out, "{indent}</{}>", e.name());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn roundtrip_simple() {
        let e = Element::new("QualityView")
            .with_attr("name", "v1")
            .with_child(Element::new("condition").with_text("ScoreClass in q:high and HR_MC > 20"))
            .with_child(Element::new("empty"));
        let xml = write_element(&e);
        let back = parse(&xml).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn escaping_in_both_positions() {
        let e = Element::new("c").with_attr("a", "x & \"y\" < z").with_text("1 < 2 & 3 > 0");
        let xml = write_element(&e);
        assert!(xml.contains("&amp;"));
        assert!(xml.contains("&lt;"));
        let back = parse(&xml).unwrap();
        assert_eq!(back.attr("a"), Some("x & \"y\" < z"));
        assert_eq!(back.text(), "1 < 2 & 3 > 0");
    }

    #[test]
    fn document_header() {
        let e = Element::new("r");
        assert!(write_document(&e).starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn pretty_printing_is_stable() {
        let xml = "<a><b k=\"1\"><c>t</c></b></a>";
        let once = write_element(&parse(xml).unwrap());
        let twice = write_element(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::dom::Element;
    use crate::parse;
    use proptest::prelude::*;

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-zA-Z][a-zA-Z0-9_.-]{0,10}"
    }

    fn arb_element(depth: u32) -> BoxedStrategy<Element> {
        let leaf = (
            arb_name(),
            proptest::collection::vec((arb_name(), "[ -~]{0,16}"), 0..3),
            proptest::option::of("[ -~]{1,20}"),
        )
            .prop_map(|(name, attrs, text)| {
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    e.set_attr(k, v);
                }
                if let Some(t) = text {
                    if !t.trim().is_empty() {
                        e = e.with_text(t.trim().to_string());
                    }
                }
                e
            });
        if depth == 0 {
            leaf.boxed()
        } else {
            (leaf, proptest::collection::vec(arb_element(depth - 1), 0..3))
                .prop_map(|(mut e, children)| {
                    for c in children {
                        e = e.with_child(c);
                    }
                    e
                })
                .boxed()
        }
    }

    proptest! {
        /// write ∘ parse is the identity, modulo duplicate-attribute
        /// collapsing done by the generator itself.
        #[test]
        fn writer_parser_roundtrip(e in arb_element(3)) {
            let xml = write_element(&e);
            let back = parse(&xml).unwrap();
            prop_assert_eq!(back, e, "xml was:\n{}", xml);
        }
    }
}
