//! # qurator-xml
//!
//! A dependency-free XML subset parser/writer for the Qurator quality-view
//! language (reproduction of *Quality Views*, VLDB 2006, §5.1).
//!
//! Quality views are authored in a concrete XML syntax (`<QualityView>`,
//! `<Annotator>`, `<QualityAssertion>`, `<action>`, …). This crate supplies
//! the syntax layer: a strict single-pass parser producing a small DOM
//! ([`Element`]/[`Node`]), a pretty-printing writer, and navigation helpers.
//!
//! Supported XML: elements, attributes (single- or double-quoted), text,
//! comments, processing instructions (skipped), CDATA sections, and the five
//! predefined entities plus decimal/hex character references. Not supported
//! (not needed by the QV language): DTDs, namespaces-as-scoping (prefixes
//! are kept verbatim in names), and mixed-content preservation of
//! insignificant whitespace.
//!
//! ```
//! use qurator_xml::parse;
//!
//! let doc = parse(r#"<filter><condition>score &gt; 20</condition></filter>"#).unwrap();
//! assert_eq!(doc.name(), "filter");
//! assert_eq!(doc.child("condition").unwrap().text(), "score > 20");
//! ```

mod dom;
mod parser;
mod writer;

pub use dom::{Element, Node, Span};
pub use parser::parse;
pub use writer::{escape_attr, escape_text, write_document, write_element};

/// Errors from XML parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// 1-based column of the offending input.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xml error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, XmlError>;
