//! The XML parser: a single-pass recursive-descent parser producing the DOM.

use crate::dom::{Element, Node, Span};
use crate::{Result, XmlError};

/// Parses a complete document and returns its root element.
///
/// Leading XML declarations (`<?xml … ?>`), comments and whitespace are
/// skipped; trailing non-whitespace content is an error.
pub fn parse(input: &str) -> Result<Element> {
    let mut p = Parser::new(input);
    p.skip_misc();
    let root = p.parse_element()?;
    p.skip_misc();
    if p.peek().is_some() {
        return Err(p.err("content after document element"));
    }
    Ok(root)
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, bytes: src.as_bytes(), pos: 0, line: 1, line_start: 0 }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            line: self.line,
            col: self.pos.saturating_sub(self.line_start) + 1,
            message: message.into(),
        }
    }

    /// The current source position as a DOM span (point span carrying the
    /// byte offset; callers widen it with [`Parser::widen`] once the end
    /// of the region is known).
    fn span_here(&self) -> Span {
        Span::with_extent(
            self.line as u32,
            (self.pos.saturating_sub(self.line_start) + 1) as u32,
            self.pos as u32,
            0,
        )
    }

    /// Extends a span produced by [`Parser::span_here`] to end at byte
    /// offset `end` (exclusive).
    fn widen(span: Span, end: usize) -> Span {
        let len = (end as u32).saturating_sub(span.offset);
        Span { len, ..span }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn skip_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Skips whitespace, comments, PIs and the XML declaration.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_comment();
            } else if self.starts_with("<?") {
                self.skip_pi();
            } else {
                return;
            }
        }
    }

    fn skip_comment(&mut self) {
        self.skip_n(4);
        while self.peek().is_some() && !self.starts_with("-->") {
            self.bump();
        }
        self.skip_n(3);
    }

    fn skip_pi(&mut self) {
        self.skip_n(2);
        while self.peek().is_some() && !self.starts_with("?>") {
            self.bump();
        }
        self.skip_n(2);
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            // names must not start with a digit, '-' or '.'
            if ok && !(self.pos == start && (c.is_ascii_digit() || c == b'-' || c == b'.')) {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn parse_element(&mut self) -> Result<Element> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        let start_span = self.span_here();
        self.bump();
        let name = self.parse_name()?;
        let mut element = Element::new(&name);
        element.set_span(start_span);

        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b'/') => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        element.set_span(Self::widen(start_span, self.pos));
                        return Ok(element); // self-closing
                    }
                    return Err(self.err("expected '>' after '/'"));
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("expected '=' after attribute {attr_name:?}")));
                    }
                    self.bump();
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.bump();
                    let mut value_span = self.span_here();
                    let mut value = String::new();
                    loop {
                        match self.peek() {
                            Some(c) if c == quote => {
                                value_span = Self::widen(value_span, self.pos);
                                self.bump();
                                break;
                            }
                            Some(b'&') => value.push_str(&self.parse_entity()?),
                            Some(b'<') => return Err(self.err("'<' in attribute value")),
                            Some(_) => {
                                let (s, e) = self.take_utf8_char();
                                value.push_str(&self.src[s..e]);
                            }
                            None => return Err(self.err("unterminated attribute value")),
                        }
                    }
                    if element.attr(&attr_name).is_some() {
                        return Err(self.err(format!("duplicate attribute {attr_name:?}")));
                    }
                    element.set_attr_spanned(attr_name, value, Some(value_span));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // content
        loop {
            if self.starts_with("</") {
                self.skip_n(2);
                let close = self.parse_name()?;
                if close != name {
                    return Err(self
                        .err(format!("mismatched end tag: expected </{name}>, found </{close}>")));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in end tag"));
                }
                self.bump();
                element.set_span(Self::widen(start_span, self.pos));
                return Ok(element);
            }
            if self.starts_with("<!--") {
                self.skip_comment();
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.skip_n(9);
                let cdata_span = self.span_here();
                let start = self.pos;
                while self.peek().is_some() && !self.starts_with("]]>") {
                    self.bump();
                }
                if self.peek().is_none() {
                    return Err(self.err("unterminated CDATA section"));
                }
                element.set_text_span(Self::widen(cdata_span, self.pos));
                element.push(Node::Text(self.src[start..self.pos].to_string()));
                self.skip_n(3);
                continue;
            }
            if self.starts_with("<?") {
                self.skip_pi();
                continue;
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    element.push(Node::Element(child));
                }
                Some(_) => {
                    let mut text = String::new();
                    let mut text_start: Option<Span> = None;
                    // byte offset just past the last non-whitespace char, so
                    // the recorded extent matches the trimmed text
                    let mut text_end = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        let significant = !c.is_ascii_whitespace();
                        if text_start.is_none() && significant {
                            text_start = Some(self.span_here());
                        }
                        if c == b'&' {
                            text.push_str(&self.parse_entity()?);
                        } else {
                            let (s, e) = self.take_utf8_char();
                            text.push_str(&self.src[s..e]);
                        }
                        if significant {
                            text_end = self.pos;
                        }
                    }
                    // Whitespace around text runs is insignificant in the QV
                    // language; trim it so pretty-printed documents round-trip.
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        if let Some(span) = text_start {
                            element.set_text_span(Self::widen(span, text_end));
                        }
                        element.push(Node::Text(trimmed.to_string()));
                    }
                }
                None => return Err(self.err(format!("unterminated element <{name}>"))),
            }
        }
    }

    /// Consumes one (possibly multi-byte) character, returning its byte span.
    fn take_utf8_char(&mut self) -> (usize, usize) {
        let start = self.pos;
        self.bump();
        while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
            self.pos += 1;
        }
        (start, self.pos)
    }

    fn parse_entity(&mut self) -> Result<String> {
        // consumes '&'
        self.bump();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b';' {
                let name = &self.src[start..self.pos];
                self.bump();
                return match name {
                    "lt" => Ok("<".into()),
                    "gt" => Ok(">".into()),
                    "amp" => Ok("&".into()),
                    "quot" => Ok("\"".into()),
                    "apos" => Ok("'".into()),
                    _ if name.starts_with("#x") || name.starts_with("#X") => {
                        let cp = u32::from_str_radix(&name[2..], 16)
                            .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                        char::from_u32(cp)
                            .map(|c| c.to_string())
                            .ok_or_else(|| self.err(format!("invalid code point &{name};")))
                    }
                    _ if name.starts_with('#') => {
                        let cp = name[1..]
                            .parse::<u32>()
                            .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                        char::from_u32(cp)
                            .map(|c| c.to_string())
                            .ok_or_else(|| self.err(format!("invalid code point &{name};")))
                    }
                    _ => Err(self.err(format!("unknown entity &{name};"))),
                };
            }
            if self.pos - start > 10 {
                break;
            }
            self.bump();
        }
        Err(self.err("unterminated entity reference"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_qv_fragment_from_paper() {
        // A fragment lifted from §5.1 of the paper.
        let doc = parse(
            r#"<Annotator serviceName="ImprintOutputAnnotator"
                          serviceType="imprint-output-annotation">
                 <variables repositoryRef="cache" persistent="false">
                   <var evidence="q:coverage"/>
                   <var evidence="q:masses"/>
                 </variables>
               </Annotator>"#,
        )
        .unwrap();
        assert_eq!(doc.name(), "Annotator");
        assert_eq!(doc.attr("serviceType"), Some("imprint-output-annotation"));
        let vars = doc.child("variables").unwrap();
        assert_eq!(vars.attr("persistent"), Some("false"));
        assert_eq!(vars.children_named("var").count(), 2);
    }

    #[test]
    fn entities_and_character_refs() {
        let doc = parse(r#"<c a="x&amp;y&#33;">1 &lt; 2 &gt; 0 &#x41;</c>"#).unwrap();
        assert_eq!(doc.attr("a"), Some("x&y!"));
        assert_eq!(doc.text(), "1 < 2 > 0 A");
    }

    #[test]
    fn condition_with_comparison_operators() {
        // The QV action language is embedded in text content; angle brackets
        // must be escapable.
        let doc =
            parse("<condition>ScoreClass in q:high, q:mid and HR_MC &gt; 20</condition>").unwrap();
        assert_eq!(doc.text(), "ScoreClass in q:high, q:mid and HR_MC > 20");
    }

    #[test]
    fn xml_decl_comments_cdata() {
        let doc = parse(
            "<?xml version=\"1.0\"?>\n<!-- top -->\n<r><![CDATA[a < b && c]]><!-- in --><x/></r>",
        )
        .unwrap();
        assert_eq!(doc.text(), "a < b && c");
        assert!(doc.child("x").is_some());
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse("<a k='v \"quoted\"'/>").unwrap();
        assert_eq!(doc.attr("k"), Some("v \"quoted\""));
    }

    #[test]
    fn unicode_content() {
        let doc = parse("<p>protéine αβγ – ≤ 3</p>").unwrap();
        assert_eq!(doc.text(), "protéine αβγ – ≤ 3");
    }

    #[test]
    fn error_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn error_duplicate_attribute() {
        assert!(parse(r#"<a k="1" k="2"/>"#).unwrap_err().message.contains("duplicate"));
    }

    #[test]
    fn error_trailing_content() {
        assert!(parse("<a/><b/>").unwrap_err().message.contains("after document element"));
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse("<a>\n  <b>\n</a>").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn error_unknown_entity() {
        assert!(parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn spans_point_into_the_source() {
        let doc = parse(
            "<QualityView name=\"pmf\">\n  <action name=\"flt\">\n    <condition>HR_MC &gt; 20</condition>\n  </action>\n</QualityView>",
        )
        .unwrap();
        assert_eq!(doc.span(), Some(Span::new(1, 1)));
        assert_eq!(doc.attr_span("name"), Some(Span::new(1, 20)));
        let action = doc.child("action").unwrap();
        assert_eq!(action.span(), Some(Span::new(2, 3)));
        assert_eq!(action.attr_span("name"), Some(Span::new(2, 17)));
        let cond = action.child("condition").unwrap();
        assert_eq!(cond.span(), Some(Span::new(3, 5)));
        // the text span points at the first non-whitespace character of the run
        assert_eq!(cond.text_span(), Some(Span::new(3, 16)));
    }

    #[test]
    fn text_span_skips_leading_whitespace() {
        let doc = parse("<condition>\n    ScoreClass in q:high\n</condition>").unwrap();
        assert_eq!(doc.text_span(), Some(Span::new(2, 5)));
        assert_eq!(doc.text(), "ScoreClass in q:high");
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let doc = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.nodes().len(), 2);
    }

    #[test]
    fn spans_carry_byte_extents() {
        let src = "<a k=\"vv\">\n  <b/>\n  <c>  hi &amp; bye  </c>\n</a>";
        let doc = parse(src).unwrap();
        // whole-document extent covers the full source
        assert_eq!(doc.span().unwrap().byte_range(), Some(0..src.len()));
        // attribute-value extent covers exactly the value bytes
        let kr = doc.attr_span("k").unwrap().byte_range().unwrap();
        assert_eq!(&src[kr], "vv");
        // self-closing element extent covers its tag
        let br = doc.child("b").unwrap().span().unwrap().byte_range().unwrap();
        assert_eq!(&src[br], "<b/>");
        // element extent runs from '<' through the end tag
        let c = doc.child("c").unwrap();
        let cr = c.span().unwrap().byte_range().unwrap();
        assert_eq!(&src[cr], "<c>  hi &amp; bye  </c>");
        // text extent is trimmed to the non-whitespace run (entities kept raw)
        let tr = c.text_span().unwrap().byte_range().unwrap();
        assert_eq!(&src[tr], "hi &amp; bye");
        // synthetic spans stay patch-inert
        assert_eq!(Span::new(3, 9).byte_range(), None);
    }
}
