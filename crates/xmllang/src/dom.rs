//! The XML DOM: elements with attributes and mixed children.

/// A 1-based (line, column) source position recorded by the parser.
///
/// Spans are carried as *metadata*: two elements that differ only in spans
/// compare equal, so programmatically-built DOMs (no spans) still compare
/// equal to parsed ones. Static analysis uses spans to point diagnostics
/// into `.qv` sources.
///
/// When produced by the parser, spans additionally carry a byte `offset`
/// into the source document and, for regions with a known extent (whole
/// elements, attribute values, text runs), a byte `len` — precise enough
/// for the `qv check --fix` patcher to splice replacements in place.
/// Equality and ordering consider only the (line, col) position, so
/// synthetic spans built with [`Span::new`] keep comparing equal to
/// parsed ones at the same position.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in bytes from the line start, which equals the
    /// character column for ASCII sources).
    pub col: u32,
    /// Byte offset of the position in the source document (0 when the
    /// span was built synthetically).
    pub offset: u32,
    /// Byte length of the spanned source region; 0 means "point span" /
    /// unknown extent.
    pub len: u32,
}

impl PartialEq for Span {
    fn eq(&self, other: &Self) -> bool {
        self.line == other.line && self.col == other.col
    }
}

impl Eq for Span {}

impl Span {
    /// Builds a point span (no byte extent).
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col, offset: 0, len: 0 }
    }

    /// Builds a span with a byte extent (used by the parser).
    pub fn with_extent(line: u32, col: u32, offset: u32, len: u32) -> Self {
        Span { line, col, offset, len }
    }

    /// The byte range this span covers in the source document, when the
    /// parser recorded an extent. `None` for point/synthetic spans — those
    /// can locate a finding but cannot anchor a textual patch.
    pub fn byte_range(&self) -> Option<std::ops::Range<usize>> {
        (self.len > 0).then(|| self.offset as usize..(self.offset + self.len) as usize)
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One attribute: name, value, and the source position of the value.
#[derive(Debug, Clone, Default)]
struct Attr {
    name: String,
    value: String,
    /// Position of the first character of the attribute *value*.
    span: Option<Span>,
}

/// One DOM node: either a child element or a run of character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    Element(Element),
    Text(String),
}

impl Node {
    /// The element inside, if this node is an element.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// The text inside, if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Element(_) => None,
            Node::Text(t) => Some(t),
        }
    }
}

/// An XML element: name, ordered attributes, ordered children.
///
/// Attribute order is preserved (the QV writer emits canonical documents and
/// tests compare them textually). When produced by the parser, elements also
/// carry [`Span`]s: the position of the start tag, of each attribute value,
/// and of the first character-data run — equality ignores all spans.
#[derive(Debug, Clone, Default)]
pub struct Element {
    name: String,
    attributes: Vec<Attr>,
    children: Vec<Node>,
    span: Option<Span>,
    text_span: Option<Span>,
}

impl PartialEq for Element {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.children == other.children
            && self.attributes.len() == other.attributes.len()
            && self
                .attributes
                .iter()
                .zip(&other.attributes)
                .all(|(a, b)| a.name == b.name && a.value == b.value)
    }
}

impl Eq for Element {}

impl Element {
    /// Creates an element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), ..Default::default() }
    }

    /// The tag name (including any prefix, verbatim).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builder-style attribute addition.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder-style child-element addition.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style text-child addition.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.set_attr_spanned(name, value, None);
    }

    /// Sets an attribute together with the source position of its value
    /// (used by the parser).
    pub fn set_attr_spanned(
        &mut self,
        name: impl Into<String>,
        value: impl Into<String>,
        span: Option<Span>,
    ) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|a| a.name == name) {
            slot.value = value;
            slot.span = span;
        } else {
            self.attributes.push(Attr { name, value, span });
        }
    }

    /// Looks up an attribute value.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|a| a.name == name).map(|a| a.value.as_str())
    }

    /// The source position of an attribute's value, when parsed.
    pub fn attr_span(&self, name: &str) -> Option<Span> {
        self.attributes.iter().find(|a| a.name == name).and_then(|a| a.span)
    }

    /// The source position of the element's start tag (`<`), when parsed.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    /// Records the element's start-tag position (used by the parser).
    pub fn set_span(&mut self, span: Span) {
        self.span = Some(span);
    }

    /// The source position of the first non-whitespace character of the
    /// element's character data, when parsed. This is where embedded
    /// condition expressions begin.
    pub fn text_span(&self) -> Option<Span> {
        self.text_span
    }

    /// Records the character-data position (used by the parser).
    pub fn set_text_span(&mut self, span: Span) {
        if self.text_span.is_none() {
            self.text_span = Some(span);
        }
    }

    /// An attribute that must be present (useful in deserializers).
    pub fn required_attr(&self, name: &str) -> Result<&str, String> {
        self.attr(name)
            .ok_or_else(|| format!("<{}> is missing required attribute {name:?}", self.name))
    }

    /// All attributes in document order.
    pub fn attributes(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attributes.iter().map(|a| (a.name.as_str(), a.value.as_str()))
    }

    /// Appends a child node.
    pub fn push(&mut self, node: Node) {
        self.children.push(node);
    }

    /// All children in document order.
    pub fn nodes(&self) -> &[Node] {
        &self.children
    }

    /// All child elements in document order.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Child elements with a given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// The first child element with a given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// A child element that must be present (useful in deserializers).
    pub fn required_child(&self, name: &str) -> Result<&Element, String> {
        self.child(name)
            .ok_or_else(|| format!("<{}> is missing required child <{name}>", self.name))
    }

    /// The concatenated, whitespace-trimmed character data directly under
    /// this element.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Depth-first search for the first descendant (or self) with the name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        if self.name == name {
            return Some(self);
        }
        for e in self.elements() {
            if let Some(found) = e.find(name) {
                return Some(found);
            }
        }
        None
    }

    /// Depth-first collection of every descendant (or self) with the name.
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a Element>) {
        if self.name == name {
            out.push(self);
        }
        for e in self.elements() {
            e.find_all(name, out);
        }
    }

    /// Serializes this element as a standalone document string.
    pub fn to_xml(&self) -> String {
        crate::writer::write_element(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("QualityView")
            .with_attr("name", "pmf-filter")
            .with_child(
                Element::new("Annotator")
                    .with_attr("serviceName", "ImprintOutputAnnotator")
                    .with_child(Element::new("variables").with_attr("persistent", "false")),
            )
            .with_child(
                Element::new("action").with_attr("name", "filter top k").with_child(
                    Element::new("filter")
                        .with_child(Element::new("condition").with_text("ScoreClass in q:high")),
                ),
            )
    }

    #[test]
    fn navigation() {
        let e = sample();
        assert_eq!(e.attr("name"), Some("pmf-filter"));
        assert_eq!(
            e.child("Annotator").unwrap().attr("serviceName"),
            Some("ImprintOutputAnnotator")
        );
        assert!(e.child("nope").is_none());
        let cond = e.find("condition").unwrap();
        assert_eq!(cond.text(), "ScoreClass in q:high");
    }

    #[test]
    fn find_all_collects_descendants() {
        let doc = sample();
        let mut hits = Vec::new();
        doc.find_all("variables", &mut hits);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("x");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attr("k"), Some("2"));
        assert_eq!(e.attributes().count(), 1);
    }

    #[test]
    fn required_helpers_report_context() {
        let e = Element::new("Annotator");
        let err = e.required_attr("serviceName").unwrap_err();
        assert!(err.contains("Annotator") && err.contains("serviceName"));
        let err = e.required_child("variables").unwrap_err();
        assert!(err.contains("variables"));
    }

    #[test]
    fn spans_are_metadata_not_identity() {
        let mut a = Element::new("x").with_attr("k", "v");
        let mut b = Element::new("x");
        b.set_attr_spanned("k", "v", Some(Span::new(3, 9)));
        b.set_span(Span::new(3, 1));
        b.set_text_span(Span::new(3, 12));
        assert_eq!(a, b, "spans must not affect equality");
        a.set_span(Span::new(7, 7));
        assert_eq!(a, b);
        assert_eq!(b.attr_span("k"), Some(Span::new(3, 9)));
        assert_eq!(b.span(), Some(Span::new(3, 1)));
        assert_eq!(b.text_span(), Some(Span::new(3, 12)));
        // the first recorded text span wins (concatenated runs)
        b.set_text_span(Span::new(9, 9));
        assert_eq!(b.text_span(), Some(Span::new(3, 12)));
    }

    #[test]
    fn text_trims_and_concatenates() {
        let mut e = Element::new("c");
        e.push(Node::Text("  a ".into()));
        e.push(Node::Element(Element::new("skip")));
        e.push(Node::Text("b  ".into()));
        assert_eq!(e.text(), "a b");
    }
}
