//! A small description-logic engine: taxonomies, typed properties,
//! individuals, subsumption and consistency.

use crate::{OntologyError, Result};
use qurator_rdf::term::Iri;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Object vs datatype properties (the OWL distinction the IQ model uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyKind {
    /// Relates two individuals (e.g. `contains-evidence`).
    Object,
    /// Relates an individual to a literal (e.g. `value`).
    Datatype,
}

#[derive(Debug, Clone, Default)]
struct ClassInfo {
    parents: BTreeSet<Iri>,
    disjoint_with: BTreeSet<Iri>,
    label: Option<String>,
    comment: Option<String>,
}

#[derive(Debug, Clone)]
struct PropertyInfo {
    kind: PropertyKind,
    parents: BTreeSet<Iri>,
    domain: Option<Iri>,
    /// For object properties: a class IRI. For datatype properties: an XSD
    /// datatype IRI.
    range: Option<Iri>,
    label: Option<String>,
}

#[derive(Debug, Clone, Default)]
struct IndividualInfo {
    types: BTreeSet<Iri>,
    label: Option<String>,
}

/// An ontology: class taxonomy, property taxonomy, individuals.
///
/// All mutation methods validate their arguments against what is already
/// declared; [`Ontology::check_consistency`] runs the global checks
/// (acyclic taxonomies, disjointness violations).
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    classes: BTreeMap<Iri, ClassInfo>,
    properties: BTreeMap<Iri, PropertyInfo>,
    individuals: BTreeMap<Iri, IndividualInfo>,
}

impl Ontology {
    /// An empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    // ---------- declarations ----------

    /// Declares a class (idempotent).
    pub fn declare_class(&mut self, class: Iri) -> &mut Self {
        self.classes.entry(class).or_default();
        self
    }

    /// Declares `child ⊑ parent`; both sides are auto-declared.
    pub fn declare_subclass(&mut self, child: Iri, parent: Iri) -> &mut Self {
        self.declare_class(parent.clone());
        self.classes.entry(child).or_default().parents.insert(parent);
        self
    }

    /// Declares two classes disjoint (symmetric).
    pub fn declare_disjoint(&mut self, a: Iri, b: Iri) -> &mut Self {
        self.declare_class(a.clone());
        self.declare_class(b.clone());
        self.classes.get_mut(&a).unwrap().disjoint_with.insert(b.clone());
        self.classes.get_mut(&b).unwrap().disjoint_with.insert(a);
        self
    }

    /// Attaches an `rdfs:label` to a class, property or individual.
    pub fn set_label(&mut self, entity: &Iri, label: impl Into<String>) {
        let label = label.into();
        if let Some(c) = self.classes.get_mut(entity) {
            c.label = Some(label);
        } else if let Some(p) = self.properties.get_mut(entity) {
            p.label = Some(label);
        } else if let Some(i) = self.individuals.get_mut(entity) {
            i.label = Some(label);
        }
    }

    /// Attaches an `rdfs:comment` to a class.
    pub fn set_comment(&mut self, class: &Iri, comment: impl Into<String>) {
        if let Some(c) = self.classes.get_mut(class) {
            c.comment = Some(comment.into());
        }
    }

    /// Declares a property with its kind, and optional domain/range.
    pub fn declare_property(
        &mut self,
        property: Iri,
        kind: PropertyKind,
        domain: Option<Iri>,
        range: Option<Iri>,
    ) -> Result<&mut Self> {
        if let Some(existing) = self.properties.get(&property) {
            if existing.kind != kind {
                return Err(OntologyError::Conflict(format!(
                    "property <{property}> redeclared with a different kind"
                )));
            }
        }
        if let Some(d) = &domain {
            self.declare_class(d.clone());
        }
        if kind == PropertyKind::Object {
            if let Some(r) = &range {
                self.declare_class(r.clone());
            }
        }
        self.properties.insert(
            property,
            PropertyInfo { kind, parents: BTreeSet::new(), domain, range, label: None },
        );
        Ok(self)
    }

    /// Declares `child ⊑ parent` between properties.
    pub fn declare_subproperty(&mut self, child: &Iri, parent: &Iri) -> Result<()> {
        if !self.properties.contains_key(parent) {
            return Err(OntologyError::Unknown(format!("property <{parent}>")));
        }
        let info = self
            .properties
            .get_mut(child)
            .ok_or_else(|| OntologyError::Unknown(format!("property <{child}>")))?;
        info.parents.insert(parent.clone());
        Ok(())
    }

    /// Declares an individual as an instance of `class`.
    pub fn declare_individual(&mut self, individual: Iri, class: Iri) -> Result<&mut Self> {
        if !self.classes.contains_key(&class) {
            return Err(OntologyError::Unknown(format!("class <{class}>")));
        }
        self.individuals.entry(individual).or_default().types.insert(class);
        Ok(self)
    }

    // ---------- queries ----------

    /// Is the class declared?
    pub fn has_class(&self, class: &Iri) -> bool {
        self.classes.contains_key(class)
    }

    /// Is the property declared?
    pub fn has_property(&self, property: &Iri) -> bool {
        self.properties.contains_key(property)
    }

    /// Is the individual declared?
    pub fn has_individual(&self, individual: &Iri) -> bool {
        self.individuals.contains_key(individual)
    }

    /// The label of an entity, if set.
    pub fn label(&self, entity: &Iri) -> Option<&str> {
        self.classes
            .get(entity)
            .and_then(|c| c.label.as_deref())
            .or_else(|| self.properties.get(entity).and_then(|p| p.label.as_deref()))
            .or_else(|| self.individuals.get(entity).and_then(|i| i.label.as_deref()))
    }

    /// The comment of a class, if set.
    pub fn comment(&self, class: &Iri) -> Option<&str> {
        self.classes.get(class).and_then(|c| c.comment.as_deref())
    }

    /// Reflexive-transitive subsumption: `sub ⊑* sup`.
    pub fn is_subclass_of(&self, sub: &Iri, sup: &Iri) -> bool {
        if sub == sup {
            return true;
        }
        let mut queue: VecDeque<&Iri> = VecDeque::new();
        let mut seen: BTreeSet<&Iri> = BTreeSet::new();
        queue.push_back(sub);
        while let Some(current) = queue.pop_front() {
            if let Some(info) = self.classes.get(current) {
                for parent in &info.parents {
                    if parent == sup {
                        return true;
                    }
                    if seen.insert(parent) {
                        queue.push_back(parent);
                    }
                }
            }
        }
        false
    }

    /// All strict + reflexive subclasses of `class`, in IRI order.
    pub fn subclasses_of(&self, class: &Iri) -> Vec<Iri> {
        self.classes.keys().filter(|c| self.is_subclass_of(c, class)).cloned().collect()
    }

    /// All reflexive-transitive superclasses of `class`, in IRI order.
    pub fn superclasses_of(&self, class: &Iri) -> Vec<Iri> {
        let mut out: BTreeSet<Iri> = BTreeSet::new();
        let mut queue: VecDeque<Iri> = VecDeque::new();
        queue.push_back(class.clone());
        while let Some(current) = queue.pop_front() {
            if !out.insert(current.clone()) {
                continue;
            }
            if let Some(info) = self.classes.get(&current) {
                for parent in &info.parents {
                    queue.push_back(parent.clone());
                }
            }
        }
        out.into_iter().collect()
    }

    /// The direct parents of a class.
    pub fn direct_superclasses(&self, class: &Iri) -> Vec<Iri> {
        self.classes.get(class).map(|c| c.parents.iter().cloned().collect()).unwrap_or_default()
    }

    /// Instance checking with subsumption: is `individual : class`?
    pub fn is_instance_of(&self, individual: &Iri, class: &Iri) -> bool {
        self.individuals
            .get(individual)
            .map(|info| info.types.iter().any(|t| self.is_subclass_of(t, class)))
            .unwrap_or(false)
    }

    /// All individuals whose (inferred) types include `class`, in IRI order.
    pub fn instances_of(&self, class: &Iri) -> Vec<Iri> {
        self.individuals.keys().filter(|i| self.is_instance_of(i, class)).cloned().collect()
    }

    /// The asserted (direct) types of an individual.
    pub fn types_of(&self, individual: &Iri) -> Vec<Iri> {
        self.individuals
            .get(individual)
            .map(|i| i.types.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Property kind, if declared.
    pub fn property_kind(&self, property: &Iri) -> Option<PropertyKind> {
        self.properties.get(property).map(|p| p.kind)
    }

    /// Property domain, if declared.
    pub fn property_domain(&self, property: &Iri) -> Option<&Iri> {
        self.properties.get(property).and_then(|p| p.domain.as_ref())
    }

    /// Property range, if declared.
    pub fn property_range(&self, property: &Iri) -> Option<&Iri> {
        self.properties.get(property).and_then(|p| p.range.as_ref())
    }

    /// Reflexive-transitive subproperty check.
    pub fn is_subproperty_of(&self, sub: &Iri, sup: &Iri) -> bool {
        if sub == sup {
            return true;
        }
        let mut queue: VecDeque<&Iri> = VecDeque::new();
        let mut seen: BTreeSet<&Iri> = BTreeSet::new();
        queue.push_back(sub);
        while let Some(current) = queue.pop_front() {
            if let Some(info) = self.properties.get(current) {
                for parent in &info.parents {
                    if parent == sup {
                        return true;
                    }
                    if seen.insert(parent) {
                        queue.push_back(parent);
                    }
                }
            }
        }
        false
    }

    /// Iterates all class IRIs.
    pub fn classes(&self) -> impl Iterator<Item = &Iri> {
        self.classes.keys()
    }

    /// Iterates all property IRIs.
    pub fn properties(&self) -> impl Iterator<Item = &Iri> {
        self.properties.keys()
    }

    /// Iterates all individual IRIs.
    pub fn individuals(&self) -> impl Iterator<Item = &Iri> {
        self.individuals.keys()
    }

    /// Number of declared classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    // ---------- consistency ----------

    /// Global consistency checks:
    /// 1. the subclass graph is acyclic (strictly: no class is a *strict*
    ///    subclass of itself);
    /// 2. the subproperty graph is acyclic;
    /// 3. no individual is an instance of two disjoint classes;
    /// 4. every parent class referenced exists (guaranteed by construction,
    ///    revalidated here).
    pub fn check_consistency(&self) -> Result<()> {
        // 1. class cycles
        for class in self.classes.keys() {
            if self.on_cycle_class(class) {
                return Err(OntologyError::Inconsistent(format!(
                    "subclass cycle through <{class}>"
                )));
            }
        }
        // 2. property cycles
        for property in self.properties.keys() {
            if self.on_cycle_property(property) {
                return Err(OntologyError::Inconsistent(format!(
                    "subproperty cycle through <{property}>"
                )));
            }
        }
        // 3. disjointness (inherited: an instance of A and of B with
        // A' disjoint B' for some superclasses A' of A and B' of B)
        for (individual, info) in &self.individuals {
            let supers: Vec<Iri> =
                info.types.iter().flat_map(|t| self.superclasses_of(t)).collect();
            for a in &supers {
                if let Some(ca) = self.classes.get(a) {
                    for d in &ca.disjoint_with {
                        if supers.iter().any(|s| s == d) {
                            return Err(OntologyError::Inconsistent(format!(
                                "individual <{individual}> is an instance of disjoint classes <{a}> and <{d}>"
                            )));
                        }
                    }
                }
            }
        }
        // 4. dangling parents
        for (class, info) in &self.classes {
            for parent in &info.parents {
                if !self.classes.contains_key(parent) {
                    return Err(OntologyError::Unknown(format!("parent <{parent}> of <{class}>")));
                }
            }
        }
        Ok(())
    }

    fn on_cycle_class(&self, start: &Iri) -> bool {
        // strict reachability from parents back to start
        let mut queue: VecDeque<&Iri> = VecDeque::new();
        let mut seen: BTreeSet<&Iri> = BTreeSet::new();
        if let Some(info) = self.classes.get(start) {
            queue.extend(info.parents.iter());
        }
        while let Some(current) = queue.pop_front() {
            if current == start {
                return true;
            }
            if seen.insert(current) {
                if let Some(info) = self.classes.get(current) {
                    queue.extend(info.parents.iter());
                }
            }
        }
        false
    }

    fn on_cycle_property(&self, start: &Iri) -> bool {
        let mut queue: VecDeque<&Iri> = VecDeque::new();
        let mut seen: BTreeSet<&Iri> = BTreeSet::new();
        if let Some(info) = self.properties.get(start) {
            queue.extend(info.parents.iter());
        }
        while let Some(current) = queue.pop_front() {
            if current == start {
                return true;
            }
            if seen.insert(current) {
                if let Some(info) = self.properties.get(current) {
                    queue.extend(info.parents.iter());
                }
            }
        }
        false
    }

    /// Merges another ontology into this one (declarations are unioned).
    pub fn merge(&mut self, other: &Ontology) {
        for (class, info) in &other.classes {
            let slot = self.classes.entry(class.clone()).or_default();
            slot.parents.extend(info.parents.iter().cloned());
            slot.disjoint_with.extend(info.disjoint_with.iter().cloned());
            if slot.label.is_none() {
                slot.label = info.label.clone();
            }
            if slot.comment.is_none() {
                slot.comment = info.comment.clone();
            }
        }
        for (property, info) in &other.properties {
            self.properties.entry(property.clone()).or_insert_with(|| info.clone());
        }
        for (individual, info) in &other.individuals {
            let slot = self.individuals.entry(individual.clone()).or_default();
            slot.types.extend(info.types.iter().cloned());
            if slot.label.is_none() {
                slot.label = info.label.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://t/{s}"))
    }

    fn taxonomy() -> Ontology {
        let mut o = Ontology::new();
        o.declare_subclass(iri("Evidence"), iri("Thing"));
        o.declare_subclass(iri("HitRatio"), iri("Evidence"));
        o.declare_subclass(iri("MassCoverage"), iri("Evidence"));
        o.declare_subclass(iri("Assertion"), iri("Thing"));
        o
    }

    #[test]
    fn subsumption_is_reflexive_and_transitive() {
        let o = taxonomy();
        assert!(o.is_subclass_of(&iri("HitRatio"), &iri("HitRatio")));
        assert!(o.is_subclass_of(&iri("HitRatio"), &iri("Evidence")));
        assert!(o.is_subclass_of(&iri("HitRatio"), &iri("Thing")));
        assert!(!o.is_subclass_of(&iri("HitRatio"), &iri("Assertion")));
        assert!(!o.is_subclass_of(&iri("Evidence"), &iri("HitRatio")));
    }

    #[test]
    fn subclass_and_superclass_listings() {
        let o = taxonomy();
        let subs = o.subclasses_of(&iri("Evidence"));
        assert_eq!(subs.len(), 3); // Evidence, HitRatio, MassCoverage
        let sups = o.superclasses_of(&iri("HitRatio"));
        assert_eq!(sups.len(), 3); // HitRatio, Evidence, Thing
        assert_eq!(o.direct_superclasses(&iri("HitRatio")), vec![iri("Evidence")]);
    }

    #[test]
    fn individuals_and_instance_checking() {
        let mut o = taxonomy();
        o.declare_individual(iri("e1"), iri("HitRatio")).unwrap();
        assert!(o.is_instance_of(&iri("e1"), &iri("HitRatio")));
        assert!(o.is_instance_of(&iri("e1"), &iri("Evidence")));
        assert!(!o.is_instance_of(&iri("e1"), &iri("Assertion")));
        assert_eq!(o.instances_of(&iri("Evidence")), vec![iri("e1")]);
        assert!(o.declare_individual(iri("e2"), iri("Nope")).is_err());
    }

    #[test]
    fn property_declarations() {
        let mut o = taxonomy();
        o.declare_property(
            iri("contains-evidence"),
            PropertyKind::Object,
            Some(iri("Thing")),
            Some(iri("Evidence")),
        )
        .unwrap();
        assert_eq!(o.property_kind(&iri("contains-evidence")), Some(PropertyKind::Object));
        assert_eq!(o.property_range(&iri("contains-evidence")), Some(&iri("Evidence")));
        // redeclaration with different kind conflicts
        assert!(o
            .declare_property(iri("contains-evidence"), PropertyKind::Datatype, None, None)
            .is_err());
    }

    #[test]
    fn subproperties() {
        let mut o = Ontology::new();
        o.declare_property(iri("p"), PropertyKind::Object, None, None).unwrap();
        o.declare_property(iri("q"), PropertyKind::Object, None, None).unwrap();
        o.declare_subproperty(&iri("q"), &iri("p")).unwrap();
        assert!(o.is_subproperty_of(&iri("q"), &iri("p")));
        assert!(!o.is_subproperty_of(&iri("p"), &iri("q")));
        assert!(o.declare_subproperty(&iri("q"), &iri("missing")).is_err());
    }

    #[test]
    fn consistency_catches_cycles() {
        let mut o = Ontology::new();
        o.declare_subclass(iri("A"), iri("B"));
        o.declare_subclass(iri("B"), iri("C"));
        assert!(o.check_consistency().is_ok());
        o.declare_subclass(iri("C"), iri("A"));
        assert!(matches!(o.check_consistency(), Err(OntologyError::Inconsistent(_))));
    }

    #[test]
    fn consistency_catches_disjoint_violations() {
        let mut o = taxonomy();
        o.declare_disjoint(iri("Evidence"), iri("Assertion"));
        o.declare_individual(iri("x"), iri("HitRatio")).unwrap();
        assert!(o.check_consistency().is_ok());
        o.declare_individual(iri("x"), iri("Assertion")).unwrap();
        let err = o.check_consistency().unwrap_err();
        assert!(matches!(err, OntologyError::Inconsistent(_)));
    }

    #[test]
    fn merge_unions_declarations() {
        let mut a = taxonomy();
        let mut b = Ontology::new();
        b.declare_subclass(iri("PeptideCount"), iri("Evidence"));
        b.declare_individual(iri("e9"), iri("PeptideCount")).unwrap();
        a.merge(&b);
        assert!(a.is_subclass_of(&iri("PeptideCount"), &iri("Evidence")));
        assert!(a.is_instance_of(&iri("e9"), &iri("Evidence")));
    }

    #[test]
    fn labels_and_comments() {
        let mut o = taxonomy();
        o.set_label(&iri("HitRatio"), "Hit Ratio");
        o.set_comment(&iri("HitRatio"), "signal-to-noise indicator");
        assert_eq!(o.label(&iri("HitRatio")), Some("Hit Ratio"));
        assert_eq!(o.comment(&iri("HitRatio")), Some("signal-to-noise indicator"));
        assert_eq!(o.label(&iri("Unknown")), None);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn iri(n: u8) -> Iri {
        Iri::new(format!("http://t/C{n}"))
    }

    proptest! {
        /// For DAG-shaped declarations (child id > parent id), subsumption
        /// equals graph reachability computed naively.
        #[test]
        fn subsumption_matches_reachability(edges in proptest::collection::vec((1u8..20, 0u8..20), 0..40)) {
            let mut o = Ontology::new();
            let mut adj: std::collections::BTreeMap<u8, Vec<u8>> = Default::default();
            for (c, p) in &edges {
                // force DAG: parent id strictly smaller
                if p < c {
                    o.declare_subclass(iri(*c), iri(*p));
                    adj.entry(*c).or_default().push(*p);
                }
            }
            prop_assert!(o.check_consistency().is_ok());
            // naive reachability
            fn reach(adj: &std::collections::BTreeMap<u8, Vec<u8>>, from: u8, to: u8) -> bool {
                if from == to { return true; }
                adj.get(&from).map(|ps| ps.iter().any(|p| reach(adj, *p, to))).unwrap_or(false)
            }
            for c in 0u8..20 {
                for p in 0u8..20 {
                    let declared = o.has_class(&iri(c)) && o.has_class(&iri(p));
                    if declared {
                        prop_assert_eq!(
                            o.is_subclass_of(&iri(c), &iri(p)),
                            reach(&adj, c, p),
                            "c={} p={}", c, p
                        );
                    }
                }
            }
        }
    }
}
