//! RDF rendering of ontologies, so the IQ model can be stored, exchanged
//! and queried next to the annotations it types (paper §3: "the ontology
//! provides both a structured vocabulary of concepts, and a schema for a
//! knowledge base of annotations").

use crate::model::{Ontology, PropertyKind};
use crate::Result;
use qurator_rdf::namespace::{owl, rdf, rdfs};
use qurator_rdf::store::GraphStore;
use qurator_rdf::term::{Iri, Term};
use qurator_rdf::triple::Triple;

/// Serializes an ontology into RDF triples (RDFS + the OWL fragment used).
pub fn to_graph(onto: &Ontology) -> GraphStore {
    let mut g = GraphStore::new();
    let a = Term::iri(rdf::TYPE);

    for class in onto.classes() {
        g.insert(Triple::new(Term::Iri(class.clone()), a.clone(), Term::iri(owl::CLASS)));
        for parent in onto.direct_superclasses(class) {
            g.insert(Triple::new(
                Term::Iri(class.clone()),
                Term::iri(rdfs::SUB_CLASS_OF),
                Term::Iri(parent),
            ));
        }
        if let Some(label) = onto.label(class) {
            g.insert(Triple::new(
                Term::Iri(class.clone()),
                Term::iri(rdfs::LABEL),
                Term::string(label),
            ));
        }
        if let Some(comment) = onto.comment(class) {
            g.insert(Triple::new(
                Term::Iri(class.clone()),
                Term::iri(rdfs::COMMENT),
                Term::string(comment),
            ));
        }
    }
    for property in onto.properties() {
        let kind_iri = match onto.property_kind(property).expect("declared") {
            PropertyKind::Object => owl::OBJECT_PROPERTY,
            PropertyKind::Datatype => owl::DATATYPE_PROPERTY,
        };
        g.insert(Triple::new(Term::Iri(property.clone()), a.clone(), Term::iri(kind_iri)));
        if let Some(domain) = onto.property_domain(property) {
            g.insert(Triple::new(
                Term::Iri(property.clone()),
                Term::iri(rdfs::DOMAIN),
                Term::Iri(domain.clone()),
            ));
        }
        if let Some(range) = onto.property_range(property) {
            g.insert(Triple::new(
                Term::Iri(property.clone()),
                Term::iri(rdfs::RANGE),
                Term::Iri(range.clone()),
            ));
        }
    }
    for individual in onto.individuals() {
        for ty in onto.types_of(individual) {
            g.insert(Triple::new(Term::Iri(individual.clone()), a.clone(), Term::Iri(ty)));
        }
    }
    g
}

/// Reconstructs an ontology from RDF triples produced by [`to_graph`]
/// (or hand-authored in the same vocabulary).
pub fn from_graph(g: &GraphStore) -> Result<Ontology> {
    let mut onto = Ontology::new();
    let a = Term::iri(rdf::TYPE);

    // classes first
    for subject in g.subjects(&a, &Term::iri(owl::CLASS)) {
        if let Term::Iri(class) = subject {
            onto.declare_class(class);
        }
    }
    for t in g.matching(&qurator_rdf::triple::TriplePattern::new(
        None,
        Term::iri(rdfs::SUB_CLASS_OF),
        None,
    )) {
        if let (Term::Iri(child), Term::Iri(parent)) = (t.subject, t.object) {
            onto.declare_subclass(child, parent);
        }
    }

    // properties
    for (kind_iri, kind) in [
        (owl::OBJECT_PROPERTY, PropertyKind::Object),
        (owl::DATATYPE_PROPERTY, PropertyKind::Datatype),
    ] {
        for subject in g.subjects(&a, &Term::iri(kind_iri)) {
            if let Term::Iri(property) = subject {
                let domain = g
                    .object(&Term::Iri(property.clone()), &Term::iri(rdfs::DOMAIN))
                    .and_then(|t| t.as_iri().cloned());
                let range = g
                    .object(&Term::Iri(property.clone()), &Term::iri(rdfs::RANGE))
                    .and_then(|t| t.as_iri().cloned());
                onto.declare_property(property, kind, domain, range)?;
            }
        }
    }

    // individuals: any rdf:type whose object is a declared class (and is
    // not itself a class/property declaration)
    let class_names: Vec<Iri> = onto.classes().cloned().collect();
    for class in class_names {
        for subject in g.subjects(&a, &Term::Iri(class.clone())) {
            if let Term::Iri(individual) = subject {
                if !onto.has_class(&individual) && !onto.has_property(&individual) {
                    onto.declare_individual(individual, class.clone())?;
                }
            }
        }
    }

    // labels & comments
    for t in
        g.matching(&qurator_rdf::triple::TriplePattern::new(None, Term::iri(rdfs::LABEL), None))
    {
        if let (Term::Iri(entity), Term::Literal(l)) = (t.subject, t.object) {
            onto.set_label(&entity, l.lexical());
        }
    }
    for t in
        g.matching(&qurator_rdf::triple::TriplePattern::new(None, Term::iri(rdfs::COMMENT), None))
    {
        if let (Term::Iri(entity), Term::Literal(l)) = (t.subject, t.object) {
            onto.set_comment(&entity, l.lexical());
        }
    }
    Ok(onto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iq::{vocab, IqModel};
    use qurator_rdf::namespace::q;

    #[test]
    fn roundtrip_preserves_taxonomy_and_instances() {
        let iq = IqModel::with_proteomics_extension().unwrap();
        let g = to_graph(iq.ontology());
        let back = from_graph(&g).unwrap();

        assert!(back.is_subclass_of(&q::iri("HitRatio"), &vocab::quality_evidence()));
        assert!(back.is_subclass_of(&q::iri("ImprintHitEntry"), &vocab::data_entity()));
        assert!(back.is_instance_of(&q::iri("high"), &q::iri("PIScoreClassification")));
        assert_eq!(back.property_kind(&vocab::contains_evidence()), Some(PropertyKind::Object));
        assert_eq!(back.property_domain(&vocab::contains_evidence()), Some(&vocab::data_entity()));
        back.check_consistency().unwrap();
    }

    #[test]
    fn serialized_iq_model_is_queryable_with_sparql() {
        let iq = IqModel::with_proteomics_extension().unwrap();
        let g = to_graph(iq.ontology());
        let rows = qurator_rdf::sparql::select(
            &g,
            r#"PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
               PREFIX q: <http://qurator.org/iq#>
               SELECT ?c WHERE { ?c rdfs:subClassOf q:QualityEvidence . }"#,
        )
        .unwrap();
        // HitRatio, MassCoverage, Coverage, Masses, PeptidesCount, ELDP
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn comments_survive_roundtrip() {
        let iq = IqModel::new();
        let g = to_graph(iq.ontology());
        let back = from_graph(&g).unwrap();
        assert!(back.comment(&vocab::quality_evidence()).unwrap().contains("measurable"));
    }
}
