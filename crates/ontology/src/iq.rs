//! The IQ model: the paper's user-extensible ontology of information-quality
//! concepts (Figure 2), plus registration helpers for user extensions.
//!
//! Upper ontology (all in the `q:` namespace, <http://qurator.org/iq#>):
//!
//! ```text
//! owl:Thing
//! ├── q:DataEntity            data items quality can be asserted about
//! ├── q:QualityEvidence       measurable quantities enabling assertions
//! ├── q:QualityAssertion      user-defined decision models (scores/classes)
//! ├── q:AnnotationFunction    functions that compute evidence
//! ├── q:ClassificationModel   enumerated classification schemes
//! └── q:QualityProperty       generic quality dimensions (individuals:
//!                             accuracy, completeness, currency, …)
//! ```
//!
//! Properties: `q:contains-evidence` (DataEntity → QualityEvidence),
//! `q:value` (QualityEvidence → literal), `q:addresses-dimension`
//! (QualityAssertion → QualityProperty), `q:has-classification-model`
//! (QualityAssertion → ClassificationModel).

use crate::model::{Ontology, PropertyKind};
use crate::{OntologyError, Result};
use qurator_rdf::namespace::{q, xsd, PrefixMap};
use qurator_rdf::term::Iri;

/// Well-known IRIs of the IQ upper ontology.
pub mod vocab {
    use qurator_rdf::namespace::q;
    use qurator_rdf::term::Iri;

    pub fn data_entity() -> Iri {
        q::iri("DataEntity")
    }
    pub fn quality_evidence() -> Iri {
        q::iri("QualityEvidence")
    }
    pub fn quality_assertion() -> Iri {
        q::iri("QualityAssertion")
    }
    pub fn annotation_function() -> Iri {
        q::iri("AnnotationFunction")
    }
    pub fn classification_model() -> Iri {
        q::iri("ClassificationModel")
    }
    pub fn quality_property() -> Iri {
        q::iri("QualityProperty")
    }
    pub fn contains_evidence() -> Iri {
        q::iri("contains-evidence")
    }
    pub fn value() -> Iri {
        q::iri("value")
    }
    pub fn addresses_dimension() -> Iri {
        q::iri("addresses-dimension")
    }
    pub fn has_classification_model() -> Iri {
        q::iri("has-classification-model")
    }
    // The generic quality dimensions of §3 ([19, 18] in the paper).
    pub fn accuracy() -> Iri {
        q::iri("Accuracy")
    }
    pub fn completeness() -> Iri {
        q::iri("Completeness")
    }
    pub fn currency() -> Iri {
        q::iri("Currency")
    }
    pub fn consistency() -> Iri {
        q::iri("Consistency")
    }
    pub fn reputation() -> Iri {
        q::iri("Reputation")
    }
}

/// The IQ model: an [`Ontology`] seeded with the upper classes, with
/// typed registration methods for user extensions.
#[derive(Debug, Clone)]
pub struct IqModel {
    onto: Ontology,
    prefixes: PrefixMap,
}

impl Default for IqModel {
    fn default() -> Self {
        Self::new()
    }
}

impl IqModel {
    /// Builds the upper ontology.
    pub fn new() -> Self {
        let mut onto = Ontology::new();
        let top = Iri::new(qurator_rdf::namespace::owl::THING);
        for (class, comment) in [
            (vocab::data_entity(), "any data item for which quality annotations can be computed"),
            (
                vocab::quality_evidence(),
                "any measurable quantity usable as input to a quality assertion",
            ),
            (
                vocab::quality_assertion(),
                "a user-defined decision model producing scores or classifications",
            ),
            (vocab::annotation_function(), "a function computing quality evidence for data items"),
            (vocab::classification_model(), "an enumerated classification scheme"),
            (vocab::quality_property(), "a generic quality dimension from the IQ literature"),
        ] {
            onto.declare_subclass(class.clone(), top.clone());
            onto.set_comment(&class, comment);
        }
        // evidence and assertions live in different taxonomies
        onto.declare_disjoint(vocab::quality_evidence(), vocab::quality_assertion());
        onto.declare_disjoint(vocab::data_entity(), vocab::quality_evidence());

        onto.declare_property(
            vocab::contains_evidence(),
            PropertyKind::Object,
            Some(vocab::data_entity()),
            Some(vocab::quality_evidence()),
        )
        .expect("fresh ontology");
        onto.declare_property(
            vocab::value(),
            PropertyKind::Datatype,
            Some(vocab::quality_evidence()),
            Some(Iri::new(xsd::DOUBLE)),
        )
        .expect("fresh ontology");
        onto.declare_property(
            vocab::addresses_dimension(),
            PropertyKind::Object,
            Some(vocab::quality_assertion()),
            Some(vocab::quality_property()),
        )
        .expect("fresh ontology");
        onto.declare_property(
            vocab::has_classification_model(),
            PropertyKind::Object,
            Some(vocab::quality_assertion()),
            Some(vocab::classification_model()),
        )
        .expect("fresh ontology");

        for dim in [
            vocab::accuracy(),
            vocab::completeness(),
            vocab::currency(),
            vocab::consistency(),
            vocab::reputation(),
        ] {
            onto.declare_individual(dim, vocab::quality_property()).expect("fresh ontology");
        }

        IqModel { onto, prefixes: PrefixMap::with_defaults() }
    }

    /// Read access to the underlying ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.onto
    }

    /// Mutable access (for advanced extensions; prefer the typed helpers).
    pub fn ontology_mut(&mut self) -> &mut Ontology {
        &mut self.onto
    }

    /// The prefix map used to resolve `q:`-style names.
    pub fn prefixes(&self) -> &PrefixMap {
        &self.prefixes
    }

    /// Resolves `prefix:local` or a full IRI string to an [`Iri`].
    pub fn resolve(&self, name: &str) -> Result<Iri> {
        if name.contains("://") || name.starts_with("urn:") {
            return Iri::try_new(name)
                .map_err(|_| OntologyError::Unknown(format!("bad IRI {name:?}")));
        }
        self.prefixes
            .expand(name)
            .map_err(|_| OntologyError::Unknown(format!("cannot resolve {name:?}")))
    }

    /// Renders an IRI in compact `prefix:local` form when possible.
    pub fn compact(&self, iri: &Iri) -> String {
        self.prefixes.compact(iri).unwrap_or_else(|| iri.as_str().to_string())
    }

    fn to_q_iri(&self, name: &str) -> Result<Iri> {
        if name.contains(':') {
            self.resolve(name)
        } else {
            Ok(q::iri(name))
        }
    }

    // ---------- registration helpers ----------

    /// Registers an evidence type as a (direct or indirect) subclass of
    /// `q:QualityEvidence`. `parent` defaults to `QualityEvidence`.
    pub fn register_evidence_type(&mut self, name: &str, parent: Option<&str>) -> Result<Iri> {
        let class = self.to_q_iri(name)?;
        let parent = match parent {
            Some(p) => {
                let p = self.to_q_iri(p)?;
                if !self.onto.is_subclass_of(&p, &vocab::quality_evidence()) {
                    return Err(OntologyError::Conflict(format!(
                        "<{p}> is not a QualityEvidence class"
                    )));
                }
                p
            }
            None => vocab::quality_evidence(),
        };
        self.onto.declare_subclass(class.clone(), parent);
        Ok(class)
    }

    /// Registers a data-entity type (e.g. `ImprintHitEntry`).
    pub fn register_data_entity_type(&mut self, name: &str) -> Result<Iri> {
        let class = self.to_q_iri(name)?;
        self.onto.declare_subclass(class.clone(), vocab::data_entity());
        Ok(class)
    }

    /// Registers an annotation-function type.
    pub fn register_annotation_function(&mut self, name: &str) -> Result<Iri> {
        let class = self.to_q_iri(name)?;
        self.onto.declare_subclass(class.clone(), vocab::annotation_function());
        Ok(class)
    }

    /// Registers a quality-assertion type (operators are classes, not
    /// individuals, to allow further specialization — paper §4.1).
    pub fn register_assertion_type(&mut self, name: &str) -> Result<Iri> {
        let class = self.to_q_iri(name)?;
        self.onto.declare_subclass(class.clone(), vocab::quality_assertion());
        Ok(class)
    }

    /// Registers a classification model with its enumerated labels
    /// (the labels become individuals of the model class, mirroring the
    /// paper's `owl:oneOf` enumeration of `q:PIScoreClassification`).
    pub fn register_classification_model(
        &mut self,
        name: &str,
        labels: &[&str],
    ) -> Result<(Iri, Vec<Iri>)> {
        let class = self.to_q_iri(name)?;
        self.onto.declare_subclass(class.clone(), vocab::classification_model());
        let mut label_iris = Vec::with_capacity(labels.len());
        for label in labels {
            let individual = self.to_q_iri(label)?;
            self.onto.declare_individual(individual.clone(), class.clone())?;
            label_iris.push(individual);
        }
        Ok((class, label_iris))
    }

    /// Files an assertion type under a quality dimension (for reuse, §3).
    pub fn assign_dimension(&mut self, assertion: &str, dimension: &Iri) -> Result<()> {
        let class = self.to_q_iri(assertion)?;
        if !self.onto.is_subclass_of(&class, &vocab::quality_assertion()) {
            return Err(OntologyError::Unknown(format!(
                "<{class}> is not a QualityAssertion class"
            )));
        }
        if !self.onto.is_instance_of(dimension, &vocab::quality_property()) {
            return Err(OntologyError::Unknown(format!(
                "<{dimension}> is not a quality dimension"
            )));
        }
        // Recorded as a label-style annotation on the class (the full RDF
        // rendering carries it as an addresses-dimension triple).
        self.onto.set_label(&class, format!("dimension:{}", dimension.local_name()));
        Ok(())
    }

    // ---------- validation queries ----------

    /// Is the class a registered evidence type?
    pub fn is_evidence_type(&self, class: &Iri) -> bool {
        self.onto.has_class(class) && self.onto.is_subclass_of(class, &vocab::quality_evidence())
    }

    /// Is the class a registered assertion type?
    pub fn is_assertion_type(&self, class: &Iri) -> bool {
        self.onto.has_class(class) && self.onto.is_subclass_of(class, &vocab::quality_assertion())
    }

    /// Is the class a registered annotation-function type?
    pub fn is_annotation_function(&self, class: &Iri) -> bool {
        self.onto.has_class(class) && self.onto.is_subclass_of(class, &vocab::annotation_function())
    }

    /// Is the class a registered data-entity type?
    pub fn is_data_entity_type(&self, class: &Iri) -> bool {
        self.onto.has_class(class) && self.onto.is_subclass_of(class, &vocab::data_entity())
    }

    /// The enumerated labels of a classification model, in IRI order.
    pub fn classification_labels(&self, model: &Iri) -> Vec<Iri> {
        if !self.onto.is_subclass_of(model, &vocab::classification_model()) {
            return Vec::new();
        }
        self.onto.instances_of(model)
    }

    /// The registered quality dimensions.
    pub fn dimensions(&self) -> Vec<Iri> {
        self.onto.instances_of(&vocab::quality_property())
    }

    /// Builds the proteomics extension used throughout the paper's running
    /// example: Imprint evidence types, the `ImprintHitEntry` data entity,
    /// the two score QAs and the three-way classifier with its
    /// `PIScoreClassification` model.
    pub fn with_proteomics_extension() -> Result<Self> {
        let mut iq = Self::new();
        // evidence produced by the Imprint PMF tool (paper §1.1/§5.1)
        iq.register_evidence_type("HitRatio", None)?;
        iq.register_evidence_type("MassCoverage", None)?;
        iq.register_evidence_type("Coverage", None)?;
        iq.register_evidence_type("Masses", None)?;
        iq.register_evidence_type("PeptidesCount", None)?;
        iq.register_evidence_type("ExcessLimitDigestPeptides", None)?;
        // the data entity produced by Imprint
        iq.register_data_entity_type("ImprintHitEntry")?;
        // annotation function capturing Imprint output
        iq.register_annotation_function("ImprintOutputAnnotation")?;
        // quality assertions of §5.1
        iq.register_assertion_type("UniversalPIScore")?;
        iq.register_assertion_type("UniversalPIScore2")?;
        iq.register_assertion_type("PIScoreClassifier")?;
        iq.assign_dimension("UniversalPIScore2", &vocab::accuracy())?;
        // the three-way classification model
        iq.register_classification_model("PIScoreClassification", &["low", "mid", "high"])?;
        iq.ontology().check_consistency()?;
        Ok(iq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_ontology_is_consistent() {
        let iq = IqModel::new();
        iq.ontology().check_consistency().unwrap();
        assert!(iq.ontology().has_class(&vocab::quality_evidence()));
        assert_eq!(iq.dimensions().len(), 5);
    }

    #[test]
    fn evidence_registration_and_checking() {
        let mut iq = IqModel::new();
        let hr = iq.register_evidence_type("HitRatio", None).unwrap();
        assert!(iq.is_evidence_type(&hr));
        assert!(!iq.is_assertion_type(&hr));
        // sub-evidence under an existing evidence class
        let hr2 = iq.register_evidence_type("SmoothedHitRatio", Some("HitRatio")).unwrap();
        assert!(iq.is_evidence_type(&hr2));
        assert!(iq.ontology().is_subclass_of(&hr2, &hr));
        // parent must be evidence
        iq.register_assertion_type("SomeQA").unwrap();
        assert!(iq.register_evidence_type("X", Some("SomeQA")).is_err());
    }

    #[test]
    fn classification_model_labels() {
        let mut iq = IqModel::new();
        let (model, labels) = iq
            .register_classification_model("PIScoreClassification", &["low", "mid", "high"])
            .unwrap();
        assert_eq!(labels.len(), 3);
        let listed = iq.classification_labels(&model);
        assert_eq!(listed.len(), 3);
        assert!(listed.contains(&q::iri("high")));
        // non-model class yields nothing
        assert!(iq.classification_labels(&q::iri("HitRatio")).is_empty());
    }

    #[test]
    fn resolve_and_compact() {
        let iq = IqModel::new();
        assert_eq!(iq.resolve("q:HitRatio").unwrap(), q::iri("HitRatio"));
        assert_eq!(iq.resolve("urn:lsid:a:b:C").unwrap().as_str(), "urn:lsid:a:b:C");
        assert!(iq.resolve("nope:X").is_err());
        assert_eq!(iq.compact(&q::iri("HitRatio")), "q:HitRatio");
    }

    #[test]
    fn dimension_assignment_validates() {
        let mut iq = IqModel::new();
        iq.register_assertion_type("ScoreQA").unwrap();
        iq.assign_dimension("ScoreQA", &vocab::accuracy()).unwrap();
        assert!(iq.assign_dimension("NotRegistered", &vocab::accuracy()).is_err());
        let bogus = q::iri("NotADimension");
        assert!(iq.assign_dimension("ScoreQA", &bogus).is_err());
    }

    #[test]
    fn proteomics_extension_matches_paper() {
        let iq = IqModel::with_proteomics_extension().unwrap();
        assert!(iq.is_evidence_type(&q::iri("HitRatio")));
        assert!(iq.is_evidence_type(&q::iri("MassCoverage")));
        assert!(iq.is_data_entity_type(&q::iri("ImprintHitEntry")));
        assert!(iq.is_assertion_type(&q::iri("UniversalPIScore2")));
        assert!(iq.is_annotation_function(&q::iri("ImprintOutputAnnotation")));
        let labels = iq.classification_labels(&q::iri("PIScoreClassification"));
        assert_eq!(labels.len(), 3);
    }
}
