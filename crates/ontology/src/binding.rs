//! The binding model (paper §3 and §6): associates IQ concepts with
//! concrete `ServiceResource` / `DataResource` objects through `Binding`
//! objects, each carrying a locator.
//!
//! The QV compiler uses this registry to map abstract operator types
//! (`q:ImprintOutputAnnotation`, `q:UniversalPIScore2`, …) to executable
//! services, and data-entity concepts to retrieval locators (XPath, SQL,
//! LSID resolver endpoints).

use crate::{OntologyError, Result};
use qurator_rdf::term::Iri;
use std::collections::BTreeMap;

/// The two resource kinds of the binding ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// An executable service (the paper: a Web-service endpoint).
    Service,
    /// A data source (the paper: a resource locator such as an XPath
    /// expression or an SQL query).
    Data,
}

/// A concrete resource with its locator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    pub kind: ResourceKind,
    /// Endpoint / locator string; its interpretation depends on the kind
    /// (service name in the in-process registry, query text, file path…).
    pub locator: String,
}

impl Resource {
    /// A service resource.
    pub fn service(locator: impl Into<String>) -> Self {
        Resource { kind: ResourceKind::Service, locator: locator.into() }
    }

    /// A data resource.
    pub fn data(locator: impl Into<String>) -> Self {
        Resource { kind: ResourceKind::Data, locator: locator.into() }
    }
}

/// One binding: concept → resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    pub concept: Iri,
    pub resource: Resource,
}

/// The semantic registry of bindings (paper §6: "The binding information is
/// maintained in a semantic registry whose schema is defined in a binding
/// model").
#[derive(Debug, Clone, Default)]
pub struct BindingRegistry {
    bindings: BTreeMap<Iri, Resource>,
}

impl BindingRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the binding for a concept.
    pub fn bind(&mut self, concept: Iri, resource: Resource) {
        self.bindings.insert(concept, resource);
    }

    /// Convenience: binds a concept to a service locator.
    pub fn bind_service(&mut self, concept: Iri, locator: impl Into<String>) {
        self.bind(concept, Resource::service(locator));
    }

    /// Convenience: binds a concept to a data locator.
    pub fn bind_data(&mut self, concept: Iri, locator: impl Into<String>) {
        self.bind(concept, Resource::data(locator));
    }

    /// The resource bound to `concept`, if any.
    pub fn lookup(&self, concept: &Iri) -> Option<&Resource> {
        self.bindings.get(concept)
    }

    /// The service locator for `concept`, or an error naming the gap —
    /// the compiler calls this for every abstract operator.
    pub fn service_locator(&self, concept: &Iri) -> Result<&str> {
        match self.lookup(concept) {
            Some(Resource { kind: ResourceKind::Service, locator }) => Ok(locator),
            Some(Resource { kind: ResourceKind::Data, .. }) => Err(OntologyError::Conflict(
                format!("<{concept}> is bound to a data resource, not a service"),
            )),
            None => {
                Err(OntologyError::Unknown(format!("no service binding for concept <{concept}>")))
            }
        }
    }

    /// All bindings, in concept order.
    pub fn iter(&self) -> impl Iterator<Item = Binding> + '_ {
        self.bindings.iter().map(|(concept, resource)| Binding {
            concept: concept.clone(),
            resource: resource.clone(),
        })
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True when no bindings are registered.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;

    #[test]
    fn bind_and_lookup() {
        let mut reg = BindingRegistry::new();
        reg.bind_service(q::iri("UniversalPIScore2"), "svc://qa/hr-mc-score");
        reg.bind_data(q::iri("ImprintHitEntry"), "sql://pedro/hits");
        assert_eq!(
            reg.service_locator(&q::iri("UniversalPIScore2")).unwrap(),
            "svc://qa/hr-mc-score"
        );
        assert_eq!(reg.lookup(&q::iri("ImprintHitEntry")).unwrap().kind, ResourceKind::Data);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn missing_and_wrong_kind_bindings_error() {
        let mut reg = BindingRegistry::new();
        reg.bind_data(q::iri("X"), "sql://x");
        assert!(matches!(reg.service_locator(&q::iri("Y")), Err(OntologyError::Unknown(_))));
        assert!(matches!(reg.service_locator(&q::iri("X")), Err(OntologyError::Conflict(_))));
    }

    #[test]
    fn rebinding_replaces() {
        let mut reg = BindingRegistry::new();
        reg.bind_service(q::iri("A"), "svc://v1");
        reg.bind_service(q::iri("A"), "svc://v2");
        assert_eq!(reg.service_locator(&q::iri("A")).unwrap(), "svc://v2");
        assert_eq!(reg.iter().count(), 1);
    }
}
