//! # qurator-ontology
//!
//! The semantic layer of the Qurator quality framework (reproduction of
//! *Quality Views*, VLDB 2006, §3 and §6).
//!
//! The paper defines an **IQ model** — an OWL-DL ontology whose root
//! classes are `QualityAssertion`, `QualityEvidence`, `AnnotationFunction`
//! and `DataEntity` — plus a **binding model** that associates IQ concepts
//! with concrete service/data resources so that abstract quality views can
//! be compiled into executable workflows.
//!
//! This crate implements both on top of a small description-logic engine:
//!
//! * [`model`] — classes, subclass/subproperty hierarchies, object and
//!   datatype properties with domain/range, individuals, subsumption and
//!   instance checking, disjointness, and consistency checks;
//! * [`iq`] — the IQ model itself: the fixed upper ontology of Figure 2,
//!   helpers for registering user extensions (evidence types, assertion
//!   classes with their classification models, annotation functions, data
//!   entity types), and the generic quality dimensions (accuracy,
//!   completeness, currency, …) assertions can be filed under;
//! * [`binding`] — the binding model: concept → `ServiceResource` /
//!   `DataResource` mappings with locators, used by the QV compiler;
//! * [`rdf_io`] — (de)serialization of ontologies to RDF triples so the IQ
//!   model can live in the same stores as the annotations it types.

pub mod binding;
pub mod iq;
pub mod model;
pub mod rdf_io;

pub use binding::{Binding, BindingRegistry, Resource, ResourceKind};
pub use iq::IqModel;
pub use model::{Ontology, PropertyKind};

/// Errors from the ontology layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// The referenced class/property/individual is not declared.
    Unknown(String),
    /// A declaration conflicts with an existing one.
    Conflict(String),
    /// A consistency check failed (cycles, disjointness violations, …).
    Inconsistent(String),
}

impl std::fmt::Display for OntologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OntologyError::Unknown(m) => write!(f, "unknown ontology entity: {m}"),
            OntologyError::Conflict(m) => write!(f, "conflicting declaration: {m}"),
            OntologyError::Inconsistent(m) => write!(f, "ontology inconsistency: {m}"),
        }
    }
}

impl std::error::Error for OntologyError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OntologyError>;
