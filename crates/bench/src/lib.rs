//! Shared fixtures for the experiment harness and Criterion benches.
//!
//! Every table/figure regeneration binary (`src/bin/fig*.rs`,
//! `src/bin/qa_ablation.rs`) and every bench (`benches/*.rs`) builds its
//! workload through these helpers so parameters stay consistent with
//! DESIGN.md's experiment index.

use qurator::prelude::*;
use qurator_rdf::namespace::q;
use qurator_rdf::term::Term;

/// Builds an Imprint-shaped dataset of `n` synthetic hit entries with a
/// deterministic quality gradient plus pseudo-random jitter (no RNG state:
/// a simple LCG keyed by the index keeps benches reproducible).
pub fn synthetic_hits(n: usize) -> DataSet {
    let mut dataset = DataSet::new();
    for index in 0..n {
        let jitter = lcg(index as u64) % 1000;
        let quality = (n - index) as f64 / n as f64; // descending quality
        let hr = (0.05 + 0.9 * quality + jitter as f64 * 1e-5).min(1.0);
        let mc = 50.0 * quality + (jitter % 100) as f64 * 0.05;
        let pc = (1.0 + 14.0 * quality) as i64;
        dataset.push(
            Term::iri(format!("urn:lsid:bench:hit:H{index:06}")),
            [
                ("hitRatio", EvidenceValue::from(hr)),
                ("massCoverage", EvidenceValue::from(mc)),
                ("peptidesCount", EvidenceValue::from(pc)),
            ],
        );
    }
    dataset
}

/// The [`synthetic_hits`] workload rendered as the TSV wire format the
/// `POST /run/<view>` endpoint accepts — the serving benches submit the
/// same gradient the enactment benches measure locally.
pub fn synthetic_hits_tsv(n: usize) -> String {
    let mut out = String::from("id\thitRatio\tmassCoverage\tpeptidesCount\n");
    for index in 0..n {
        let jitter = lcg(index as u64) % 1000;
        let quality = (n - index) as f64 / n as f64;
        let hr = (0.05 + 0.9 * quality + jitter as f64 * 1e-5).min(1.0);
        let mc = 50.0 * quality + (jitter % 100) as f64 * 0.05;
        let pc = (1.0 + 14.0 * quality) as i64;
        out.push_str(&format!("urn:lsid:bench:hit:H{index:06}\t{hr}\t{mc}\t{pc}\n"));
    }
    out
}

/// Minimal multiplicative LCG for jitter.
pub fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407) >> 33
}

/// The §5.1 paper view with the classifier-based filter used across the
/// perf experiments.
pub fn bench_view() -> QualityViewSpec {
    let mut spec = QualityViewSpec::paper_example();
    spec.actions[0].kind = qurator::spec::ActionKind::Filter {
        condition: "ScoreClass in q:high, q:mid and HR_MC > 0".to_string(),
    };
    spec
}

/// A view scaled to `annotators`/`assertions`/`actions` operator counts
/// (for the E4 compile-latency sweep). All QAs bind the same evidence so
/// the services resolve; extra IQ registrations are made on the engine's
/// model clone by `bench_engine`.
pub fn scaled_view(assertions: usize, actions: usize) -> QualityViewSpec {
    let mut spec = QualityViewSpec::new(format!("scaled-{assertions}-{actions}"));
    spec.annotators.push(qurator::spec::AnnotatorDecl {
        service_name: "imprint".into(),
        service_type: "q:ImprintOutputAnnotation".into(),
        repository_ref: "cache".into(),
        persistent: false,
        variables: vec![qurator::spec::VarDecl::evidence("q:HitRatio")],
    });
    for i in 0..assertions {
        spec.assertions.push(qurator::spec::AssertionDecl {
            service_name: format!("qa{i}"),
            service_type: "q:UniversalPIScore".into(),
            tag_name: format!("S{i}"),
            tag_kind: qurator::spec::TagKind::Score,
            tag_sem_type: None,
            repository_ref: "cache".into(),
            variables: vec![qurator::spec::VarDecl::named("hitratio", "q:HitRatio")],
        });
    }
    for i in 0..actions {
        spec.actions.push(qurator::spec::ActionDecl {
            name: format!("act{i}"),
            kind: qurator::spec::ActionKind::Filter {
                condition: format!("S{} > 0", i % assertions.max(1)),
            },
        });
    }
    spec
}

/// An engine able to validate [`scaled_view`]s of any size (the stock
/// proteomics engine already registers every service type they use —
/// multiple QAs may share one service type). Annotator capture is limited
/// to hitRatio to keep annotation work proportional only to data size.
pub fn bench_engine() -> QualityEngine {
    QualityEngine::with_proteomics_defaults().expect("stock engine")
}

/// Seeds the engine's `cache` repository with evidence for `dataset`
/// without going through an annotator (enrichment-only benches).
pub fn seed_cache(engine: &QualityEngine, dataset: &DataSet) {
    let cache = engine.catalog().get_or_create_cache("cache");
    for item in dataset.items() {
        for (field, evidence) in [
            ("hitRatio", q::iri("HitRatio")),
            ("massCoverage", q::iri("MassCoverage")),
            ("peptidesCount", q::iri("PeptidesCount")),
        ] {
            let value = dataset.field(item, field);
            if !value.is_null() {
                cache.annotate(item, &evidence, value).expect("evidence type");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_hits_gradient() {
        let ds = synthetic_hits(100);
        assert_eq!(ds.len(), 100);
        let first = ds.field(&ds.items()[0], "hitRatio").as_number().unwrap();
        let last = ds.field(&ds.items()[99], "hitRatio").as_number().unwrap();
        assert!(first > last);
    }

    #[test]
    fn bench_view_validates_and_runs() {
        let engine = bench_engine();
        let ds = synthetic_hits(50);
        let outcome = engine.execute_view(&bench_view(), &ds).unwrap();
        let kept = outcome.group("filter top k score").unwrap().dataset.len();
        assert!(kept > 0 && kept < 50);
    }

    #[test]
    fn scaled_views_validate() {
        let engine = bench_engine();
        for (qas, acts) in [(1, 1), (4, 2), (8, 8)] {
            let spec = scaled_view(qas, acts);
            engine.validate(&spec).unwrap_or_else(|e| panic!("{qas}/{acts}: {e}"));
        }
    }

    #[test]
    fn seed_cache_enables_annotatorless_views() {
        let engine = bench_engine();
        let ds = synthetic_hits(20);
        seed_cache(&engine, &ds);
        let mut spec = bench_view();
        spec.annotators.clear();
        let outcome = engine.execute_view(&spec, &ds).unwrap();
        assert!(!outcome.groups[0].dataset.is_empty());
    }
}

pub mod host;
pub mod results;
