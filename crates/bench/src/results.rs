//! Machine-readable bench artifacts: `BENCH_<name>.json` at the repo root.
//!
//! Every experiment binary records its headline timings through
//! [`BenchResult`] so runs are comparable across commits: the file carries
//! the sample statistics (median / p95 milliseconds), the workload
//! configuration, any derived metrics, and the git revision that produced
//! them.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::path::PathBuf;
use std::time::Instant;

/// One experiment's result artifact.
#[derive(Debug, Clone, Default)]
pub struct BenchResult {
    name: String,
    config: BTreeMap<String, String>,
    metrics: BTreeMap<String, f64>,
    samples_ms: Vec<f64>,
}

impl BenchResult {
    /// Starts a result named `name` (the artifact becomes
    /// `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchResult { name: name.into(), ..Default::default() }
    }

    /// Records a workload-configuration entry (data size, seed, …).
    pub fn config(mut self, key: impl Into<String>, value: impl Display) -> Self {
        self.config.insert(key.into(), value.to_string());
        self
    }

    /// Records a derived scalar metric (a ratio, a count, …).
    pub fn metric(mut self, key: impl Into<String>, value: f64) -> Self {
        self.metrics.insert(key.into(), value);
        self
    }

    /// Records the timing samples, in milliseconds.
    pub fn samples_ms(mut self, samples: Vec<f64>) -> Self {
        self.samples_ms = samples;
        self
    }

    /// Median of the recorded samples.
    pub fn median_ms(&self) -> f64 {
        quantile(&self.samples_ms, 0.5)
    }

    /// 95th percentile of the recorded samples.
    pub fn p95_ms(&self) -> f64 {
        quantile(&self.samples_ms, 0.95)
    }

    /// Serialises to pretty-stable JSON (keys sorted, two-space indent).
    pub fn to_json(&self) -> String {
        use qurator_telemetry::json::escape;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        out.push_str(&format!("  \"git_rev\": \"{}\",\n", escape(&git_rev())));
        out.push_str("  \"config\": {");
        let mut first = true;
        for (k, v) in &self.config {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": \"{}\"", escape(k), escape(v)));
        }
        out.push_str(if self.config.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str(&format!("  \"samples\": {},\n", self.samples_ms.len()));
        out.push_str(&format!("  \"median_ms\": {},\n", fmt_f64(self.median_ms())));
        out.push_str(&format!("  \"p95_ms\": {},\n", fmt_f64(self.p95_ms())));
        out.push_str("  \"metrics\": {");
        let mut first = true;
        for (k, v) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", escape(k), fmt_f64(*v)));
        }
        out.push_str(if self.metrics.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Writes `BENCH_<name>.json` at the repository root, returning its
    /// path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = repo_root().join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Times `iters` runs of `f`, returning per-run milliseconds.
pub fn measure_ms(iters: usize, mut f: impl FnMut()) -> Vec<f64> {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

/// Linear-interpolation-free quantile: the smallest sample at or above
/// rank `q * n` (0 for an empty set).
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The current git revision (short), or `"unknown"` outside a checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The workspace root (two levels above this crate's manifest).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// JSON-safe float rendering (JSON has no NaN/Inf).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&s, 0.5), 50.0);
        assert_eq!(quantile(&s, 0.95), 95.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.95), 7.0);
    }

    #[test]
    fn result_json_is_valid() {
        let result = BenchResult::new("unit_test")
            .config("n", 100)
            .metric("ratio", 1.25)
            .samples_ms(vec![2.0, 1.0, 3.0]);
        let json = result.to_json();
        let parsed = qurator_telemetry::json::parse(&json).expect("valid JSON");
        assert_eq!(parsed.get("name").and_then(|v| v.as_str()), Some("unit_test"));
        assert_eq!(parsed.get("median_ms").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(parsed.get("samples").and_then(|v| v.as_u64()), Some(3));
        assert!(parsed.get("git_rev").and_then(|v| v.as_str()).is_some());
    }
}
