//! The ISPIDER host workflow (paper Figure 1) as real workflow processors
//! over the synthetic testbed: PEDRo fetch → Imprint PMF → GOA lookup →
//! term aggregation.

use qurator::convert;
use qurator_proteomics::World;
use qurator_repro::ispider::hits_to_dataset;
use qurator_workflow::{Data, FnProcessor, PortRef, Processor, Workflow, WorkflowError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Node names of the host workflow.
pub mod nodes {
    pub const PEDRO: &str = "PedroFetch";
    pub const IMPRINT: &str = "ImprintSearch";
    pub const GOA: &str = "GoaLookup";
    pub const AGGREGATE: &str = "AggregateTerms";
}

/// Builds the Figure 1 workflow over a testbed world.
///
/// Outputs: `go_counts` — a record of GO term id → occurrence count.
pub fn build_host(world: Arc<World>) -> Workflow {
    let mut wf = Workflow::new("ispider-analysis");

    // PEDRo: emit one spot-id item per deposited peak list
    let pedro_world = world.clone();
    let pedro = FnProcessor::new(nodes::PEDRO, &[], &["spots"], move |_, _| {
        let spots: Vec<Data> =
            pedro_world.peak_lists().iter().map(|pl| Data::Text(pl.spot_id.clone())).collect();
        Ok(BTreeMap::from([("spots".to_string(), Data::List(spots))]))
    });

    // Imprint: per spot (implicit iteration), search and emit the hit
    // data set in the framework's encoding
    let imprint_world = world.clone();
    let imprint = FnProcessor::map1(nodes::IMPRINT, "spot", "hits", move |spot, _| {
        let spot_id = spot.as_text().ok_or_else(|| WorkflowError::Execution {
            processor: nodes::IMPRINT.into(),
            message: "spot id must be text".into(),
        })?;
        let peak_list =
            imprint_world.pedro.spot(&imprint_world.experiment, spot_id).map_err(|e| {
                WorkflowError::Execution {
                    processor: nodes::IMPRINT.into(),
                    message: e.to_string(),
                }
            })?;
        let hits = imprint_world.imprint.search(peak_list);
        Ok(convert::dataset_to_data(&hits_to_dataset(spot_id, &hits)))
    });

    // GOA: per spot data set, emit the GO term ids of every identification
    let goa_world = world.clone();
    let goa = FnProcessor::map1(nodes::GOA, "hits", "terms", move |hits, _| {
        let dataset = convert::data_to_dataset(hits).map_err(|e| WorkflowError::Execution {
            processor: nodes::GOA.into(),
            message: e.to_string(),
        })?;
        let mut terms = Vec::new();
        for item in dataset.items() {
            if let Some(accession) = dataset.field(item, "accession").as_text() {
                for association in goa_world.goa.lookup(accession) {
                    terms.push(Data::Text(association.term_id.clone()));
                }
            }
        }
        Ok(Data::List(terms))
    });

    // Aggregate: flatten the per-spot term lists into frequency counts
    let aggregate =
        FnProcessor::new(nodes::AGGREGATE, &[("terms", 2)], &["go_counts"], |inputs, _| {
            let mut counts: BTreeMap<String, Data> = BTreeMap::new();
            fn walk(v: &Data, counts: &mut BTreeMap<String, Data>) {
                match v {
                    Data::Text(term) => {
                        let slot = counts.entry(term.clone()).or_insert(Data::Number(0.0));
                        if let Data::Number(n) = slot {
                            *n += 1.0;
                        }
                    }
                    Data::List(items) => items.iter().for_each(|i| walk(i, counts)),
                    _ => {}
                }
            }
            walk(inputs.get("terms").unwrap_or(&Data::Null), &mut counts);
            Ok(BTreeMap::from([("go_counts".to_string(), Data::Record(counts))]))
        });

    wf.add(nodes::PEDRO, Arc::new(pedro)).expect("fresh workflow");
    wf.add(nodes::IMPRINT, Arc::new(imprint)).expect("fresh workflow");
    wf.add(nodes::GOA, Arc::new(goa)).expect("fresh workflow");
    wf.add(nodes::AGGREGATE, Arc::new(aggregate)).expect("fresh workflow");
    wf.link(nodes::PEDRO, "spots", nodes::IMPRINT, "spot").expect("ports exist");
    wf.link(nodes::IMPRINT, "hits", nodes::GOA, "hits").expect("ports exist");
    wf.link(nodes::GOA, "terms", nodes::AGGREGATE, "terms").expect("ports exist");
    wf.declare_output("go_counts", PortRef::new(nodes::AGGREGATE, "go_counts"))
        .expect("ports exist");
    wf
}

/// The identity input adapter (hit data sets already use the framework
/// encoding) for embedding a QV between Imprint and GOA.
pub fn input_adapter() -> Arc<dyn Processor> {
    Arc::new(FnProcessor::map1("qv-dataset-in", "in", "out", |v, _| Ok(v.clone())))
}

/// The output adapter: unwraps the action group's `{dataset, map}` record
/// back to a bare data-set encoding for the GOA node.
pub fn output_adapter() -> Arc<dyn Processor> {
    Arc::new(FnProcessor::map1("qv-dataset-out", "in", "out", |v, _| {
        v.field("dataset").cloned().ok_or_else(|| WorkflowError::Execution {
            processor: "qv-dataset-out".into(),
            message: "expected an action group record".into(),
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_proteomics::WorldConfig;
    use qurator_workflow::{Context, Enactor};

    #[test]
    fn host_reproduces_the_unfiltered_pipeline() {
        let world = Arc::new(World::generate(&WorldConfig::paper_scale(42)).unwrap());
        let wf = build_host(world.clone());
        let report = Enactor::new().run(&wf, &BTreeMap::new(), &Context::new()).unwrap();
        let counts = report.outputs["go_counts"].as_record().unwrap();
        let total: f64 = counts.values().filter_map(Data::as_number).sum();

        // must agree with the direct pipeline
        let engine = qurator::prelude::QualityEngine::with_proteomics_defaults().unwrap();
        let direct = qurator_repro::IspiderPipeline::new(&world, &engine).run_unfiltered();
        assert_eq!(total as usize, direct.total_go_occurrences());
        assert_eq!(counts.len(), direct.go_counts.len());
    }
}
