//! Experiment F6 — regenerates Figure 6: the §5.1 quality view compiled
//! into a quality workflow (box a) and embedded into the ISPIDER host
//! workflow between protein identification and GO retrieval (box b).
//!
//! ```sh
//! cargo run -p bench --bin fig6_compiled [seed]
//! ```

use bench::host::{self, build_host, nodes};
use qurator::deploy::DeploymentPlan;
use qurator::prelude::*;
use qurator_proteomics::{World, WorldConfig};
use qurator_repro::ispider::{figure7_view, FIGURE7_GROUP};
use qurator_workflow::{Context, Data, Enactor, PortRef};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let view = figure7_view();

    // ---- box (a): the compiled quality workflow
    let quality = engine.compile(&view).expect("compiles");
    println!("== Figure 6 (a): compiled quality workflow ==\n");
    println!("{}", quality.to_dot());

    // ---- box (b): embedded into the host experiment workflow
    let world = Arc::new(World::generate(&WorldConfig::paper_scale(seed)).expect("testbed"));
    let mut hosted = build_host(world.clone());
    let plan = DeploymentPlan {
        prefix: "qv".into(),
        severed: (PortRef::new(nodes::IMPRINT, "hits"), PortRef::new(nodes::GOA, "hits")),
        input_adapter: ("adapt-in".into(), host::input_adapter()),
        output_group: FIGURE7_GROUP.into(),
        output_adapter: ("adapt-out".into(), host::output_adapter()),
    };
    plan.apply(&mut hosted, &quality).expect("embedding");
    println!("== Figure 6 (b): embedded quality workflow ==\n");
    println!("{}", hosted.to_dot());

    // ---- run both variants and compare volumes
    let baseline = Enactor::new()
        .run(&build_host(world.clone()), &BTreeMap::new(), &Context::new())
        .expect("baseline run");
    let report =
        Enactor::new().run(&hosted, &BTreeMap::new(), &Context::new()).expect("embedded run");
    engine.finish_execution();

    let count = |outputs: &BTreeMap<String, Data>| -> f64 {
        outputs["go_counts"]
            .as_record()
            .map(|r| r.values().filter_map(Data::as_number).sum())
            .unwrap_or(0.0)
    };
    println!("== effect of inserting the quality process (cf. §6.3) ==");
    println!("GO-term occurrences without quality view: {}", count(&baseline.outputs));
    println!("GO-term occurrences with    quality view: {}", count(&report.outputs));
    println!("\nembedded enactment trace:");
    print!("{}", report.render_trace());
}
