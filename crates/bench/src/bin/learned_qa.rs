//! Experiment E7 (extension) — learned quality functions vs hand-crafted
//! ones (paper §7 future work (ii)).
//!
//! Protocol: run the ISPIDER pipeline on *training* worlds (seeds where
//! the simulator's ground truth labels every Imprint hit as true/false),
//! train a decision stump and a logistic model on the hit evidence, then
//! deploy each as a quality assertion on a held-out *test* world and
//! compare with the paper's hand-crafted z-score + avg±σ classifier.
//!
//! ```sh
//! cargo run -p bench --bin learned_qa
//! ```

use qurator::prelude::*;
use qurator::spec::{ActionDecl, ActionKind, AssertionDecl, TagKind, VarDecl};
use qurator_proteomics::{World, WorldConfig};
use qurator_rdf::namespace::q;
use qurator_repro::ispider::{figure7_view, FIGURE7_GROUP};
use qurator_repro::IspiderPipeline;
use qurator_services::learning::{
    DecisionStump, LabelledExample, LearnedAssertion, LogisticConfig, LogisticModel,
};
use std::sync::Arc;

/// Extracts labelled examples (hit evidence, is-true-protein) from a world.
fn harvest_examples(world: &World) -> Vec<LabelledExample> {
    let mut examples = Vec::new();
    for peak_list in world.peak_lists() {
        for hit in world.imprint.search(peak_list) {
            examples.push(LabelledExample::new(
                [
                    ("hitratio", hit.hit_ratio),
                    ("coverage", hit.mass_coverage),
                    ("peptidescount", hit.peptides_count as f64),
                ],
                peak_list.true_proteins.contains(&hit.accession),
            ));
        }
    }
    examples
}

/// A view using a learned QA registered as `q:LearnedPIScore`.
fn learned_view(threshold: f64) -> QualityViewSpec {
    let mut spec = QualityViewSpec::new("learned");
    spec.annotators = QualityViewSpec::paper_example().annotators;
    spec.assertions.push(AssertionDecl {
        service_name: "learned".into(),
        service_type: "q:LearnedPIScore".into(),
        tag_name: "P".into(),
        tag_kind: TagKind::Score,
        tag_sem_type: None,
        repository_ref: "cache".into(),
        variables: vec![
            VarDecl::named("hitratio", "q:HitRatio"),
            VarDecl::named("coverage", "q:MassCoverage"),
            VarDecl::named("peptidescount", "q:PeptidesCount"),
        ],
    });
    spec.actions.push(ActionDecl {
        name: FIGURE7_GROUP.into(),
        kind: ActionKind::Filter { condition: format!("P > {threshold}") },
    });
    spec
}

fn engine_with_learned(model: Box<dyn qurator_services::learning::DecisionModel>) -> QualityEngine {
    let mut iq = qurator_ontology::IqModel::with_proteomics_extension().expect("iq");
    iq.register_assertion_type("LearnedPIScore").expect("register");
    let engine = QualityEngine::new(iq);
    engine
        .register_annotation_service(Arc::new(
            qurator_services::stdlib::FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[
                    ("hitRatio", q::iri("HitRatio")),
                    ("massCoverage", q::iri("MassCoverage")),
                    ("peptidesCount", q::iri("PeptidesCount")),
                ],
            ),
        ))
        .expect("annotator");
    engine
        .register_assertion_service(Arc::new(LearnedAssertion::new(
            q::iri("LearnedPIScore"),
            model,
        )))
        .expect("assertion");
    engine
}

fn main() {
    // --- training data from three worlds
    let mut training = Vec::new();
    for seed in [1u64, 2, 3] {
        let world = World::generate(&WorldConfig::paper_scale(seed)).expect("world");
        training.extend(harvest_examples(&world));
    }
    let positives = training.iter().filter(|e| e.label).count();
    println!(
        "training set: {} hits, {} true ({:.1}%)",
        training.len(),
        positives,
        100.0 * positives as f64 / training.len() as f64
    );

    let stump = DecisionStump::train(&training).expect("stump");
    println!(
        "\ndecision stump: {} {} {:.3}  (training accuracy {:.3})",
        stump.feature,
        if stump.above_is_positive { ">" } else { "<" },
        stump.threshold,
        stump.training_accuracy
    );
    let logistic = LogisticModel::train(&training, &LogisticConfig::default()).expect("logistic");
    println!("logistic model: training accuracy {:.3}", logistic.accuracy(&training));

    // --- held-out evaluation
    let test_world = World::generate(&WorldConfig::paper_scale(42)).expect("world");
    println!("\n== held-out world (seed 42): filter comparison ==\n");
    println!("{:<28} {:>6} {:>7} {:>7}", "quality function", "kept", "prec.", "recall");

    // hand-crafted baseline (paper §5.1/§6.3)
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let out = IspiderPipeline::new(&test_world, &engine)
        .run_filtered(&figure7_view(), FIGURE7_GROUP)
        .expect("runs");
    println!(
        "{:<28} {:>6} {:>7.2} {:>7.2}",
        "hand-crafted z + avg±σ",
        out.spots.iter().map(|s| s.identified.len()).sum::<usize>(),
        out.precision(),
        out.recall()
    );

    // learned stump (threshold 0 on the margin score)
    let engine = engine_with_learned(Box::new(stump));
    let out = IspiderPipeline::new(&test_world, &engine)
        .run_filtered(&learned_view(0.0), FIGURE7_GROUP)
        .expect("runs");
    println!(
        "{:<28} {:>6} {:>7.2} {:>7.2}",
        "learned decision stump",
        out.spots.iter().map(|s| s.identified.len()).sum::<usize>(),
        out.precision(),
        out.recall()
    );

    // learned logistic (threshold 0.5 on probability)
    let engine = engine_with_learned(Box::new(logistic));
    let out = IspiderPipeline::new(&test_world, &engine)
        .run_filtered(&learned_view(0.5), FIGURE7_GROUP)
        .expect("runs");
    println!(
        "{:<28} {:>6} {:>7.2} {:>7.2}",
        "learned logistic regression",
        out.spots.iter().map(|s| s.identified.len()).sum::<usize>(),
        out.precision(),
        out.recall()
    );
}
