//! Experiment P1 — cost/benefit of the plan optimizer on the Figure 7
//! workload.
//!
//! Runs the §6.3 quality view (Imprint annotation → enrichment →
//! HR_MC score + classifier → top-k filter) over every protein spot of
//! the paper-scale testbed twice through the sequential interpreter:
//!
//! * `optimized` — the default pass pipeline (dead-node elimination,
//!   repository-access fusion, cache routing, action short-circuiting);
//! * `baseline`  — `--no-opt`: lowering plus wave scheduling only.
//!
//! Both runs must produce identical survivor sets (the optimizer is
//! outcome-preserving by construction; the equivalence property test
//! checks this exhaustively, this bench re-asserts it on real data).
//! Also reports planning-only latency and the per-pass
//! `plan.pass.duration_us` breakdown. Writes `BENCH_plan_opt.json`.
//!
//! ```sh
//! cargo run --release -p bench --bin plan_opt [seed]
//! ```

use bench::results::{measure_ms, BenchResult};
use qurator::prelude::*;
use qurator_plan::PlanConfig;
use qurator_proteomics::{World, WorldConfig};
use qurator_repro::ispider::{figure7_view, hits_to_dataset, FIGURE7_GROUP};

const ITERS: usize = 7;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let world = World::generate(&WorldConfig::paper_scale(seed)).expect("testbed");
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let spec = figure7_view();

    let datasets: Vec<_> = world
        .peak_lists()
        .iter()
        .map(|pl| hits_to_dataset(&pl.spot_id, &world.imprint.search(pl)))
        .collect();
    let items: usize = datasets.iter().map(|d| d.items().len()).sum();

    let optimized_cfg = PlanConfig::default();
    let baseline_cfg = PlanConfig { optimize: false };
    let survivors = |config: &PlanConfig| -> usize {
        datasets
            .iter()
            .map(|dataset| {
                let outcome = engine.execute_view_with(&spec, dataset, config).expect("view runs");
                engine.finish_execution();
                outcome.group(FIGURE7_GROUP).map_or(0, |g| g.dataset.items().len())
            })
            .sum()
    };

    // warm-up + outcome-preservation check
    let survivors_opt = survivors(&optimized_cfg);
    let survivors_base = survivors(&baseline_cfg);
    assert_eq!(
        survivors_opt, survivors_base,
        "optimizer changed the view outcome — plans are not equivalent"
    );

    // interleave the variants so machine drift hits both sample sets
    let mut optimized = Vec::with_capacity(ITERS);
    let mut baseline = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        baseline.extend(measure_ms(1, || {
            std::hint::black_box(survivors(&baseline_cfg));
        }));
        optimized.extend(measure_ms(1, || {
            std::hint::black_box(survivors(&optimized_cfg));
        }));
    }

    // planning-only latency and the per-pass breakdown
    let plan_samples = measure_ms(ITERS, || {
        std::hint::black_box(engine.plan(&spec).expect("plan"));
    });
    let plan = engine.plan(&spec).expect("plan");
    let plan_base = engine.plan_with(&spec, &baseline_cfg).expect("baseline plan");

    let med = |s: &[f64]| bench::results::quantile(s, 0.5);
    let speedup = med(&baseline) / med(&optimized).max(1e-9);

    println!("== plan optimizer on the Figure 7 workload (seed {seed}) ==\n");
    println!("spots: {}  items: {items}", datasets.len());
    println!("survivors (both modes): {survivors_opt}");
    println!(
        "enrichment: {} fetch(es) in {} group(s) optimized vs {} group(s) baseline",
        plan.fetch_count(),
        plan.enrich.len(),
        plan_base.enrich.len()
    );
    println!(
        "execute: optimized median {:.2} ms | baseline median {:.2} ms | speedup {speedup:.2}x",
        med(&optimized),
        med(&baseline)
    );
    println!("plan-only median: {:.3} ms  (passes below)", med(&plan_samples));
    for pass in &plan.passes {
        println!(
            "  {:<22} {:>6} us{}{}",
            pass.pass,
            pass.duration_us,
            if pass.changed { "  *" } else { "" },
            if pass.notes.is_empty() {
                String::new()
            } else {
                format!("  ({})", pass.notes.join("; "))
            }
        );
    }

    let mut result = BenchResult::new("plan_opt")
        .config("seed", seed)
        .config("spots", datasets.len())
        .config("items", items)
        .config("iters", ITERS)
        .metric("survivors", survivors_opt as f64)
        .metric("optimized_median_ms", med(&optimized))
        .metric("baseline_median_ms", med(&baseline))
        .metric("speedup", speedup)
        .metric("plan_median_ms", med(&plan_samples))
        .metric("enrich_groups_optimized", plan.enrich.len() as f64)
        .metric("enrich_groups_baseline", plan_base.enrich.len() as f64)
        .samples_ms(optimized);
    for pass in &plan.passes {
        result =
            result.metric(format!("plan.pass.{}.duration_us", pass.pass), pass.duration_us as f64);
    }
    let path = result.write().expect("bench artifact");
    println!("\n-> {}", path.display());
}
