//! Experiment F7 — regenerates **Figure 7**: "Effects of a data quality
//! view on the workflow output".
//!
//! Protocol (paper §6.3): process the peak lists of 10 protein spots with
//! the original ISPIDER workflow (~500 GO-term occurrences), re-process
//! with the quality view filtering to protein IDs whose score exceeds
//! avg + stddev, and rank GO terms by the significance ratio
//! (occurrences with / without filtering).
//!
//! The paper reports the *shape*: the ranking changes substantially —
//! "GO term GO:0042802, now ranked first, occurred only 6 times in the
//! original data, while GO:0005554, ranked towards the end, originally
//! occurred 14 times". We report the same anecdotes plus ground-truth
//! precision (which the paper could not measure).
//!
//! ```sh
//! cargo run -p bench --bin fig7_significance [seed] [--full]
//! ```

use bench::results::{measure_ms, BenchResult};
use qurator::prelude::*;
use qurator_proteomics::{World, WorldConfig};
use qurator_repro::ispider::{figure7_view, FIGURE7_GROUP};
use qurator_repro::{significance_ranking, IspiderPipeline};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(42);
    let full = args.iter().any(|a| a == "--full");

    let world = World::generate(&WorldConfig::paper_scale(seed)).expect("testbed");
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let pipeline = IspiderPipeline::new(&world, &engine);

    let unfiltered = pipeline.run_unfiltered();
    let mut filtered = None;
    let samples = measure_ms(3, || {
        filtered =
            Some(pipeline.run_filtered(&figure7_view(), FIGURE7_GROUP).expect("quality view runs"));
    });
    let filtered = filtered.expect("at least one iteration");
    let (rows, stats) = significance_ranking(&unfiltered, &filtered);

    println!("== Figure 7: GO terms ranked by significance ratio (seed {seed}) ==\n");
    println!("input: {} protein spots (paper: 10)", world.peak_lists().len());
    println!(
        "GO-term occurrences without filtering: {} (paper: \"about 500\")",
        stats.total_without
    );
    println!("GO-term occurrences with filtering:    {}", stats.total_with);
    println!(
        "identification precision: {:.2} -> {:.2} | recall: {:.2} -> {:.2} (vs simulator ground truth)",
        unfiltered.precision(),
        filtered.precision(),
        unfiltered.recall(),
        filtered.recall()
    );
    println!(
        "Spearman correlation original vs significance ranking: {:.3} (paper: \"significantly alters the original ranking\")\n",
        stats.rank_correlation
    );

    let shown = if full { rows.len() } else { 25.min(rows.len()) };
    println!(
        "{:<12} {:>7} {:>6} {:>7} {:>10} {:>10}   bar",
        "GO term", "ratio", "with", "w/out", "sig. rank", "orig rank"
    );
    for row in rows.iter().take(shown) {
        println!(
            "{:<12} {:>7.2} {:>6} {:>7} {:>10} {:>10}   {}",
            row.term_id,
            row.ratio,
            row.occurrences_with,
            row.occurrences_without,
            row.significance_rank,
            row.original_rank,
            "█".repeat((row.ratio * 30.0).round() as usize)
        );
    }
    if !full && rows.len() > shown {
        println!("… ({} more rows; pass --full)", rows.len() - shown);
    }

    // the paper's two anecdotes, re-found in our data
    if let Some(first) = rows.first() {
        println!(
            "\nanecdote 1 (cf. GO:0042802): the top significance-ranked term {} occurred only {} time(s) originally (original rank {} of {})",
            first.term_id, first.occurrences_without, first.original_rank, stats.terms
        );
    }
    if let Some(fallen) = rows.iter().rev().find(|r| r.occurrences_without >= 10) {
        println!(
            "anecdote 2 (cf. GO:0005554): term {} occurred {} times originally (rank {}) but falls to significance rank {} of {}",
            fallen.term_id,
            fallen.occurrences_without,
            fallen.original_rank,
            fallen.significance_rank,
            stats.terms
        );
    }

    let result = BenchResult::new("fig7_significance")
        .config("seed", seed)
        .config("spots", world.peak_lists().len())
        .metric("occurrences_without", stats.total_without as f64)
        .metric("occurrences_with", stats.total_with as f64)
        .metric("precision_unfiltered", unfiltered.precision())
        .metric("precision_filtered", filtered.precision())
        .metric("rank_correlation", stats.rank_correlation)
        .samples_ms(samples);
    let path = result.write().expect("bench artifact");
    println!(
        "\nfiltered run: median {:.2} ms over {} run(s) -> {}",
        result.median_ms(),
        3,
        path.display()
    );
}
