//! Acceptance bench: the cost of observed-statistics collection (the
//! EXPLAIN ANALYZE counters) on the E3b enrichment-dominated workload.
//!
//! Statistics collection is on by default — every plan node bumps
//! per-node counters (calls, rows, evidence, hits, wall time) into the
//! run's collector, and the engine folds each run into the view's
//! decayed profile. This bench runs the annotatorless quality process
//! twice per iteration, interleaved:
//!
//! * `baseline` — `set_stats_enabled(false)`: counters skipped entirely;
//! * `analyze`  — `set_stats_enabled(true)`: full collection + profile
//!   fold, exactly what `qv run --analyze` pays.
//!
//! The overhead statistic is the min-of-N wall-clock delta (scheduler
//! interference on a shared machine only ever adds time, so minima are
//! the most drift-resistant estimator); the per-iteration paired deltas
//! are reported as a cross-check. Writes `BENCH_analyze_overhead.json`;
//! the acceptance criterion is `overhead_pct <= 5`.
//!
//! ```sh
//! cargo run --release -p bench --bin analyze_overhead [n_items]
//! ```

use bench::results::{measure_ms, quantile, BenchResult};
use bench::{bench_view, seed_cache, synthetic_hits};
use qurator::prelude::*;

const ITERS: usize = 9;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let dataset = synthetic_hits(n);
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    seed_cache(&engine, &dataset);
    let mut spec = bench_view();
    spec.annotators.clear();

    // warm-up: populate instrument caches and the condition compiler
    engine.execute_view(&spec, &dataset).expect("warm-up run");

    // interleave the two variants so slow machine drift (noisy
    // containers) hits both sample sets equally
    let mut baseline = Vec::with_capacity(ITERS);
    let mut analyze = Vec::with_capacity(ITERS);
    let mut paired = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        engine.set_stats_enabled(false);
        let off = measure_ms(1, || {
            std::hint::black_box(engine.execute_view(&spec, &dataset).expect("baseline run"));
        });
        engine.set_stats_enabled(true);
        let on = measure_ms(1, || {
            std::hint::black_box(engine.execute_view(&spec, &dataset).expect("analyze run"));
        });
        if off[0] > 0.0 {
            paired.push((on[0] - off[0]) / off[0] * 100.0);
        }
        baseline.extend(off);
        analyze.extend(on);
    }
    let stats = engine.last_run_stats().expect("instrumented run records stats");
    assert_eq!(stats.items, n as u64, "stats cover every item");
    assert!(stats.nodes.values().any(|s| s.rows_out > 0), "no rows counted: {stats:?}");

    let base_med = quantile(&baseline, 0.5);
    let on_med = quantile(&analyze, 0.5);
    // minimum-of-N: on a shared machine interference only ever adds time,
    // so the minima are the closest observable to the true costs
    let base_min = baseline.iter().cloned().fold(f64::INFINITY, f64::min);
    let on_min = analyze.iter().cloned().fold(f64::INFINITY, f64::min);
    let overhead_pct = if base_min > 0.0 { (on_min - base_min) / base_min * 100.0 } else { 0.0 };
    let paired_median_pct = quantile(&paired, 0.5);

    println!("== observed-statistics overhead on the E3b enrichment workload ==\n");
    println!("items: {n} | iterations: {ITERS}");
    println!(
        "baseline (stats off): min {base_min:.3} ms, median {base_med:.3} ms, p95 {:.3} ms",
        quantile(&baseline, 0.95)
    );
    println!(
        "analyze  (stats on):  min {on_min:.3} ms, median {on_med:.3} ms, p95 {:.3} ms",
        quantile(&analyze, 0.95)
    );
    println!("overhead: {overhead_pct:+.2}% (min-of-N wall-clock delta; acceptance: <= 5%)");
    println!("paired-delta cross-check: {paired_median_pct:+.2}% (median of per-iteration deltas)");

    let result = BenchResult::new("analyze_overhead")
        .config("n_items", n)
        .config("iters", ITERS)
        .config("workload", "cache-seeded quality process (E3b shape)")
        .metric("baseline_min_ms", base_min)
        .metric("baseline_median_ms", base_med)
        .metric("baseline_p95_ms", quantile(&baseline, 0.95))
        .metric("analyze_min_ms", on_min)
        .metric("analyze_median_ms", on_med)
        .metric("analyze_p95_ms", quantile(&analyze, 0.95))
        .metric("overhead_pct", overhead_pct)
        .metric("paired_median_pct", paired_median_pct)
        .samples_ms(analyze);
    let path = result.write().expect("bench artifact");
    println!("-> {}", path.display());
}
