//! Storage bench: bulk-load throughput and disk-vs-memory enrichment.
//!
//! The persistent-store PR's acceptance numbers live here. Two phases:
//!
//! 1. **Bulk load** — stream a generated Turtle corpus (default 120k
//!    triples, ≥10⁵ per the acceptance bar) through
//!    `qurator_rdf::storage::BulkLoader` and record triples/second plus
//!    the process peak RSS (`VmHWM`), pinning the bounded-memory claim.
//! 2. **Enrichment** — build the same annotation workload (items × three
//!    evidence types, three triples per annotation) in an in-memory
//!    repository and an on-disk repository, then time
//!    `enrich_bulk` on both. The headline metric is
//!    `enrich_disk_over_memory`: the acceptance bar is ≤ 2.0.
//!
//! Writes `BENCH_store.json` (validated by `qv bench-check`).
//!
//! ```sh
//! cargo run --release -p bench --bin store_bench -- \
//!     [--triples N] [--items N] [--iters N]
//! ```

use std::sync::Arc;
use std::time::Instant;

use bench::results::{quantile, BenchResult};
use qurator_annotations::AnnotationRepository;
use qurator_ontology::iq::IqModel;
use qurator_rdf::namespace::q;
use qurator_rdf::storage::test_support::TempDir;
use qurator_rdf::storage::BulkLoader;
use qurator_rdf::term::{Iri, Term};

struct Args {
    triples: usize,
    items: usize,
    iters: usize,
}

fn parse_args() -> Args {
    let mut args = Args { triples: 120_000, items: 12_000, iters: 5 };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = || -> usize {
            argv.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{} needs a number", argv[i]))
        };
        match argv[i].as_str() {
            "--triples" => args.triples = value().max(1),
            "--items" => args.items = value().max(1),
            "--iters" => args.iters = value().max(1),
            other => panic!("unknown flag {other:?}"),
        }
        i += 2;
    }
    args
}

/// Peak resident set size in MiB from `/proc/self/status` (0 where
/// unavailable — the metric is advisory off Linux).
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0.0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<f64>().ok())
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// A deterministic Turtle corpus of `n` triples: protein hits with
/// numeric evidence, the same shape `qv load` ingests in CI.
fn turtle_corpus(n: usize) -> String {
    let mut out = String::with_capacity(n * 64);
    out.push_str("@prefix q: <http://qurator.org/iq#> .\n");
    out.push_str("@prefix hit: <urn:lsid:bench:hit:> .\n");
    let mut written = 0usize;
    let mut item = 0usize;
    while written < n {
        let jitter = bench::lcg(item as u64);
        out.push_str(&format!(
            "hit:H{item:06} q:hitRatio {:.3} .\n",
            (jitter % 1000) as f64 / 1000.0
        ));
        written += 1;
        if written < n {
            out.push_str(&format!("hit:H{item:06} q:massCoverage {} .\n", jitter % 60));
            written += 1;
        }
        if written < n {
            out.push_str(&format!("hit:H{item:06} q:peptidesCount {} .\n", jitter % 20));
            written += 1;
        }
        item += 1;
    }
    out
}

/// Annotates `items` items with three numeric evidence types each
/// (three triples per annotation — ≥10⁵ triples at the default size).
fn populate(repo: &AnnotationRepository, items: &[Term], evidence: &[Iri]) {
    for (index, item) in items.iter().enumerate() {
        let jitter = bench::lcg(index as u64);
        repo.annotate(item, &evidence[0], ((jitter % 1000) as f64 / 1000.0).into())
            .expect("annotate");
        repo.annotate(item, &evidence[1], ((jitter % 60) as f64).into()).expect("annotate");
        repo.annotate(item, &evidence[2], ((jitter % 20) as f64).into()).expect("annotate");
    }
    repo.flush().expect("flush");
}

fn time_enrich(
    repo: &AnnotationRepository,
    items: &[Term],
    evidence: &[Iri],
    iters: usize,
) -> Vec<f64> {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            let map = repo.enrich_bulk(items, evidence).expect("enrich_bulk");
            assert_eq!(map.len(), items.len(), "enrichment dropped items");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let iq = Arc::new(IqModel::with_proteomics_extension().expect("iq model"));

    // Phase 1: bulk load.
    let corpus = turtle_corpus(args.triples);
    let load_dir = TempDir::new("store-bench-load");
    let start = Instant::now();
    let stats = BulkLoader::new(load_dir.join("archive")).load_turtle(&corpus).expect("bulk load");
    let load_secs = start.elapsed().as_secs_f64();
    let load_rate = stats.triples_read as f64 / load_secs;
    let load_rss = peak_rss_mib();
    println!(
        "bulk load: {} triples in {load_secs:.3}s ({load_rate:.0} triples/s), \
         {} terms, {} runs, peak RSS {load_rss:.1} MiB",
        stats.triples_read, stats.terms, stats.runs
    );

    // Phase 2: enrich_bulk, memory vs disk over the same annotations.
    let items: Vec<Term> =
        (0..args.items).map(|i| Term::iri(format!("urn:lsid:bench:hit:H{i:06}"))).collect();
    let evidence = [q::iri("HitRatio"), q::iri("MassCoverage"), q::iri("PeptidesCount")];

    let memory = AnnotationRepository::new("bench", true, iq.clone());
    populate(&memory, &items, &evidence);
    let enrich_dir = TempDir::new("store-bench-enrich");
    let disk = AnnotationRepository::open_disk("bench", true, iq, enrich_dir.join("bench"))
        .expect("open disk repository");
    populate(&disk, &items, &evidence);
    assert_eq!(memory.triple_count(), disk.triple_count(), "backends diverged while populating");
    println!(
        "enrich workload: {} items, {} triples per backend",
        args.items,
        memory.triple_count()
    );

    let memory_ms = time_enrich(&memory, &items, &evidence, args.iters);
    let disk_ms = time_enrich(&disk, &items, &evidence, args.iters);
    let memory_median = quantile(&memory_ms, 0.5);
    let disk_median = quantile(&disk_ms, 0.5);
    let ratio = disk_median / memory_median;
    println!(
        "enrich_bulk: memory {memory_median:.1} ms, disk {disk_median:.1} ms \
         (disk/memory = {ratio:.2}, acceptance bar 2.00)"
    );

    let result = BenchResult::new("store")
        .config("triples", args.triples)
        .config("items", args.items)
        .config("iters", args.iters)
        .metric("bulk_load_triples_per_s", load_rate)
        .metric("bulk_load_secs", load_secs)
        .metric("bulk_load_peak_rss_mib", load_rss)
        .metric("bulk_load_terms", stats.terms as f64)
        .metric("store_triples", memory.triple_count() as f64)
        .metric("enrich_memory_median_ms", memory_median)
        .metric("enrich_disk_median_ms", disk_median)
        .metric("enrich_disk_over_memory", ratio)
        .samples_ms(disk_ms);
    let path = result.write().expect("write BENCH_store.json");
    println!("wrote {}", path.display());
    assert!(ratio <= 2.0, "disk enrich_bulk is {ratio:.2}x memory (bar: 2.0)");
}
