//! Acceptance bench: the cost of the continuous-observability layer
//! (bounded trace retention + tail sampling + drift monitoring) on the
//! Figure 7 ISPIDER workload.
//!
//! PR 2's telemetry is per-run: every enactment hands its full span trace
//! to the caller and nothing persists. The observability layer adds, per
//! finished enactment, one retention decision (error/rejected/slow/
//! sampled), an id-remapped copy when the trace is kept, and per-window
//! drift bookkeeping in the QA operators. This bench interleaves the two
//! variants on identical engines over the same generated world:
//!
//! * `baseline` — PR 2 behaviour: no retainer, drift monitor off;
//! * `observed` — retainer at default capacity, drift monitor on.
//!
//! Acceptance: median wallclock overhead ≤ 5% (`overhead_pct` in
//! `BENCH_obs_retention.json`; the min-of-N delta is reported as a
//! drift-resistant cross-check).
//!
//! ```sh
//! cargo run --release -p bench --bin obs_retention [seed]
//! ```

use bench::results::{measure_ms, quantile, BenchResult};
use qurator::prelude::*;
use qurator_proteomics::{World, WorldConfig};
use qurator_repro::ispider::{figure7_view, FIGURE7_GROUP};
use qurator_repro::IspiderPipeline;
use qurator_telemetry::TelemetryConfig;

const ITERS: usize = 21;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let world = World::generate(&WorldConfig::paper_scale(seed)).expect("testbed");
    let view = figure7_view();

    // two identical engines over the same world: one stays at PR 2
    // behaviour, one carries the full observability layer
    let base_engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let obs_engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let config = TelemetryConfig::default();
    let retainer = obs_engine.enable_observability(&config);
    let base_pipeline = IspiderPipeline::new(&world, &base_engine);
    let obs_pipeline = IspiderPipeline::new(&world, &obs_engine);

    // warm-up both variants (condition compiler, annotation caches)
    let drift = qurator_telemetry::drift::global();
    drift.set_enabled(false);
    base_pipeline.run_filtered(&view, FIGURE7_GROUP).expect("baseline warm-up");
    drift.set_enabled(true);
    obs_pipeline.run_filtered(&view, FIGURE7_GROUP).expect("observed warm-up");

    // interleave so machine drift hits both sample sets equally,
    // alternating the within-pair order so cache/scheduler effects don't
    // systematically favour one variant; the drift monitor is
    // process-global, so it is switched per variant
    let mut baseline = Vec::with_capacity(ITERS);
    let mut observed = Vec::with_capacity(ITERS);
    let run_baseline = |out: &mut Vec<f64>| {
        drift.set_enabled(false);
        out.extend(measure_ms(1, || {
            std::hint::black_box(
                base_pipeline.run_filtered(&view, FIGURE7_GROUP).expect("baseline run"),
            );
        }));
    };
    let run_observed = |out: &mut Vec<f64>| {
        drift.set_enabled(true);
        out.extend(measure_ms(1, || {
            std::hint::black_box(
                obs_pipeline.run_filtered(&view, FIGURE7_GROUP).expect("observed run"),
            );
        }));
    };
    for i in 0..ITERS {
        if i % 2 == 0 {
            run_baseline(&mut baseline);
            run_observed(&mut observed);
        } else {
            run_observed(&mut observed);
            run_baseline(&mut baseline);
        }
    }

    let base_med = quantile(&baseline, 0.5);
    let obs_med = quantile(&observed, 0.5);
    // the headline statistic: median of per-pair relative deltas — each
    // pair ran back-to-back, so slow-machine drift largely cancels
    let mut paired: Vec<f64> = baseline
        .iter()
        .zip(&observed)
        .filter(|(b, _)| **b > 0.0)
        .map(|(b, o)| (o - b) / b * 100.0)
        .collect();
    paired.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead_pct = quantile(&paired, 0.5);
    let base_min = baseline.iter().cloned().fold(f64::INFINITY, f64::min);
    let obs_min = observed.iter().cloned().fold(f64::INFINITY, f64::min);
    let min_delta_pct = if base_min > 0.0 { (obs_min - base_min) / base_min * 100.0 } else { 0.0 };

    println!("== observability overhead on the Figure 7 workload (seed {seed}) ==\n");
    println!("spots: {} | iterations: {ITERS}", world.peak_lists().len());
    println!(
        "baseline (PR 2):  min {base_min:.3} ms, median {base_med:.3} ms, p95 {:.3} ms",
        quantile(&baseline, 0.95)
    );
    println!(
        "observed (ring + drift): min {obs_min:.3} ms, median {obs_med:.3} ms, p95 {:.3} ms",
        quantile(&observed, 0.95)
    );
    println!(
        "overhead: {overhead_pct:+.2}% (median of paired back-to-back deltas; acceptance: <= 5%), {min_delta_pct:+.2}% min-of-N cross-check"
    );
    println!(
        "retention: {} offered, {} resident (capacity {})",
        retainer.offered(),
        retainer.resident(),
        retainer.capacity()
    );
    assert!(
        retainer.resident() <= retainer.capacity(),
        "ring buffer must stay within its configured bound"
    );

    let result = BenchResult::new("obs_retention")
        .config("seed", seed)
        .config("iters", ITERS)
        .config("workload", "Figure 7 ISPIDER filtered run")
        .config("trace_capacity", config.trace_capacity)
        .metric("baseline_min_ms", base_min)
        .metric("baseline_median_ms", base_med)
        .metric("baseline_p95_ms", quantile(&baseline, 0.95))
        .metric("observed_min_ms", obs_min)
        .metric("observed_median_ms", obs_med)
        .metric("observed_p95_ms", quantile(&observed, 0.95))
        .metric("overhead_pct", overhead_pct)
        .metric("min_delta_pct", min_delta_pct)
        .metric("traces_offered", retainer.offered() as f64)
        .metric("traces_resident", retainer.resident() as f64)
        .samples_ms(observed);
    let path = result.write().expect("bench artifact");
    println!("-> {}", path.display());
}
