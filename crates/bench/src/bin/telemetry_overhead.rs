//! Acceptance bench: the cost of the telemetry subsystem on the E3b
//! enrichment-dominated workload.
//!
//! The metrics registry and span recording are compiled in and always on
//! (sharded atomics + per-worker buffers); the toggleable component is the
//! per-item decision-provenance ledger. This bench runs the annotatorless
//! quality process (cache-seeded enrichment → z-score + classifier QA →
//! filter action — the §5/§6.2 E3b shape) twice:
//!
//! * `baseline`  — ledger disabled (passive telemetry only);
//! * `telemetry` — ledger enabled, recording evidence / assertion /
//!   action provenance for every item.
//!
//! The overhead statistic is the provenance phase's share of the
//! instrumented run, read from its own span — exact within a run, immune
//! to the cross-run drift that dominates wall-clock A/B deltas on shared
//! machines (reported separately as a cross-check). Writes
//! `BENCH_telemetry_overhead.json`; the acceptance criterion is
//! `overhead_pct < 5`.
//!
//! ```sh
//! cargo run --release -p bench --bin telemetry_overhead [n_items]
//! ```

use bench::results::{measure_ms, quantile, BenchResult};
use bench::{bench_view, seed_cache, synthetic_hits};
use qurator::prelude::*;

const ITERS: usize = 7;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let dataset = synthetic_hits(n);
    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    seed_cache(&engine, &dataset);
    let mut spec = bench_view();
    spec.annotators.clear();

    // warm-up: populate instrument caches and the condition compiler
    engine.execute_view(&spec, &dataset).expect("warm-up run");

    // interleave the two variants so slow machine drift (noisy
    // containers) hits both sample sets equally
    let mut baseline = Vec::with_capacity(ITERS);
    let mut telemetry = Vec::with_capacity(ITERS);
    let mut overheads = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        engine.set_provenance_enabled(false);
        baseline.extend(measure_ms(1, || {
            std::hint::black_box(engine.execute_view(&spec, &dataset).expect("baseline run"));
        }));
        engine.set_provenance_enabled(true);
        // clearing the previous round's traces is setup, not recording
        engine.ledger().clear();
        telemetry.extend(measure_ms(1, || {
            std::hint::black_box(engine.execute_view(&spec, &dataset).expect("telemetry run"));
        }));
        // the authoritative measurement: provenance recording has its own
        // span (`phase:provenance`), so its share of the view span is exact
        // within a single run — wall-clock A/B deltas on a shared container
        // drift more than the effect being measured
        let trace = engine.last_trace().expect("instrumented run records a trace");
        let view_ns =
            trace.roots().next().and_then(|s| s.duration_ns()).expect("closed view span") as f64;
        let prov_ns = trace
            .spans()
            .iter()
            .find(|s| s.name == "phase:provenance")
            .and_then(|s| s.duration_ns())
            .expect("closed provenance span") as f64;
        overheads.push(prov_ns / (view_ns - prov_ns) * 100.0);
    }
    assert_eq!(engine.ledger().len(), n, "ledger covers every item");

    let base_med = quantile(&baseline, 0.5);
    let tele_med = quantile(&telemetry, 0.5);
    // minimum-of-N for the wall-clock cross-check: scheduler interference
    // on a shared machine only ever adds time
    let base_min = baseline.iter().cloned().fold(f64::INFINITY, f64::min);
    let tele_min = telemetry.iter().cloned().fold(f64::INFINITY, f64::min);
    let wallclock_delta_pct =
        if base_min > 0.0 { (tele_min - base_min) / base_min * 100.0 } else { 0.0 };
    let overhead_pct = quantile(&overheads, 0.5);

    println!("== telemetry overhead on the E3b enrichment workload ==\n");
    println!("items: {n} | iterations: {ITERS}");
    println!(
        "baseline (ledger off): min {base_min:.3} ms, median {base_med:.3} ms, p95 {:.3} ms",
        quantile(&baseline, 0.95)
    );
    println!(
        "telemetry (ledger on): min {tele_min:.3} ms, median {tele_med:.3} ms, p95 {:.3} ms",
        quantile(&telemetry, 0.95)
    );
    println!(
        "overhead: {overhead_pct:.2}% (median provenance share of the instrumented run, measured from its own span; acceptance: < 5%)"
    );
    println!("wall-clock min-of-N cross-check: {wallclock_delta_pct:+.2}% (noise-dominated on shared machines)");

    let result = BenchResult::new("telemetry_overhead")
        .config("n_items", n)
        .config("iters", ITERS)
        .config("workload", "cache-seeded quality process (E3b shape)")
        .metric("baseline_min_ms", base_min)
        .metric("baseline_median_ms", base_med)
        .metric("baseline_p95_ms", quantile(&baseline, 0.95))
        .metric("telemetry_min_ms", tele_min)
        .metric("telemetry_median_ms", tele_med)
        .metric("telemetry_p95_ms", quantile(&telemetry, 0.95))
        .metric("overhead_pct", overhead_pct)
        .metric("wallclock_delta_pct", wallclock_delta_pct)
        .samples_ms(telemetry);
    let path = result.write().expect("bench artifact");
    println!("-> {}", path.display());
}
