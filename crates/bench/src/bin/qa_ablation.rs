//! Experiment E2 — ablation over the §5.1 quality assertions: how do the
//! alternative QAs compare, and how does the classifier threshold width
//! (k in avg ± k·σ) trade identification precision against recall?
//!
//! The paper lets users "compare their relative effects by editing the
//! selection criteria … at process execution time" but cannot score them
//! without ground truth; our simulator can.
//!
//! ```sh
//! cargo run -p bench --bin qa_ablation [seed]
//! ```

use qurator::prelude::*;
use qurator::spec::ActionKind;
use qurator_proteomics::{World, WorldConfig};
use qurator_rdf::namespace::q;
use qurator_repro::IspiderPipeline;
use qurator_services::stdlib::StatClassifierAssertion;
use std::sync::Arc;

fn view_with_condition(condition: &str) -> QualityViewSpec {
    let mut spec = QualityViewSpec::paper_example();
    spec.actions[0].kind = ActionKind::Filter { condition: condition.to_string() };
    spec
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let world = World::generate(&WorldConfig::paper_scale(seed)).expect("testbed");
    let group = "filter top k score";

    println!("== E2a: alternative acceptability criteria (seed {seed}) ==\n");
    println!("{:<46} {:>6} {:>10} {:>7} {:>7}", "criterion", "kept", "GO occs", "prec.", "recall");

    let engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let pipeline = IspiderPipeline::new(&world, &engine);
    let baseline = pipeline.run_unfiltered();
    println!(
        "{:<46} {:>6} {:>10} {:>7.2} {:>7.2}",
        "(no filtering)",
        baseline.spots.iter().map(|s| s.identified.len()).sum::<usize>(),
        baseline.total_go_occurrences(),
        baseline.precision(),
        baseline.recall()
    );

    for condition in [
        "ScoreClass in q:high",                      // §6.3's filter
        "ScoreClass in q:high, q:mid",               // lenient classifier
        "ScoreClass in q:high, q:mid and HR_MC > 0", // §5.1's combined filter
        "HR_MC > 1.5",                               // score-only (HR+MC+PC z)
        "HR > 1.5",                                  // HR-only score
        "HitRatio > 0.25",                           // raw evidence threshold
        "HitRatio > 0.25 and MassCoverage > 10",     // raw evidence pair
    ] {
        let spec = view_with_condition(condition);
        let out = pipeline.run_filtered(&spec, group).expect("runs");
        println!(
            "{:<46} {:>6} {:>10} {:>7.2} {:>7.2}",
            condition,
            out.spots.iter().map(|s| s.identified.len()).sum::<usize>(),
            out.total_go_occurrences(),
            out.precision(),
            out.recall()
        );
    }

    println!("\n== E2b: classifier threshold sweep (avg ± k·σ, keep q:high) ==\n");
    println!("{:<8} {:>6} {:>7} {:>7}", "k", "kept", "prec.", "recall");
    for k in [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0] {
        // an engine whose classifier uses this k
        let engine = QualityEngine::with_proteomics_defaults().expect("engine");
        // replace the classifier binding by registering under a fresh model
        let mut iq = (**engine.iq()).clone();
        iq.register_assertion_type("SweptClassifier").unwrap();
        let engine = QualityEngine::new(iq);
        // re-register stock services
        engine
            .register_annotation_service(Arc::new(
                qurator_services::stdlib::FieldCaptureAnnotator::new(
                    q::iri("ImprintOutputAnnotation"),
                    &[
                        ("hitRatio", q::iri("HitRatio")),
                        ("massCoverage", q::iri("MassCoverage")),
                        ("peptidesCount", q::iri("PeptidesCount")),
                    ],
                ),
            ))
            .unwrap();
        engine
            .register_assertion_service(Arc::new(qurator_services::stdlib::ZScoreAssertion::new(
                q::iri("UniversalPIScore2"),
                &["coverage", "hitratio", "peptidescount"],
            )))
            .unwrap();
        engine
            .register_assertion_service(Arc::new(qurator_services::stdlib::ZScoreAssertion::new(
                q::iri("UniversalPIScore"),
                &["hitratio"],
            )))
            .unwrap();
        engine
            .register_assertion_service(Arc::new(
                StatClassifierAssertion::new(
                    q::iri("PIScoreClassifier"),
                    "score",
                    q::iri("PIScoreClassification"),
                    (q::iri("low"), q::iri("mid"), q::iri("high")),
                )
                .with_k(k),
            ))
            .unwrap();

        let pipeline = IspiderPipeline::new(&world, &engine);
        let spec = view_with_condition("ScoreClass in q:high");
        let out = pipeline.run_filtered(&spec, group).expect("runs");
        println!(
            "{:<8} {:>6} {:>7.2} {:>7.2}",
            k,
            out.spots.iter().map(|s| s.identified.len()).sum::<usize>(),
            out.precision(),
            out.recall()
        );
    }
    println!(
        "\nreading: small k widens the q:high band (keeps every true hit); large k keeps only \
         extreme outliers and starts costing recall (DESIGN.md E2)"
    );
}
