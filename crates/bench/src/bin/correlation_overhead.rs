//! Acceptance bench: what end-to-end run correlation costs on the
//! serve request path, priced layer by layer.
//!
//! PR 6's `qv serve` executed a view per request with observability on
//! (retention + drift) but nothing connecting a response to its
//! telemetry. This PR adds two separable layers on top:
//!
//! 1. the **always-on decision ledger** — `qv serve` enables per-item
//!    provenance capture into a bounded ledger so `GET /runs/<id>` can
//!    serve a decision slice. Capture work is proportional to items per
//!    request and is priced as `ledger_overhead_pct`;
//! 2. the **correlation layer** — a caller-minted [`RunId`] threaded
//!    through the run plus one structured access-log record per
//!    request. This is the layer the ≤5% telemetry bound covers
//!    (`overhead_pct`); SLO gauges are computed on `/metrics` scrape,
//!    off the request path.
//!
//! Three identical engines run the same generated spots (each spot
//! standing in for one `POST /run/<view>` request), interleaved in
//! rotating order so machine drift hits all sample sets equally:
//!
//! * `baseline`   — PR 6 serve path: observability on, ledger off;
//! * `ledger`     — + provenance capture into a serve-sized ledger;
//! * `correlated` — + run-id threading and the access log.
//!
//! Acceptance: `overhead_pct` (correlated vs ledger, median of paired
//! back-to-back deltas) ≤ 5%. `ledger_overhead_pct` (ledger vs
//! baseline) and `total_overhead_pct` (correlated vs baseline) are
//! reported alongside so the full cost is on the record.
//!
//! ```sh
//! cargo run --release -p bench --bin correlation_overhead [seed]
//! ```

use bench::results::{measure_ms, quantile, BenchResult};
use qurator::prelude::*;
use qurator_proteomics::{World, WorldConfig};
use qurator_repro::ispider::{figure7_view, hits_to_dataset};
use qurator_telemetry::{AccessLog, AccessRecord, RunId, TelemetryConfig};

const ITERS: usize = 21;
/// Mirrors `SERVE_LEDGER_CAPACITY` in `qv serve`.
const LEDGER_CAPACITY: usize = 8192;

/// Median of per-pair relative deltas — each pair ran back-to-back, so
/// slow-machine drift largely cancels.
fn paired_delta_pct(base: &[f64], variant: &[f64]) -> f64 {
    let mut paired: Vec<f64> = base
        .iter()
        .zip(variant)
        .filter(|(b, _)| **b > 0.0)
        .map(|(b, v)| (v - b) / b * 100.0)
        .collect();
    paired.sort_by(|a, b| a.partial_cmp(b).unwrap());
    quantile(&paired, 0.5)
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let world = World::generate(&WorldConfig::paper_scale(seed)).expect("testbed");
    let view = figure7_view();

    // one dataset per spot, prepared up front: each stands in for the
    // parsed body of one POST /run/<view> request
    let datasets: Vec<DataSet> = world
        .peak_lists()
        .iter()
        .map(|peak_list| hits_to_dataset(&peak_list.spot_id, &world.imprint.search(peak_list)))
        .collect();

    // three identical engines; the drift monitor is process-global and
    // part of every variant, so it stays on throughout
    let config = TelemetryConfig::default();
    let base_engine = QualityEngine::with_proteomics_defaults().expect("engine");
    base_engine.enable_observability(&config);
    let ledger_engine = QualityEngine::with_proteomics_defaults().expect("engine");
    ledger_engine.enable_observability(&config);
    ledger_engine.set_provenance_enabled(true);
    ledger_engine.ledger().set_trace_capacity(LEDGER_CAPACITY);
    let corr_engine = QualityEngine::with_proteomics_defaults().expect("engine");
    let retainer = corr_engine.enable_observability(&config);
    corr_engine.set_provenance_enabled(true);
    corr_engine.ledger().set_trace_capacity(LEDGER_CAPACITY);
    let access_log = AccessLog::new(1024);

    // warm-up all variants (condition compiler, annotation caches) —
    // like a serving process, caches stay warm between requests
    for dataset in &datasets {
        base_engine.execute_view(&view, dataset).expect("baseline warm-up");
        ledger_engine.execute_view(&view, dataset).expect("ledger warm-up");
        corr_engine.execute_view(&view, dataset).expect("correlated warm-up");
    }

    let mut baseline = Vec::with_capacity(ITERS);
    let mut ledger = Vec::with_capacity(ITERS);
    let mut correlated = Vec::with_capacity(ITERS);
    let run_baseline = |out: &mut Vec<f64>| {
        out.extend(measure_ms(1, || {
            for dataset in &datasets {
                std::hint::black_box(
                    base_engine.execute_view(&view, dataset).expect("baseline run"),
                );
            }
        }));
    };
    let run_ledger = |out: &mut Vec<f64>| {
        out.extend(measure_ms(1, || {
            for dataset in &datasets {
                std::hint::black_box(
                    ledger_engine.execute_view(&view, dataset).expect("ledger run"),
                );
            }
        }));
    };
    let run_correlated = |out: &mut Vec<f64>| {
        out.extend(measure_ms(1, || {
            for dataset in &datasets {
                let run = RunId::mint();
                std::hint::black_box(
                    corr_engine.execute_view_run(&view, dataset, run).expect("correlated run"),
                );
                access_log.record(AccessRecord {
                    seq: 0,
                    ts_ms: 0,
                    peer: "bench".into(),
                    route: "/run".into(),
                    status: 200,
                    bytes: 0,
                    latency_us: 0,
                    run_id: Some(run),
                    shed: false,
                    timeout: false,
                });
            }
        }));
    };
    // rotate the within-triple order so cache/scheduler effects don't
    // systematically favour one variant
    for i in 0..ITERS {
        match i % 3 {
            0 => {
                run_baseline(&mut baseline);
                run_ledger(&mut ledger);
                run_correlated(&mut correlated);
            }
            1 => {
                run_ledger(&mut ledger);
                run_correlated(&mut correlated);
                run_baseline(&mut baseline);
            }
            _ => {
                run_correlated(&mut correlated);
                run_baseline(&mut baseline);
                run_ledger(&mut ledger);
            }
        }
    }

    let overhead_pct = paired_delta_pct(&ledger, &correlated);
    let ledger_overhead_pct = paired_delta_pct(&baseline, &ledger);
    let total_overhead_pct = paired_delta_pct(&baseline, &correlated);

    println!("== run-correlation overhead on the serve request path (seed {seed}) ==\n");
    println!("requests per iteration: {} | iterations: {ITERS}", datasets.len());
    for (name, samples) in [
        ("baseline (PR 6 serve)", &baseline),
        ("+ ledger", &ledger),
        ("+ correlation", &correlated),
    ] {
        println!(
            "{name:22}  min {:.3} ms, median {:.3} ms, p95 {:.3} ms",
            samples.iter().cloned().fold(f64::INFINITY, f64::min),
            quantile(samples, 0.5),
            quantile(samples, 0.95),
        );
    }
    println!(
        "correlation + access log overhead: {overhead_pct:+.2}% (median of paired deltas; acceptance: <= 5%)"
    );
    println!(
        "always-on ledger: {ledger_overhead_pct:+.2}% | total vs PR 6: {total_overhead_pct:+.2}%"
    );
    println!(
        "ledger: {} trace(s) resident (capacity {LEDGER_CAPACITY}) | access log: {} record(s)",
        corr_engine.ledger().len(),
        access_log.recorded(),
    );
    assert!(
        corr_engine.ledger().len() <= LEDGER_CAPACITY,
        "serve-sized ledger must stay within its bound"
    );
    assert!(retainer.resident() <= retainer.capacity());

    let result = BenchResult::new("correlation_overhead")
        .config("seed", seed)
        .config("iters", ITERS)
        .config("workload", "Figure 7 spots as serve requests")
        .config("ledger_capacity", LEDGER_CAPACITY)
        .metric("baseline_median_ms", quantile(&baseline, 0.5))
        .metric("ledger_median_ms", quantile(&ledger, 0.5))
        .metric("correlated_median_ms", quantile(&correlated, 0.5))
        .metric("overhead_pct", overhead_pct)
        .metric("ledger_overhead_pct", ledger_overhead_pct)
        .metric("total_overhead_pct", total_overhead_pct)
        .metric("requests_per_iter", datasets.len() as f64)
        .metric("access_log_records", access_log.recorded() as f64)
        .samples_ms(correlated);
    let path = result.write().expect("bench artifact");
    println!("-> {}", path.display());
}
