//! Experiment F1 — regenerates the *structure and behaviour* of Figure 1:
//! the ISPIDER proteomics analysis workflow (PEDRo → Imprint → GOA),
//! enacted over the synthetic testbed.
//!
//! Writes `BENCH_fig1_workflow.json` (enactment latency over several
//! repetitions, plus the git revision) and optionally exports the
//! enactment telemetry:
//!
//! ```sh
//! cargo run -p bench --bin fig1_workflow [seed] \
//!     [--trace-out trace.jsonl] [--metrics-out metrics.txt]
//! ```

use bench::host::build_host;
use bench::results::{measure_ms, BenchResult};
use qurator_proteomics::{World, WorldConfig};
use qurator_workflow::{Context, Data, Enactor};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

const ITERS: usize = 5;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(42);
    let world = Arc::new(World::generate(&WorldConfig::paper_scale(seed)).expect("testbed"));
    let workflow = build_host(world.clone());

    println!("== Figure 1: ISPIDER analysis workflow ==\n");
    println!("{}", workflow.to_dot());
    println!(
        "processors: {} | data links: {} | topological order: {:?}\n",
        workflow.len(),
        workflow.data_links().len(),
        workflow.topological_order().expect("acyclic")
    );

    let mut report = None;
    let samples = measure_ms(ITERS, || {
        report = Some(
            Enactor::new().run(&workflow, &BTreeMap::new(), &Context::new()).expect("enactment"),
        );
    });
    let report = report.expect("at least one iteration");
    println!("== enactment trace ==");
    print!("{}", report.render_trace());

    let counts = report.outputs["go_counts"].as_record().expect("record output");
    let total: f64 = counts.values().filter_map(Data::as_number).sum();
    println!(
        "\nGO terms: {} distinct | {} occurrences over {} spots",
        counts.len(),
        total,
        world.peak_lists().len()
    );

    let mut top: Vec<(&String, f64)> =
        counts.iter().filter_map(|(term, v)| v.as_number().map(|n| (term, n))).collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(b.0)));
    println!("\ntop GO terms by raw frequency (the scientist's pareto chart, §1.1):");
    for (term, count) in top.iter().take(10) {
        println!("  {:<12} {:>4}  {}", term, count, "#".repeat(*count as usize));
    }

    if let Some(path) = flag_value(&args, "--trace-out") {
        qurator_telemetry::export::write_trace_jsonl(report.trace(), Path::new(path))
            .expect("trace export");
        println!("\ntrace: {} span(s) -> {path}", report.trace().len());
    }
    if let Some(path) = flag_value(&args, "--metrics-out") {
        qurator_telemetry::export::write_metrics_text(
            qurator_telemetry::metrics(),
            Path::new(path),
        )
        .expect("metrics export");
        println!("metrics -> {path}");
    }

    let result = BenchResult::new("fig1_workflow")
        .config("seed", seed)
        .config("iters", ITERS)
        .config("processors", workflow.len())
        .config("spots", world.peak_lists().len())
        .metric("go_terms_distinct", counts.len() as f64)
        .metric("go_occurrences", total)
        .samples_ms(samples);
    let path = result.write().expect("bench artifact");
    println!(
        "\nenactment: median {:.2} ms, p95 {:.2} ms over {ITERS} run(s) -> {}",
        result.median_ms(),
        result.p95_ms(),
        path.display()
    );
}
