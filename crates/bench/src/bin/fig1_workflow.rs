//! Experiment F1 — regenerates the *structure and behaviour* of Figure 1:
//! the ISPIDER proteomics analysis workflow (PEDRo → Imprint → GOA),
//! enacted over the synthetic testbed.
//!
//! ```sh
//! cargo run -p bench --bin fig1_workflow [seed]
//! ```

use bench::host::build_host;
use qurator_proteomics::{World, WorldConfig};
use qurator_workflow::{Context, Data, Enactor};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let world = Arc::new(World::generate(&WorldConfig::paper_scale(seed)).expect("testbed"));
    let workflow = build_host(world.clone());

    println!("== Figure 1: ISPIDER analysis workflow ==\n");
    println!("{}", workflow.to_dot());
    println!(
        "processors: {} | data links: {} | topological order: {:?}\n",
        workflow.len(),
        workflow.data_links().len(),
        workflow.topological_order().expect("acyclic")
    );

    let report =
        Enactor::new().run(&workflow, &BTreeMap::new(), &Context::new()).expect("enactment");
    println!("== enactment trace ==");
    print!("{}", report.render_trace());

    let counts = report.outputs["go_counts"].as_record().expect("record output");
    let total: f64 = counts.values().filter_map(Data::as_number).sum();
    println!(
        "\nGO terms: {} distinct | {} occurrences over {} spots",
        counts.len(),
        total,
        world.peak_lists().len()
    );

    let mut top: Vec<(&String, f64)> =
        counts.iter().filter_map(|(term, v)| v.as_number().map(|n| (term, n))).collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(b.0)));
    println!("\ntop GO terms by raw frequency (the scientist's pareto chart, §1.1):");
    for (term, count) in top.iter().take(10) {
        println!("  {:<12} {:>4}  {}", term, count, "#".repeat(*count as usize));
    }
}
