//! Serving load bench: N concurrent clients against a live `qv serve`.
//!
//! ROADMAP open item #1 (fixed by the concurrent-serve PR) documented the
//! defining failure of the demo endpoint: a single-threaded accept loop
//! means one slow client stalls every submission. This bench pins the
//! fix's effect as a number every later PR can regress against: it
//! spawns the real `qv` binary (same process shape CI's smoke job and
//! production use), drives the Figure 7 workload through
//! `POST /run/<view>` from N keep-alive clients, and writes
//! `BENCH_serve_load.json` with requests/sec and p50/p99 latency for
//! both a single-worker server (the old serial behaviour) and the full
//! worker pool. The headline metric is `speedup`: pooled rps over
//! single-worker rps at the same client count.
//!
//! Clients are *paced*: each submission's body is trickled in with
//! `--pace-ms` of transmission time, the WAN shape that made the serial
//! accept loop pathological — the server spends most of a request's
//! wall time waiting on the client's socket, so a serial server
//! serializes those waits while the pool overlaps them. Pacing is what
//! the fix is *for*; `--pace-ms 0` degenerates the bench into a pure
//! engine-throughput measurement (bounded by cores, not by the serve
//! architecture).
//!
//! ```sh
//! cargo run --release -p bench --bin serve_load -- \
//!     [--clients N] [--requests R] [--rows M] [--workers W] [--pace-ms P]
//! ```
//!
//! The server is stopped with SIGTERM after each variant and its exit
//! status checked, so the graceful-drain contract is exercised on every
//! bench run too.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use bench::results::{quantile, BenchResult};
use bench::synthetic_hits_tsv;
use qurator_repro::ispider::figure7_view;

struct Args {
    clients: usize,
    requests: usize,
    rows: usize,
    workers: usize,
    pace: Duration,
}

fn parse_args() -> Args {
    let mut args =
        Args { clients: 8, requests: 12, rows: 200, workers: 8, pace: Duration::from_millis(150) };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = || -> usize {
            argv.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{} needs a number", argv[i]))
        };
        match argv[i].as_str() {
            "--clients" => args.clients = value().max(1),
            "--requests" => args.requests = value().max(1),
            "--rows" => args.rows = value().max(1),
            "--workers" => args.workers = value().max(1),
            "--pace-ms" => args.pace = Duration::from_millis(value() as u64),
            other => panic!("unknown flag {other:?}"),
        }
        i += 2;
    }
    args
}

/// The `qv` binary sits next to this bench binary in `target/<profile>/`.
fn qv_binary() -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("target dir");
    let qv = dir.join("qv");
    assert!(
        qv.exists(),
        "{} not found; build with `cargo build --release -p qurator-cli`",
        qv.display()
    );
    qv
}

struct Server {
    child: Child,
    addr: String,
    /// Held open so the server's shutdown print has somewhere to go.
    _stdout: BufReader<std::process::ChildStdout>,
}

/// Spawns `qv serve` on an ephemeral port and parses the bound address
/// off its startup line.
fn spawn_server(qv: &std::path::Path, view: &std::path::Path, workers: usize) -> Server {
    let mut child = Command::new(qv)
        .arg("serve")
        .arg(view)
        .args(["--addr", "127.0.0.1:0"])
        .args(["--workers", &workers.to_string()])
        .args(["--keep-alive-max", "100000"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn qv serve");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split([' ', '/']).next())
        .unwrap_or_else(|| panic!("cannot parse address from {line:?}"))
        .to_string();
    // the listener is bound before the line prints, but give the accept
    // loop a moment on loaded machines
    for _ in 0..50 {
        if TcpStream::connect(&addr).is_ok() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Server { child, addr, _stdout: reader }
}

/// SIGTERM + wait: returns true when the server drained to exit 0.
fn stop_server(mut server: Server) -> bool {
    #[cfg(unix)]
    {
        let _ = Command::new("kill")
            .args(["-TERM", &server.child.id().to_string()])
            .status()
            .expect("send SIGTERM");
        for _ in 0..100 {
            if let Some(status) = server.child.try_wait().expect("try_wait") {
                return status.success();
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let _ = server.child.kill();
        false
    }
    #[cfg(not(unix))]
    {
        let _ = server.child.kill();
        true
    }
}

/// One keep-alive client: `requests` sequential POSTs on a single
/// connection, returning per-request latencies (ms) and the non-200
/// count. A non-zero `pace` trickles each body in two halves with the
/// pace as transmission time, holding the server's read for that long —
/// the slow-client shape.
fn run_client(
    addr: &str,
    view: &str,
    body: &str,
    requests: usize,
    pace: Duration,
) -> (Vec<f64>, usize) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let head = format!(
        "POST /run/{view} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let (first, second) = body.as_bytes().split_at(body.len() / 2);
    let mut latencies = Vec::with_capacity(requests);
    let mut errors = 0usize;
    for _ in 0..requests {
        let started = Instant::now();
        stream.write_all(head.as_bytes()).expect("write head");
        stream.write_all(first).expect("write body");
        stream.flush().expect("flush");
        if !pace.is_zero() {
            std::thread::sleep(pace);
        }
        stream.write_all(second).expect("write body");
        let status = read_response(&mut stream);
        latencies.push(started.elapsed().as_secs_f64() * 1e3);
        if status != 200 {
            errors += 1;
        }
    }
    (latencies, errors)
}

/// Reads one framed response, returning its status code.
fn read_response(stream: &mut TcpStream) -> u16 {
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "server closed the connection mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status: u16 = head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let content_length: usize = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    let mut have = buf.len() - head_end - 4;
    while have < content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "server closed the connection mid-body");
        have += n;
    }
    status
}

/// Drives `clients` concurrent keep-alive clients and returns
/// (wall seconds, per-request latencies ms, error count).
fn drive(
    addr: &str,
    view: &str,
    body: &str,
    clients: usize,
    requests: usize,
    pace: Duration,
) -> (f64, Vec<f64>, usize) {
    let started = Instant::now();
    let results: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| scope.spawn(move || run_client(addr, view, body, requests, pace)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut errors = 0;
    for (l, e) in results {
        latencies.extend(l);
        errors += e;
    }
    (wall, latencies, errors)
}

fn main() {
    let args = parse_args();
    let qv = qv_binary();

    // the Figure 7 view + synthetic Imprint gradient, on disk for qv
    let spec = figure7_view();
    let view_name = spec.name.clone();
    let dir = std::env::temp_dir().join("qv-serve-load");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let view_path = dir.join("figure7.xml");
    std::fs::write(&view_path, qurator::xmlio::spec_to_xml(&spec)).expect("write view");
    let body = synthetic_hits_tsv(args.rows);

    let run_variant = |workers: usize| -> (f64, Vec<f64>) {
        let server = spawn_server(&qv, &view_path, workers);
        // warm-up: condition compiler, annotation caches, allocator
        let (_, warm_errors) = run_client(&server.addr, &view_name, &body, 3, Duration::ZERO);
        assert_eq!(warm_errors, 0, "warm-up requests failed");
        let (wall, latencies, errors) =
            drive(&server.addr, &view_name, &body, args.clients, args.requests, args.pace);
        assert_eq!(errors, 0, "{errors} request(s) failed under workers={workers}");
        assert!(stop_server(server), "server did not drain to exit 0 (workers={workers})");
        let rps = (args.clients * args.requests) as f64 / wall;
        println!(
            "workers={workers:2}  clients={}  rps={rps:8.1}  p50={:.2}ms  p99={:.2}ms",
            args.clients,
            quantile(&latencies, 0.5),
            quantile(&latencies, 0.99),
        );
        (rps, latencies)
    };

    let (rps_single, _) = run_variant(1);
    let (rps_pool, latencies) = run_variant(args.workers);
    let speedup = if rps_single > 0.0 { rps_pool / rps_single } else { 0.0 };
    println!("speedup: {speedup:.2}x over the single-worker (pre-fix) accept loop");

    let result = BenchResult::new("serve_load")
        .config("clients", args.clients)
        .config("requests_per_client", args.requests)
        .config("rows", args.rows)
        .config("workers", args.workers)
        .config("pace_ms", args.pace.as_millis())
        .config("view", &view_name)
        .metric("rps_single_worker", rps_single)
        .metric("rps_pool", rps_pool)
        .metric("speedup", speedup)
        .metric("p50_ms", quantile(&latencies, 0.5))
        .metric("p99_ms", quantile(&latencies, 0.99))
        .samples_ms(latencies);
    let path = result.write().expect("write artifact");
    println!("wrote {}", path.display());
}
