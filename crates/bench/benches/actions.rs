//! E6 — action throughput (paper §4.1): filter and splitter cost against
//! collection size and condition complexity, plus the price of the
//! edit-between-runs semantics (conditions are re-parsed from source).

use bench::synthetic_hits;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qurator::operators::{ActionProcessor, CompiledAction};
use qurator_annotations::{AnnotationMap, EvidenceValue};
use qurator_ontology::IqModel;
use qurator_rdf::namespace::q;
use qurator_services::DataSet;
use std::hint::black_box;
use std::sync::Arc;

/// Dataset + matching annotation map with score/class tags.
fn fixtures(items: usize) -> (DataSet, AnnotationMap) {
    let dataset = synthetic_hits(items);
    let mut map = AnnotationMap::new();
    for (index, item) in dataset.items().iter().enumerate() {
        map.set_evidence(&item.clone(), q::iri("HitRatio"), dataset.field(item, "hitRatio"));
        map.set_evidence(
            &item.clone(),
            q::iri("MassCoverage"),
            dataset.field(item, "massCoverage"),
        );
        map.set_tag(item, "HR_MC", ((items / 2) as f64 - index as f64).into());
        let label = match index * 3 / items.max(1) {
            0 => "high",
            1 => "mid",
            _ => "low",
        };
        map.set_tag(item, "ScoreClass", EvidenceValue::Class(q::iri(label)));
    }
    (dataset, map)
}

fn iq() -> Arc<IqModel> {
    Arc::new(IqModel::with_proteomics_extension().expect("iq"))
}

fn bench_filter_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_throughput");
    let iq = iq();
    for &items in &[100usize, 1_000, 10_000] {
        let (dataset, map) = fixtures(items);
        let action = ActionProcessor::new(
            "keep",
            CompiledAction::Filter {
                condition: "ScoreClass in q:high, q:mid and HR_MC > 0".into(),
            },
            iq.clone(),
        );
        group.throughput(Throughput::Elements(items as u64));
        group.bench_with_input(BenchmarkId::from_parameter(items), &items, |b, _| {
            b.iter(|| black_box(action.apply(&dataset, &map).expect("applies")))
        });
    }
    group.finish();
}

fn bench_condition_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("condition_complexity");
    let iq = iq();
    let (dataset, map) = fixtures(1_000);
    for (label, condition) in [
        ("trivial", "HR_MC > 0"),
        ("membership", "ScoreClass in q:high, q:mid"),
        ("paper", "ScoreClass in q:high, q:mid and HR_MC > 0"),
        (
            "heavy",
            "(ScoreClass in q:high, q:mid or HitRatio * 100 + MassCoverage / 2 > 40) \
             and not (HR_MC < -250) and (HitRatio > 0.1 or MassCoverage > 5)",
        ),
    ] {
        let action = ActionProcessor::new(
            "keep",
            CompiledAction::Filter { condition: condition.into() },
            iq.clone(),
        );
        group.bench_function(label, |b| {
            b.iter(|| black_box(action.apply(&dataset, &map).expect("applies")))
        });
    }
    group.finish();
}

fn bench_splitter(c: &mut Criterion) {
    let iq = iq();
    let (dataset, map) = fixtures(1_000);
    let action = ActionProcessor::new(
        "triage",
        CompiledAction::Split {
            groups: vec![
                ("high".into(), "ScoreClass in q:high".into()),
                ("mid".into(), "ScoreClass in q:mid".into()),
                ("salvage".into(), "HR_MC > 100".into()),
            ],
        },
        iq,
    );
    c.bench_function("splitter_3_groups_1000", |b| {
        b.iter(|| black_box(action.apply(&dataset, &map).expect("applies")))
    });
}

fn bench_condition_parse(c: &mut Criterion) {
    // the re-parse that edit-between-runs semantics costs per action run
    let source = "ScoreClass in q:high, q:mid and HR_MC > 20";
    c.bench_function("condition_parse", |b| {
        b.iter(|| black_box(qurator_expr::parse(black_box(source)).expect("parses")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(15);
    targets = bench_filter_sizes,
    bench_condition_complexity,
    bench_splitter,
    bench_condition_parse
}
criterion_main!(benches);
