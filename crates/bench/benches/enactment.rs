//! E5 — execution-path overheads (paper §6.2): what does routing the
//! quality process through the workflow engine cost versus direct
//! interpretation, and what does wave-parallel enactment buy?

use bench::{bench_engine, bench_view, synthetic_hits};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qurator::compile::DATASET_INPUT;
use qurator_workflow::{Context, Enactor};
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_interpret_vs_compiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution_path");
    group.sample_size(20);
    for &items in &[50usize, 200] {
        let dataset = synthetic_hits(items);
        group.throughput(Throughput::Elements(items as u64));

        let engine = bench_engine();
        let spec = bench_view();
        group.bench_with_input(BenchmarkId::new("interpreter", items), &items, |b, _| {
            b.iter(|| {
                let out = engine.execute_view(black_box(&spec), &dataset).expect("runs");
                engine.finish_execution();
                black_box(out)
            })
        });

        let engine = bench_engine();
        group.bench_with_input(BenchmarkId::new("compiled", items), &items, |b, _| {
            b.iter(|| {
                let (out, _) = engine.execute_compiled(black_box(&spec), &dataset).expect("runs");
                engine.finish_execution();
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("enactor");
    group.sample_size(20);
    let engine = bench_engine();
    let spec = bench_view();
    let dataset = synthetic_hits(200);
    let workflow = engine.compile(&spec).expect("compiles");
    let inputs =
        BTreeMap::from([(DATASET_INPUT.to_string(), qurator::convert::dataset_to_data(&dataset))]);
    group.bench_function("wave_parallel", |b| {
        b.iter(|| {
            let r = Enactor::new().run(&workflow, &inputs, &Context::new()).expect("runs");
            engine.finish_execution();
            black_box(r.outputs)
        })
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let r = Enactor::sequential().run(&workflow, &inputs, &Context::new()).expect("runs");
            engine.finish_execution();
            black_box(r.outputs)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(15);
    targets = bench_interpret_vs_compiled, bench_parallel_vs_sequential
}
criterion_main!(benches);
