//! E4 — quality-view compilation latency (paper §6.1): XML parse,
//! semantic validation, and compilation to a workflow, swept over the
//! number of quality-assertion operators in the view.

use bench::{bench_engine, bench_view, scaled_view};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let xml = qurator::xmlio::spec_to_xml(&bench_view());
    c.bench_function("qv_parse_xml", |b| {
        b.iter(|| black_box(qurator::xmlio::parse_quality_view(black_box(&xml)).expect("parses")))
    });
}

fn bench_validate(c: &mut Criterion) {
    let engine = bench_engine();
    let spec = bench_view();
    c.bench_function("qv_validate", |b| {
        b.iter(|| black_box(engine.validate(black_box(&spec)).expect("validates")))
    });
}

fn bench_compile_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("qv_compile");
    for &assertions in &[1usize, 2, 4, 8, 16] {
        let engine = bench_engine();
        let spec = scaled_view(assertions, 2);
        group.bench_with_input(BenchmarkId::from_parameter(assertions), &assertions, |b, _| {
            b.iter(|| black_box(engine.compile(black_box(&spec)).expect("compiles")))
        });
    }
    group.finish();
}

fn bench_end_to_end_compile(c: &mut Criterion) {
    // parse + validate + compile, the full §6.1 path from XML text
    let engine = bench_engine();
    let xml = qurator::xmlio::spec_to_xml(&bench_view());
    c.bench_function("qv_xml_to_workflow", |b| {
        b.iter(|| {
            let spec = qurator::xmlio::parse_quality_view(black_box(&xml)).expect("parses");
            black_box(engine.compile(&spec).expect("compiles"))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(15);
    targets = bench_parse,
    bench_validate,
    bench_compile_sweep,
    bench_end_to_end_compile
}
criterion_main!(benches);
