//! E3b — bulk enrichment vs per-pair lookups (§5, §6.2).
//!
//! The Data-Enrichment operator needs one evidence value per
//! `(data item, evidence type)` pair. The paper-faithful baseline issues
//! one SPARQL query per pair (parse + plan + solve every time); this
//! bench compares it against the three batched paths this repo adds:
//!
//! * `per_pair_sparql`   — interpolated query text per pair (E3 baseline)
//! * `per_pair_prepared` — parse once, bind `(item, etype)` per pair
//! * `per_pair_direct`   — index walk per pair, no query machinery
//! * `bulk`              — one read lock + one contains-evidence index
//!   scan hash-joined against the item set (`enrich_bulk`)
//! * `parallel_bulk`     — `DataEnrichmentProcessor`'s chunked scoped-thread
//!   fan-out over the same bulk path
//!
//! All five produce identical `AnnotationMap`s (asserted in
//! `qurator-annotations` property tests); only the cost differs. Per-pair
//! SPARQL is capped at 10⁴ items — at 10⁵ a single iteration takes
//! seconds, which is the point of the experiment.

use bench::synthetic_hits;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qurator::operators::DataEnrichmentProcessor;
use qurator_annotations::{AnnotationMap, AnnotationRepository, EvidenceValue};
use qurator_ontology::IqModel;
use qurator_rdf::namespace::q;
use qurator_rdf::term::{Iri, Term};
use qurator_services::DataSet;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn evidence_types() -> [Iri; 3] {
    [q::iri("HitRatio"), q::iri("MassCoverage"), q::iri("PeptidesCount")]
}

const FIELDS: [&str; 3] = ["hitRatio", "massCoverage", "peptidesCount"];

/// A repository holding the given `(dataset field, evidence type)` columns
/// for every item of `dataset`.
fn populated(
    dataset: &DataSet,
    fields: &[(&str, Iri)],
    iq: &Arc<IqModel>,
) -> Arc<AnnotationRepository> {
    let repo = AnnotationRepository::new("bench", false, iq.clone());
    for item in dataset.items() {
        for (field, evidence_type) in fields {
            repo.annotate(item, evidence_type, dataset.field(item, field)).expect("annotate");
        }
    }
    Arc::new(repo)
}

/// The per-pair composition `enrich` performs, parameterised by lookup.
fn per_pair(
    items: &[Term],
    types: &[Iri],
    mut lookup: impl FnMut(&Term, &Iri) -> EvidenceValue,
) -> AnnotationMap {
    let mut map = AnnotationMap::for_items(items.iter().cloned());
    for item in items {
        for evidence_type in types {
            match lookup(item, evidence_type) {
                EvidenceValue::Null => {}
                value => map.set_evidence(item, evidence_type.clone(), value),
            }
        }
    }
    map
}

fn bench_enrichment(c: &mut Criterion) {
    let iq = Arc::new(IqModel::with_proteomics_extension().expect("iq"));
    let types = evidence_types();
    let mut group = c.benchmark_group("enrichment");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let dataset = synthetic_hits(n);
        let fields: Vec<(&str, Iri)> = FIELDS.iter().copied().zip(types.iter().cloned()).collect();
        let repo = populated(&dataset, &fields, &iq);
        let items = dataset.items().to_vec();
        group.throughput(Throughput::Elements((n * types.len()) as u64));

        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("per_pair_sparql", n), &n, |b, _| {
                b.iter(|| {
                    black_box(per_pair(&items, &types, |i, t| {
                        repo.lookup_sparql(i, t).expect("lookup")
                    }))
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("per_pair_prepared", n), &n, |b, _| {
            b.iter(|| {
                black_box(per_pair(&items, &types, |i, t| {
                    repo.lookup_prepared(i, t).expect("lookup")
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("per_pair_direct", n), &n, |b, _| {
            b.iter(|| black_box(per_pair(&items, &types, |i, t| repo.lookup_direct(i, t))))
        });
        group.bench_with_input(BenchmarkId::new("bulk", n), &n, |b, _| {
            b.iter(|| black_box(repo.enrich_bulk(&items, &types).expect("bulk")))
        });
        let processor = DataEnrichmentProcessor::new(
            "de",
            types.iter().map(|t| (t.clone(), repo.clone())).collect(),
        );
        group.bench_with_input(BenchmarkId::new("parallel_bulk", n), &n, |b, _| {
            b.iter(|| black_box(processor.enrich(&items).expect("enrich")))
        });
    }
    group.finish();
}

/// The plan shape the parallel fan-out exists for: each evidence type lives
/// in its *own* repository (§5's federated e-Science scenario), so the
/// three bulk scans are independent and can run on separate threads.
fn bench_multi_repo(c: &mut Criterion) {
    let iq = Arc::new(IqModel::with_proteomics_extension().expect("iq"));
    let types = evidence_types();
    let mut group = c.benchmark_group("enrichment_multi_repo");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    for &n in &[1_000usize, 10_000, 100_000] {
        let dataset = synthetic_hits(n);
        let items = dataset.items().to_vec();
        let plan: Vec<(Iri, Arc<AnnotationRepository>)> = FIELDS
            .iter()
            .zip(types.iter())
            .map(|(field, t)| (t.clone(), populated(&dataset, &[(field, t.clone())], &iq)))
            .collect();
        group.throughput(Throughput::Elements((n * types.len()) as u64));

        let parallel = DataEnrichmentProcessor::new("de", plan.clone());
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| black_box(parallel.enrich(&items).expect("enrich")))
        });
        let sequential = DataEnrichmentProcessor::new("de", plan).with_parallel(false);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| black_box(sequential.enrich(&items).expect("enrich")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enrichment, bench_multi_repo);
criterion_main!(benches);
