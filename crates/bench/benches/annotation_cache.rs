//! E1 — persistent vs on-the-fly annotations (paper §4): "although
//! annotations may in principle be generated on the fly, in some cases
//! this is neither necessary nor convenient … annotations are likely to be
//! long-lived and can be made persistent".
//!
//! Simulates an expensive external annotation source (per-item latency,
//! like consulting journal impact-factor tables) and compares executing a
//! quality process that recomputes annotations every run against one that
//! enriches from a warm persistent repository.

use bench::synthetic_hits;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qurator_annotations::AnnotationRepository;
use qurator_ontology::IqModel;
use qurator_rdf::namespace::q;
use qurator_services::stdlib::{DelayedAnnotator, FieldCaptureAnnotator};
use qurator_services::AnnotationService;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn annotator(delay_us: u64) -> Arc<dyn AnnotationService> {
    let inner = Arc::new(FieldCaptureAnnotator::new(
        q::iri("ImprintOutputAnnotation"),
        &[("hitRatio", q::iri("HitRatio")), ("massCoverage", q::iri("MassCoverage"))],
    ));
    if delay_us == 0 {
        inner
    } else {
        Arc::new(DelayedAnnotator::new(inner, Duration::from_micros(delay_us)))
    }
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("annotation_source");
    group.sample_size(10);
    let items = 200usize;
    let dataset = synthetic_hits(items);
    let item_terms: Vec<_> = dataset.items().to_vec();
    let evidence = [q::iri("HitRatio"), q::iri("MassCoverage")];
    let iq = Arc::new(IqModel::with_proteomics_extension().expect("iq"));

    for &delay_us in &[0u64, 50] {
        // cold: annotate on the fly each run, then enrich
        let service = annotator(delay_us);
        let cold_repo = AnnotationRepository::new("cache", false, iq.clone());
        group.throughput(Throughput::Elements(items as u64));
        group.bench_with_input(BenchmarkId::new("on_the_fly", delay_us), &delay_us, |b, _| {
            b.iter(|| {
                cold_repo.clear();
                service.annotate(&dataset, &cold_repo).expect("annotates");
                black_box(cold_repo.enrich(&item_terms, &evidence).expect("enrich"))
            })
        });

        // warm: persistent repository populated once, runs only enrich
        let warm_repo = AnnotationRepository::new("uniprot", true, iq.clone());
        annotator(delay_us).annotate(&dataset, &warm_repo).expect("one-off population");
        group.bench_with_input(BenchmarkId::new("persistent", delay_us), &delay_us, |b, _| {
            b.iter(|| black_box(warm_repo.enrich(&item_terms, &evidence).expect("enrich")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(15);
    targets = bench_cold_vs_warm
}
criterion_main!(benches);
