//! E3 — annotation-store lookup performance (paper §5: "the use of SPARQL
//! makes it simple to swap the underlying storage mechanism … should
//! performance become a concern").
//!
//! Measures the `(data item, evidence type)` enrichment lookup against
//! repository size, comparing the paper-faithful SPARQL path with the
//! direct index walk, plus a full-store SPARQL scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qurator_annotations::AnnotationRepository;
use qurator_ontology::IqModel;
use qurator_rdf::namespace::q;
use qurator_rdf::term::Term;
use std::hint::black_box;
use std::sync::Arc;

fn item(n: usize) -> Term {
    Term::iri(format!("urn:lsid:bench:hit:{n}"))
}

fn populated_repo(items: usize) -> AnnotationRepository {
    let iq = Arc::new(IqModel::with_proteomics_extension().expect("iq"));
    let repo = AnnotationRepository::new("bench", true, iq);
    for index in 0..items {
        repo.annotate(&item(index), &q::iri("HitRatio"), (index as f64 * 1e-4).into())
            .expect("evidence");
        repo.annotate(&item(index), &q::iri("MassCoverage"), (index as f64 * 1e-2).into())
            .expect("evidence");
    }
    repo
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("enrichment_lookup");
    for &items in &[100usize, 1_000, 10_000] {
        let repo = populated_repo(items);
        let probe = item(items / 2);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("sparql", items), &items, |b, _| {
            b.iter(|| {
                black_box(
                    repo.lookup_sparql(black_box(&probe), &q::iri("HitRatio")).expect("lookup"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("direct", items), &items, |b, _| {
            b.iter(|| black_box(repo.lookup_direct(black_box(&probe), &q::iri("HitRatio"))))
        });
    }
    group.finish();
}

fn bench_bulk_enrich(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_enrich");
    group.sample_size(20);
    for &items in &[100usize, 1_000] {
        let types = [q::iri("HitRatio"), q::iri("MassCoverage")];
        let all: Vec<Term> = (0..items).map(item).collect();
        let sparql = populated_repo(items);
        group.throughput(Throughput::Elements(items as u64));
        group.bench_with_input(BenchmarkId::new("sparql", items), &items, |b, _| {
            b.iter(|| black_box(sparql.enrich(&all, &types).expect("enrich")))
        });
        let direct = populated_repo(items)
            .with_lookup_mode(qurator_annotations::repository::LookupMode::Direct);
        group.bench_with_input(BenchmarkId::new("direct", items), &items, |b, _| {
            b.iter(|| black_box(direct.enrich(&all, &types).expect("enrich")))
        });
    }
    group.finish();
}

fn bench_full_scan(c: &mut Criterion) {
    let repo = populated_repo(5_000);
    let mut group = c.benchmark_group("store_scan");
    group.sample_size(20);
    group.bench_function("sparql_all_hitratio_values", |b| {
        b.iter(|| {
            black_box(
                repo.query(
                    "PREFIX q: <http://qurator.org/iq#> \
                     SELECT ?s ?v WHERE { ?s q:contains-evidence ?e . ?e a q:HitRatio ; q:value ?v . }",
                )
                .expect("query"),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(15);
    targets = bench_lookup, bench_bulk_enrich, bench_full_scan
}
criterion_main!(benches);
