//! Triples and triple patterns.

use crate::term::Term;
use std::fmt;

/// An RDF triple (statement). Subjects may be IRIs or blank nodes;
/// predicates must be IRIs; objects may be any term. These constraints are
/// enforced by [`Triple::new`] with debug assertions (the store also
/// revalidates on insert).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    /// Creates a triple. Panics in debug builds if `subject` is a literal or
    /// `predicate` is not an IRI.
    pub fn new(
        subject: impl Into<Term>,
        predicate: impl Into<Term>,
        object: impl Into<Term>,
    ) -> Self {
        let t =
            Triple { subject: subject.into(), predicate: predicate.into(), object: object.into() };
        debug_assert!(t.subject.is_resource(), "triple subject must be a resource");
        debug_assert!(t.predicate.as_iri().is_some(), "triple predicate must be an IRI");
        t
    }

    /// True if the triple is well-formed per the RDF abstract syntax.
    pub fn is_well_formed(&self) -> bool {
        self.subject.is_resource() && self.predicate.as_iri().is_some()
    }
}

impl fmt::Debug for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One position of a triple pattern: either a concrete term or a wildcard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternTerm {
    Any,
    Is(Term),
}

impl PatternTerm {
    /// Does this pattern position accept the given term?
    pub fn matches(&self, term: &Term) -> bool {
        match self {
            PatternTerm::Any => true,
            PatternTerm::Is(t) => t == term,
        }
    }

    /// The concrete term, if bound.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            PatternTerm::Any => None,
            PatternTerm::Is(t) => Some(t),
        }
    }
}

impl From<Term> for PatternTerm {
    fn from(t: Term) -> Self {
        PatternTerm::Is(t)
    }
}

impl From<Option<Term>> for PatternTerm {
    fn from(t: Option<Term>) -> Self {
        match t {
            Some(t) => PatternTerm::Is(t),
            None => PatternTerm::Any,
        }
    }
}

/// A `(s?, p?, o?)` lookup pattern for [`crate::store::GraphStore::matching`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriplePattern {
    pub subject: PatternTerm,
    pub predicate: PatternTerm,
    pub object: PatternTerm,
}

impl TriplePattern {
    /// A fully wildcard pattern.
    pub fn any() -> Self {
        TriplePattern {
            subject: PatternTerm::Any,
            predicate: PatternTerm::Any,
            object: PatternTerm::Any,
        }
    }

    /// Builds a pattern from optional concrete positions.
    pub fn new(
        subject: impl Into<PatternTerm>,
        predicate: impl Into<PatternTerm>,
        object: impl Into<PatternTerm>,
    ) -> Self {
        TriplePattern {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// Does the pattern match the triple?
    pub fn matches(&self, t: &Triple) -> bool {
        self.subject.matches(&t.subject)
            && self.predicate.matches(&t.predicate)
            && self.object.matches(&t.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn t() -> Triple {
        Triple::new(Term::iri("http://x/s"), Term::iri("http://x/p"), Term::string("o"))
    }

    #[test]
    fn well_formedness() {
        assert!(t().is_well_formed());
        let bad = Triple {
            subject: Term::string("lit"),
            predicate: Term::iri("http://x/p"),
            object: Term::string("o"),
        };
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn pattern_matching() {
        let triple = t();
        assert!(TriplePattern::any().matches(&triple));
        assert!(TriplePattern::new(Term::iri("http://x/s"), None, None).matches(&triple));
        assert!(!TriplePattern::new(Term::iri("http://x/other"), None, None).matches(&triple));
        assert!(TriplePattern::new(None, None, Term::string("o")).matches(&triple));
        assert!(!TriplePattern::new(None, None, Term::string("nope")).matches(&triple));
    }

    #[test]
    fn display_ntriples_like() {
        assert_eq!(t().to_string(), "<http://x/s> <http://x/p> \"o\" .");
    }
}
