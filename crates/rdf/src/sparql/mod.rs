//! A SPARQL-subset query engine.
//!
//! The paper (§5) retrieves quality annotations through SPARQL SELECT
//! queries keyed on `(data item, evidence type)`. This engine supports the
//! fragment those queries live in, plus enough headroom for ad-hoc
//! exploration:
//!
//! * `PREFIX` declarations;
//! * `SELECT [DISTINCT] ?v … | *` and `ASK`;
//! * basic graph patterns with the `a` keyword and `;`/`,` abbreviations;
//! * `FILTER` with comparisons, boolean connectives, arithmetic and the
//!   `BOUND`, `STR`, `DATATYPE`, `ISIRI`, `ISLITERAL`, `REGEX` builtins;
//! * `OPTIONAL { … }` (left join);
//! * `ORDER BY [ASC|DESC](expr) …`, `LIMIT`, `OFFSET`;
//! * [`PreparedQuery`]: parse once, bind variables to terms per execution
//!   (the repository lookup path — immune to IRI injection by construction).
//!
//! ```
//! use qurator_rdf::{sparql, turtle};
//!
//! let store = turtle::parse_into_store(r#"
//!     @prefix q: <http://qurator.org/iq#> .
//!     <urn:lsid:a:b:P1> q:contains-evidence _:e .
//!     _:e a q:HitRatio ; q:value 0.9 .
//! "#).unwrap();
//! let rows = sparql::select(&store, r#"
//!     PREFIX q: <http://qurator.org/iq#>
//!     SELECT ?v WHERE {
//!         <urn:lsid:a:b:P1> q:contains-evidence ?e .
//!         ?e a q:HitRatio ; q:value ?v .
//!     }
//! "#).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub mod ast;
pub mod eval;
pub mod parser;
pub mod prepared;

pub use ast::{Expr, Query, QueryTerm, SelectProjection, TriplePatternQ};
pub use eval::{Bindings, Row};
pub use prepared::PreparedQuery;

use crate::storage::Storage;
use crate::Result;

/// Parses a query string.
pub fn parse(query: &str) -> Result<Query> {
    parser::Parser::new(query).parse_query()
}

/// Parses and evaluates a SELECT query; returns the projected rows.
pub fn select<S: Storage + ?Sized>(store: &S, query: &str) -> Result<Vec<Row>> {
    let q = parse(query)?;
    eval::evaluate_select(store, &q)
}

/// Parses and evaluates an ASK query.
pub fn ask<S: Storage + ?Sized>(store: &S, query: &str) -> Result<bool> {
    let q = parse(query)?;
    eval::evaluate_ask(store, &q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::GraphStore;
    use crate::term::Term;
    use crate::turtle;

    fn fixture() -> GraphStore {
        turtle::parse_into_store(
            r#"
            @prefix q: <http://qurator.org/iq#> .
            @prefix d: <urn:lsid:pedro.man.ac.uk:hit:> .
            d:H1 a q:ImprintHitEntry ; q:hitRatio 0.9 ; q:massCoverage 40 ; q:label "top" .
            d:H2 a q:ImprintHitEntry ; q:hitRatio 0.5 ; q:massCoverage 25 .
            d:H3 a q:ImprintHitEntry ; q:hitRatio 0.2 ; q:massCoverage 10 ; q:label "weak" .
            d:X1 a q:DataEntity ; q:hitRatio 0.99 .
        "#,
        )
        .unwrap()
    }

    #[test]
    fn select_by_type_and_project() {
        let rows = select(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT ?s ?hr WHERE { ?s a q:ImprintHitEntry ; q:hitRatio ?hr . }"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.get("s").is_some() && r.get("hr").is_some()));
    }

    #[test]
    fn filter_comparison() {
        let rows = select(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT ?s WHERE {
                   ?s a q:ImprintHitEntry ; q:hitRatio ?hr .
                   FILTER (?hr >= 0.5)
               }"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn filter_boolean_connectives_and_arithmetic() {
        let rows = select(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT ?s WHERE {
                   ?s q:hitRatio ?hr ; q:massCoverage ?mc .
                   FILTER (?hr > 0.4 && ?mc + 10 > 30 || !(?hr < 1.0))
               }"#,
        )
        .unwrap();
        // H1 (0.9, 40): true. H2 (0.5, 25): 35 > 30 true. H3: false.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn optional_left_join() {
        let rows = select(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT ?s ?l WHERE {
                   ?s a q:ImprintHitEntry .
                   OPTIONAL { ?s q:label ?l . }
               }"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        let labelled = rows.iter().filter(|r| r.get("l").is_some()).count();
        assert_eq!(labelled, 2);
    }

    #[test]
    fn order_by_desc_limit_offset() {
        let rows = select(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT ?s ?hr WHERE { ?s a q:ImprintHitEntry ; q:hitRatio ?hr . }
               ORDER BY DESC(?hr) LIMIT 2 OFFSET 1"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        let hr0 = rows[0].get("hr").unwrap().as_literal().unwrap().as_f64().unwrap();
        let hr1 = rows[1].get("hr").unwrap().as_literal().unwrap().as_f64().unwrap();
        assert_eq!((hr0, hr1), (0.5, 0.2));
    }

    #[test]
    fn select_star_and_distinct() {
        let rows = select(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT DISTINCT ?t WHERE { ?s a ?t . }"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 2); // ImprintHitEntry, DataEntity

        let rows = select(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT * WHERE { ?s q:label ?l . }"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].get("s").is_some() && rows[0].get("l").is_some());
    }

    #[test]
    fn ask_queries() {
        assert!(ask(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#> ASK { ?s q:hitRatio ?hr . FILTER(?hr > 0.95) }"#
        )
        .unwrap());
        assert!(!ask(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#> ASK { ?s q:hitRatio ?hr . FILTER(?hr > 2.0) }"#
        )
        .unwrap());
    }

    #[test]
    fn builtins() {
        let rows = select(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT ?s WHERE {
                   ?s a q:ImprintHitEntry .
                   OPTIONAL { ?s q:label ?l . }
                   FILTER (!BOUND(?l))
               }"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("s").unwrap(), &Term::iri("urn:lsid:pedro.man.ac.uk:hit:H2"));

        let rows = select(
            &fixture(),
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT ?s WHERE { ?s q:label ?l . FILTER REGEX(?l, "^to") }"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn the_paper_enrichment_query_shape() {
        // The canonical (data, evidence type) lookup the Data Enrichment
        // operator performs against an annotation repository.
        let store = turtle::parse_into_store(
            r#"
            @prefix q: <http://qurator.org/iq#> .
            <urn:lsid:uniprot.org:uniprot:P30089>
                q:contains-evidence _:e1 , _:e2 .
            _:e1 a q:HitRatio ; q:value 0.82 .
            _:e2 a q:MassCoverage ; q:value 31 .
        "#,
        )
        .unwrap();
        let rows = select(
            &store,
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT ?v WHERE {
                   <urn:lsid:uniprot.org:uniprot:P30089> q:contains-evidence ?e .
                   ?e a q:MassCoverage ; q:value ?v .
               }"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("v").unwrap(), &Term::integer(31));
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse("SELECT WHERE").is_err());
        assert!(parse("SELECT ?x WHERE { ?x }").is_err());
        assert!(parse("PREFIX q: <http://x> SELECT ?x WHERE { ?x nope:p ?y }").is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::ast::{GroupPattern, QueryTerm, TriplePatternQ};
    use super::*;
    use crate::store::GraphStore;
    use crate::term::Term;
    use crate::triple::Triple;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn term_pool(n: u8) -> Vec<Term> {
        (0..n).map(|i| Term::iri(format!("http://t/{i}"))).collect()
    }

    /// Naive reference: enumerate every assignment of pattern variables to
    /// store terms and keep those where all triples are present.
    fn naive_bgp(store: &GraphStore, patterns: &[TriplePatternQ]) -> Vec<Bindings> {
        let mut vars: Vec<String> = Vec::new();
        for p in patterns {
            for v in p.variables() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        }
        let universe: Vec<Term> = {
            let mut seen = Vec::new();
            for t in store.iter() {
                for term in [t.subject, t.predicate, t.object] {
                    if !seen.contains(&term) {
                        seen.push(term);
                    }
                }
            }
            seen
        };
        let mut solutions = Vec::new();
        let mut assignment: BTreeMap<String, Term> = BTreeMap::new();
        fn recurse(
            vars: &[String],
            universe: &[Term],
            patterns: &[TriplePatternQ],
            store: &GraphStore,
            assignment: &mut BTreeMap<String, Term>,
            out: &mut Vec<Bindings>,
        ) {
            if let Some((var, rest)) = vars.split_first() {
                for candidate in universe {
                    assignment.insert(var.clone(), candidate.clone());
                    recurse(rest, universe, patterns, store, assignment, out);
                }
                assignment.remove(var);
                return;
            }
            let resolve = |qt: &QueryTerm| match qt {
                QueryTerm::Term(t) => t.clone(),
                QueryTerm::Var(v) => assignment[v].clone(),
            };
            let ok = patterns.iter().all(|p| {
                let s = resolve(&p.subject);
                let pr = resolve(&p.predicate);
                let o = resolve(&p.object);
                s.is_resource() && pr.as_iri().is_some() && store.contains(&Triple::new(s, pr, o))
            });
            if ok {
                out.push(assignment.clone());
            }
        }
        recurse(&vars, &universe, patterns, store, &mut assignment, &mut solutions);
        solutions.sort_by_key(|b| format!("{b:?}"));
        solutions.dedup();
        solutions
    }

    fn arb_store() -> impl Strategy<Value = GraphStore> {
        proptest::collection::vec((0u8..5, 0u8..3, 0u8..5), 1..15).prop_map(|triples| {
            let pool = term_pool(5);
            triples
                .into_iter()
                .map(|(s, p, o)| {
                    Triple::new(
                        pool[s as usize].clone(),
                        Term::iri(format!("http://p/{p}")),
                        pool[o as usize].clone(),
                    )
                })
                .collect()
        })
    }

    fn arb_pattern() -> impl Strategy<Value = TriplePatternQ> {
        let pos = prop_oneof![
            (0u8..5).prop_map(|i| QueryTerm::Term(Term::iri(format!("http://t/{i}")))),
            (0u8..3).prop_map(|i| QueryTerm::Var(format!("v{i}"))),
        ];
        let pred = prop_oneof![
            (0u8..3).prop_map(|i| QueryTerm::Term(Term::iri(format!("http://p/{i}")))),
            (0u8..3).prop_map(|i| QueryTerm::Var(format!("p{i}"))),
        ];
        (pos.clone(), pred, pos).prop_map(|(subject, predicate, object)| TriplePatternQ {
            subject,
            predicate,
            object,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The join engine agrees with brute-force enumeration on random
        /// BGPs over random small graphs.
        #[test]
        fn bgp_matches_naive(store in arb_store(), patterns in proptest::collection::vec(arb_pattern(), 1..4)) {
            let group = GroupPattern { triples: patterns.clone(), ..Default::default() };
            let query = Query::Select {
                distinct: true,
                projection: SelectProjection::Star,
                pattern: group,
                order: vec![],
                limit: None,
                offset: 0,
            };
            let mut engine: Vec<String> = eval::evaluate_select(&store, &query)
                .unwrap()
                .into_iter()
                .map(|r| format!("{:?}", r.iter().map(|(k, v)| (k.to_string(), v.clone())).collect::<Vec<_>>()))
                .collect();
            engine.sort();
            engine.dedup();
            let mut naive: Vec<String> = naive_bgp(&store, &patterns)
                .into_iter()
                .map(|b| format!("{:?}", b.into_iter().collect::<Vec<_>>()))
                .collect();
            naive.sort();
            naive.dedup();
            prop_assert_eq!(engine, naive);
        }
    }
}
