//! Evaluation of the SPARQL subset over any [`Storage`] backend.
//!
//! Basic graph patterns are solved by backtracking joins; at each step the
//! evaluator picks the remaining pattern with the most bound positions under
//! the current partial solution, so the `(data, evidence type)` lookups the
//! Data-Enrichment operator issues are answered with index range scans
//! rather than full scans.

use super::ast::*;
use crate::storage::Storage;
use crate::term::Term;
use crate::triple::TriplePattern;
use crate::{RdfError, Result};
use qurator_telemetry::{Counter, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

fn select_count() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        qurator_telemetry::metrics().counter_with("sparql.query.count", &[("kind", "select")])
    })
}

fn ask_count() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        qurator_telemetry::metrics().counter_with("sparql.query.count", &[("kind", "ask")])
    })
}

fn query_latency() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("sparql.query.latency_ns"))
}

fn result_rows() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("sparql.result.rows"))
}

/// A solution mapping from variable names to terms.
pub type Bindings = BTreeMap<String, Term>;

/// One projected result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    values: Bindings,
}

impl Row {
    /// The binding for `var`, if present.
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.values.get(var)
    }

    /// All `(variable, term)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bound variables in the row.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Evaluates a SELECT query.
pub fn evaluate_select<S: Storage + ?Sized>(store: &S, query: &Query) -> Result<Vec<Row>> {
    evaluate_select_with(store, query, Bindings::new())
}

/// Evaluates a SELECT query under seeded initial bindings.
///
/// This is the execution path of prepared queries: parameters arrive as
/// ordinary solution bindings, so they join against the store exactly like
/// pattern-derived bindings and never pass through the parser.
pub fn evaluate_select_with<S: Storage + ?Sized>(
    store: &S,
    query: &Query,
    initial: Bindings,
) -> Result<Vec<Row>> {
    let started = Instant::now();
    let Query::Select { distinct, projection, pattern, order, limit, offset } = query else {
        return Err(RdfError::SparqlEval("expected a SELECT query".into()));
    };
    let mut solutions = solve_group(store, pattern, initial)?;

    // ORDER BY before projection so sort keys may use unprojected vars.
    if !order.is_empty() {
        let mut keyed: Vec<(Vec<Option<Value>>, Bindings)> = solutions
            .into_iter()
            .map(|b| {
                let keys = order.iter().map(|k| eval_expr(&k.expr, &b).ok()).collect::<Vec<_>>();
                (keys, b)
            })
            .collect();
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, key) in order.iter().enumerate() {
                let ord = compare_values(ka[i].as_ref(), kb[i].as_ref());
                let ord = if key.ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        solutions = keyed.into_iter().map(|(_, b)| b).collect();
    }

    let mut rows: Vec<Row> = solutions
        .into_iter()
        .map(|b| {
            let values = match projection {
                SelectProjection::Star => b,
                SelectProjection::Vars(vars) => {
                    vars.iter().filter_map(|v| b.get(v).map(|t| (v.clone(), t.clone()))).collect()
                }
            };
            Row { values }
        })
        .collect();

    if *distinct {
        let mut seen: Vec<Bindings> = Vec::new();
        rows.retain(|r| {
            if seen.contains(&r.values) {
                false
            } else {
                seen.push(r.values.clone());
                true
            }
        });
    }

    let rows: Vec<Row> = rows.into_iter().skip(*offset).take(limit.unwrap_or(usize::MAX)).collect();
    select_count().inc();
    result_rows().record(rows.len() as u64);
    query_latency().record(started.elapsed().as_nanos() as u64);
    Ok(rows)
}

/// Evaluates an ASK query.
pub fn evaluate_ask<S: Storage + ?Sized>(store: &S, query: &Query) -> Result<bool> {
    evaluate_ask_with(store, query, Bindings::new())
}

/// Evaluates an ASK query under seeded initial bindings.
pub fn evaluate_ask_with<S: Storage + ?Sized>(
    store: &S,
    query: &Query,
    initial: Bindings,
) -> Result<bool> {
    let started = Instant::now();
    let Query::Ask { pattern } = query else {
        return Err(RdfError::SparqlEval("expected an ASK query".into()));
    };
    let answer = !solve_group(store, pattern, initial)?.is_empty();
    ask_count().inc();
    query_latency().record(started.elapsed().as_nanos() as u64);
    Ok(answer)
}

/// Solves a group pattern under an initial binding, returning all solutions.
fn solve_group<S: Storage + ?Sized>(
    store: &S,
    group: &GroupPattern,
    initial: Bindings,
) -> Result<Vec<Bindings>> {
    let mut solutions = vec![initial];
    let mut remaining: Vec<&TriplePatternQ> = group.triples.iter().collect();

    // Join loop: repeatedly pick the most selective pattern and extend.
    while !remaining.is_empty() {
        let mut next_solutions = Vec::new();
        // Selectivity heuristic uses the first current solution as a proxy
        // (all solutions in a round share the same bound-variable set).
        let proxy = solutions.first().cloned().unwrap_or_default();
        let mut best_index = 0;
        let mut best_score = -1i32;
        for (index, p) in remaining.iter().enumerate() {
            let score = selectivity(p, &proxy);
            if score > best_score {
                best_score = score;
                best_index = index;
            }
        }
        let pattern = remaining.remove(best_index);
        for sol in &solutions {
            extend_with_pattern(store, pattern, sol, &mut next_solutions);
        }
        solutions = next_solutions;
        if solutions.is_empty() {
            return Ok(solutions);
        }
    }

    // OPTIONAL: left join each optional group.
    for opt in &group.optionals {
        let mut joined = Vec::new();
        for sol in solutions {
            let extensions = solve_group(store, opt, sol.clone())?;
            if extensions.is_empty() {
                joined.push(sol);
            } else {
                joined.extend(extensions);
            }
        }
        solutions = joined;
    }

    // FILTERs (applied last so they may reference OPTIONAL bindings).
    for filter in &group.filters {
        solutions.retain(|sol| {
            eval_expr(filter, sol).ok().and_then(|v| v.effective_bool()).unwrap_or(false)
        });
    }
    Ok(solutions)
}

/// Join-order score: more bound positions are better, and a bound
/// *subject* dominates (subject lookups hit the SPO index with a short
/// range), followed by object, then predicate — `?x rdf:type C`-style
/// predicate+object patterns enumerate whole classes and must lose
/// ties against subject-bound patterns. Earliest pattern wins exact ties.
fn selectivity(p: &TriplePatternQ, bindings: &Bindings) -> i32 {
    let bound = |qt: &QueryTerm| match qt {
        QueryTerm::Term(_) => true,
        QueryTerm::Var(v) => bindings.contains_key(v),
    };
    let mut score = 0;
    if bound(&p.subject) {
        score += 8;
    }
    if bound(&p.object) {
        score += 4;
    }
    if bound(&p.predicate) {
        score += 1;
    }
    score
}

fn extend_with_pattern<S: Storage + ?Sized>(
    store: &S,
    pattern: &TriplePatternQ,
    sol: &Bindings,
    out: &mut Vec<Bindings>,
) {
    let resolve = |qt: &QueryTerm| -> Option<Term> {
        match qt {
            QueryTerm::Term(t) => Some(t.clone()),
            QueryTerm::Var(v) => sol.get(v).cloned(),
        }
    };
    let store_pattern = TriplePattern::new(
        resolve(&pattern.subject),
        resolve(&pattern.predicate),
        resolve(&pattern.object),
    );
    'triples: for triple in store.matching(&store_pattern) {
        let mut extended = sol.clone();
        for (qt, term) in [
            (&pattern.subject, &triple.subject),
            (&pattern.predicate, &triple.predicate),
            (&pattern.object, &triple.object),
        ] {
            if let QueryTerm::Var(v) = qt {
                match extended.get(v) {
                    Some(existing) if existing != term => continue 'triples,
                    Some(_) => {}
                    None => {
                        extended.insert(v.clone(), term.clone());
                    }
                }
            }
        }
        out.push(extended);
    }
}

/// Runtime values inside FILTER expressions.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Term(Term),
    Number(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    fn effective_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Number(n) => Some(*n != 0.0),
            Value::Str(s) => Some(!s.is_empty()),
            Value::Term(Term::Literal(l)) => {
                if let Some(b) = l.as_bool() {
                    Some(b)
                } else if let Some(n) = l.as_f64() {
                    Some(n != 0.0)
                } else {
                    Some(!l.lexical().is_empty())
                }
            }
            Value::Term(_) => None,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Term(Term::Literal(l)) => l.as_f64(),
            Value::Bool(_) | Value::Str(_) | Value::Term(_) => None,
        }
    }

    fn as_string(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Term(Term::Literal(l)) => Some(l.lexical()),
            _ => None,
        }
    }
}

fn compare_values(a: Option<&Value>, b: Option<&Value>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less, // unbound sorts first, per SPARQL
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => {
            if let (Some(nx), Some(ny)) = (x.as_number(), y.as_number()) {
                nx.partial_cmp(&ny).unwrap_or(Ordering::Equal)
            } else if let (Some(sx), Some(sy)) = (x.as_string(), y.as_string()) {
                sx.cmp(sy)
            } else {
                format!("{x:?}").cmp(&format!("{y:?}"))
            }
        }
    }
}

pub(crate) fn eval_expr(expr: &Expr, bindings: &Bindings) -> Result<Value> {
    let err = |m: &str| RdfError::SparqlEval(m.to_string());
    match expr {
        Expr::Var(v) => bindings
            .get(v)
            .cloned()
            .map(Value::Term)
            .ok_or_else(|| err(&format!("unbound variable ?{v}"))),
        Expr::Const(t) => Ok(Value::Term(t.clone())),
        Expr::Not(inner) => {
            let v = eval_expr(inner, bindings)?;
            let b = v.effective_bool().ok_or_else(|| err("! needs a boolean"))?;
            Ok(Value::Bool(!b))
        }
        Expr::And(a, b) => {
            let va =
                eval_expr(a, bindings)?.effective_bool().ok_or_else(|| err("&& needs booleans"))?;
            if !va {
                return Ok(Value::Bool(false));
            }
            let vb =
                eval_expr(b, bindings)?.effective_bool().ok_or_else(|| err("&& needs booleans"))?;
            Ok(Value::Bool(vb))
        }
        Expr::Or(a, b) => {
            let va = eval_expr(a, bindings).ok().and_then(|v| v.effective_bool()).unwrap_or(false);
            if va {
                return Ok(Value::Bool(true));
            }
            let vb = eval_expr(b, bindings).ok().and_then(|v| v.effective_bool()).unwrap_or(false);
            Ok(Value::Bool(vb))
        }
        Expr::Arith(op, a, b) => {
            let x = eval_expr(a, bindings)?
                .as_number()
                .ok_or_else(|| err("arithmetic needs numbers"))?;
            let y = eval_expr(b, bindings)?
                .as_number()
                .ok_or_else(|| err("arithmetic needs numbers"))?;
            let r = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => {
                    if y == 0.0 {
                        return Err(err("division by zero"));
                    }
                    x / y
                }
            };
            Ok(Value::Number(r))
        }
        Expr::Cmp(op, a, b) => {
            let va = eval_expr(a, bindings)?;
            let vb = eval_expr(b, bindings)?;
            let result = compare_terms(op, &va, &vb)?;
            Ok(Value::Bool(result))
        }
        Expr::Call(builtin, args) => eval_builtin(*builtin, args, bindings),
    }
}

fn compare_terms(op: &CmpOp, a: &Value, b: &Value) -> Result<bool> {
    use std::cmp::Ordering;
    let err = || RdfError::SparqlEval("incomparable operands".to_string());

    // Numeric comparison dominates.
    let ord = if let (Some(x), Some(y)) = (a.as_number(), b.as_number()) {
        x.partial_cmp(&y).ok_or_else(err)?
    } else if let (Value::Term(ta), Value::Term(tb)) = (a, b) {
        match (ta, tb) {
            (Term::Literal(la), Term::Literal(lb)) => match op {
                CmpOp::Eq => return Ok(la.value_eq(lb)),
                CmpOp::Ne => return Ok(!la.value_eq(lb)),
                _ => la.value_cmp(lb).ok_or_else(err)?,
            },
            _ => match op {
                CmpOp::Eq => return Ok(ta == tb),
                CmpOp::Ne => return Ok(ta != tb),
                _ => return Err(err()),
            },
        }
    } else if let (Some(sa), Some(sb)) = (a.as_string(), b.as_string()) {
        sa.cmp(sb)
    } else if let (Value::Bool(x), Value::Bool(y)) = (a, b) {
        x.cmp(y)
    } else {
        return Err(err());
    };
    Ok(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

fn eval_builtin(builtin: Builtin, args: &[Expr], bindings: &Bindings) -> Result<Value> {
    let err = |m: String| RdfError::SparqlEval(m);
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(format!("{builtin:?} expects {n} argument(s)")))
        }
    };
    match builtin {
        Builtin::Bound => {
            arity(1)?;
            match &args[0] {
                Expr::Var(v) => Ok(Value::Bool(bindings.contains_key(v))),
                _ => Err(err("BOUND expects a variable".into())),
            }
        }
        Builtin::Str => {
            arity(1)?;
            let v = eval_expr(&args[0], bindings)?;
            let s = match v {
                Value::Term(Term::Iri(i)) => i.as_str().to_string(),
                Value::Term(Term::Literal(l)) => l.lexical().to_string(),
                Value::Term(Term::Blank(b)) => b.label().to_string(),
                Value::Str(s) => s,
                Value::Number(n) => n.to_string(),
                Value::Bool(b) => b.to_string(),
            };
            Ok(Value::Str(s))
        }
        Builtin::Datatype => {
            arity(1)?;
            match eval_expr(&args[0], bindings)? {
                Value::Term(Term::Literal(l)) => Ok(Value::Term(Term::Iri(l.datatype().clone()))),
                _ => Err(err("DATATYPE expects a literal".into())),
            }
        }
        Builtin::IsIri => {
            arity(1)?;
            let v = eval_expr(&args[0], bindings)?;
            Ok(Value::Bool(matches!(v, Value::Term(Term::Iri(_)))))
        }
        Builtin::IsLiteral => {
            arity(1)?;
            let v = eval_expr(&args[0], bindings)?;
            Ok(Value::Bool(matches!(v, Value::Term(Term::Literal(_)))))
        }
        Builtin::Regex => {
            arity(2)?;
            let text = eval_expr(&args[0], bindings)?;
            let text = text
                .as_string()
                .ok_or_else(|| err("REGEX expects a string subject".into()))?
                .to_string();
            let pattern = eval_expr(&args[1], bindings)?;
            let pattern = pattern
                .as_string()
                .ok_or_else(|| err("REGEX expects a string pattern".into()))?
                .to_string();
            Ok(Value::Bool(simple_regex_match(&pattern, &text)))
        }
    }
}

/// A deliberately small regex dialect: `^` anchor, `$` anchor, `.` wildcard,
/// `*` on the previous single char/wildcard, everything else literal. This
/// covers the prefix/suffix/substring tests quality conditions use.
pub(crate) fn simple_regex_match(pattern: &str, text: &str) -> bool {
    let anchored_start = pattern.starts_with('^');
    let anchored_end = pattern.ends_with('$') && !pattern.ends_with("\\$");
    let mut core_str = pattern.strip_prefix('^').unwrap_or(pattern);
    if anchored_end {
        core_str = core_str.strip_suffix('$').unwrap_or(core_str);
    }
    // an escaped \$ is a literal dollar sign
    let core: Vec<char> = core_str.replace("\\$", "$").chars().collect();
    let text: Vec<char> = text.chars().collect();

    fn match_here(pat: &[char], text: &[char]) -> bool {
        if pat.is_empty() {
            return true;
        }
        if pat.len() >= 2 && pat[1] == '*' {
            // zero or more of pat[0]
            let mut i = 0;
            loop {
                if match_here(&pat[2..], &text[i..]) {
                    return true;
                }
                if i < text.len() && (pat[0] == '.' || text[i] == pat[0]) {
                    i += 1;
                } else {
                    return false;
                }
            }
        }
        if text.is_empty() {
            return false;
        }
        if pat[0] == '.' || pat[0] == text[0] {
            match_here(&pat[1..], &text[1..])
        } else {
            false
        }
    }

    let starts: Box<dyn Iterator<Item = usize>> =
        if anchored_start { Box::new(std::iter::once(0)) } else { Box::new(0..=text.len()) };
    for start in starts {
        if start > text.len() {
            break;
        }
        let rest = &text[start..];
        if anchored_end {
            // must consume all of rest
            fn match_all(pat: &[char], text: &[char]) -> bool {
                if pat.is_empty() {
                    return text.is_empty();
                }
                if pat.len() >= 2 && pat[1] == '*' {
                    let mut i = 0;
                    loop {
                        if match_all(&pat[2..], &text[i..]) {
                            return true;
                        }
                        if i < text.len() && (pat[0] == '.' || text[i] == pat[0]) {
                            i += 1;
                        } else {
                            return false;
                        }
                    }
                }
                if text.is_empty() {
                    return false;
                }
                if pat[0] == '.' || pat[0] == text[0] {
                    match_all(&pat[1..], &text[1..])
                } else {
                    false
                }
            }
            if match_all(&core, rest) {
                return true;
            }
        } else if match_here(&core, rest) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_regex() {
        assert!(simple_regex_match("^to", "top"));
        assert!(!simple_regex_match("^op", "top"));
        assert!(simple_regex_match("op$", "top"));
        assert!(simple_regex_match("o", "top"));
        assert!(simple_regex_match("t.p", "top"));
        assert!(simple_regex_match("^t.*p$", "tp"));
        assert!(simple_regex_match("^t.*p$", "tooooop"));
        assert!(!simple_regex_match("^t.*p$", "tops"));
        assert!(simple_regex_match("", "anything"));
    }

    #[test]
    fn expr_short_circuit_or_tolerates_errors() {
        // Per SPARQL semantics, an error in one OR branch is recoverable.
        let bindings = Bindings::new();
        let e = Expr::Or(
            Box::new(Expr::Var("missing".into())),
            Box::new(Expr::Const(Term::boolean(true))),
        );
        assert_eq!(eval_expr(&e, &bindings).unwrap(), Value::Bool(true));
    }

    #[test]
    fn and_short_circuits() {
        let bindings = Bindings::new();
        let e = Expr::And(
            Box::new(Expr::Const(Term::boolean(false))),
            Box::new(Expr::Var("missing".into())),
        );
        assert_eq!(eval_expr(&e, &bindings).unwrap(), Value::Bool(false));
    }

    #[test]
    fn numeric_comparison_crosses_datatypes() {
        let mut b = Bindings::new();
        b.insert("x".into(), Term::integer(2));
        let e = Expr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Const(Term::double(2.5))),
        );
        assert_eq!(eval_expr(&e, &b).unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Const(Term::integer(1))),
            Box::new(Expr::Const(Term::integer(0))),
        );
        assert!(eval_expr(&e, &Bindings::new()).is_err());
    }

    #[test]
    fn iri_equality() {
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Const(Term::iri("http://x/a"))),
            Box::new(Expr::Const(Term::iri("http://x/a"))),
        );
        assert_eq!(eval_expr(&e, &Bindings::new()).unwrap(), Value::Bool(true));
        let e = Expr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::Const(Term::iri("http://x/a"))),
            Box::new(Expr::Const(Term::iri("http://x/b"))),
        );
        assert!(eval_expr(&e, &Bindings::new()).is_err());
    }
}
