//! Abstract syntax for the SPARQL subset.

use crate::term::Term;

/// A term position inside a query triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryTerm {
    /// A variable, without the `?` sigil.
    Var(String),
    /// A concrete RDF term.
    Term(Term),
}

impl QueryTerm {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            QueryTerm::Var(v) => Some(v),
            QueryTerm::Term(_) => None,
        }
    }
}

/// A triple pattern whose positions may be variables.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePatternQ {
    pub subject: QueryTerm,
    pub predicate: QueryTerm,
    pub object: QueryTerm,
}

impl TriplePatternQ {
    /// All variable names mentioned by this pattern.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        [&self.subject, &self.predicate, &self.object].into_iter().filter_map(|qt| qt.as_var())
    }
}

/// Built-in functions available inside FILTER expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    Bound,
    Str,
    Datatype,
    IsIri,
    IsLiteral,
    Regex,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// A FILTER / ORDER BY expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Var(String),
    Const(Term),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Call(Builtin, Vec<Expr>),
}

/// One group graph pattern: a BGP plus filters and optional sub-groups.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    pub triples: Vec<TriplePatternQ>,
    pub filters: Vec<Expr>,
    pub optionals: Vec<GroupPattern>,
}

impl GroupPattern {
    /// All variables mentioned anywhere in the group (including optionals).
    pub fn variables(&self) -> Vec<String> {
        let mut vars: Vec<String> = Vec::new();
        let mut push = |v: &str| {
            if !vars.iter().any(|x| x == v) {
                vars.push(v.to_string());
            }
        };
        for t in &self.triples {
            for v in t.variables() {
                push(v);
            }
        }
        for opt in &self.optionals {
            for v in opt.variables() {
                push(&v);
            }
        }
        vars
    }
}

/// SELECT projection: explicit variables or `*`.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectProjection {
    Star,
    Vars(Vec<String>),
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub ascending: bool,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Select {
        distinct: bool,
        projection: SelectProjection,
        pattern: GroupPattern,
        order: Vec<OrderKey>,
        limit: Option<usize>,
        offset: usize,
    },
    Ask {
        pattern: GroupPattern,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_variable_listing() {
        let g = GroupPattern {
            triples: vec![TriplePatternQ {
                subject: QueryTerm::Var("s".into()),
                predicate: QueryTerm::Term(Term::iri("http://x/p")),
                object: QueryTerm::Var("o".into()),
            }],
            filters: vec![],
            optionals: vec![GroupPattern {
                triples: vec![TriplePatternQ {
                    subject: QueryTerm::Var("s".into()),
                    predicate: QueryTerm::Term(Term::iri("http://x/q")),
                    object: QueryTerm::Var("extra".into()),
                }],
                ..Default::default()
            }],
        };
        assert_eq!(g.variables(), vec!["s", "o", "extra"]);
    }
}
