//! Recursive-descent parser for the SPARQL subset.

use super::ast::*;
use crate::namespace::PrefixMap;
use crate::term::{Iri, Literal, Term};
use crate::{RdfError, Result};

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Keyword(String), // upper-cased bare word
    Var(String),
    IriRef(String),
    PName(String),
    A,
    Str(String),
    Num(String),
    Punct(char),      // { } ( ) . ; , *
    Op(&'static str), // = != < <= > >= && || ! + - / ^^ @
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::SparqlSyntax { pos: self.pos, message: message.into() }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek_byte() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'#' {
                while let Some(c) = self.peek_byte() {
                    self.pos += 1;
                    if c == b'\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize)> {
        self.skip_ws();
        let start = self.pos;
        let Some(c) = self.peek_byte() else {
            return Ok((Tok::Eof, start));
        };
        let tok = match c {
            b'{' | b'}' | b'(' | b')' | b'.' | b';' | b',' | b'*' => {
                self.pos += 1;
                Tok::Punct(c as char)
            }
            b'?' | b'$' => {
                self.pos += 1;
                let s = self.take_name();
                if s.is_empty() {
                    return Err(self.err("empty variable name"));
                }
                Tok::Var(s)
            }
            b'<' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Op("<=")
                } else if self.bytes.get(self.pos + 1).is_some_and(|&d| {
                    d.is_ascii_whitespace() || d == b'?' || d == b'-' || d.is_ascii_digit()
                }) {
                    self.pos += 1;
                    Tok::Op("<")
                } else {
                    // IRI ref
                    self.pos += 1;
                    let s = self.pos;
                    while let Some(d) = self.peek_byte() {
                        if d == b'>' {
                            let iri = self.src[s..self.pos].to_string();
                            self.pos += 1;
                            return Ok((Tok::IriRef(iri), start));
                        }
                        if d.is_ascii_whitespace() {
                            break;
                        }
                        self.pos += 1;
                    }
                    // Not a valid IRI ref: treat as `<` comparison.
                    self.pos = start + 1;
                    Tok::Op("<")
                }
            }
            b'>' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Op(">=")
                } else {
                    self.pos += 1;
                    Tok::Op(">")
                }
            }
            b'=' => {
                self.pos += 1;
                Tok::Op("=")
            }
            b'!' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Op("!=")
                } else {
                    self.pos += 1;
                    Tok::Op("!")
                }
            }
            b'&' => {
                if self.bytes.get(self.pos + 1) == Some(&b'&') {
                    self.pos += 2;
                    Tok::Op("&&")
                } else {
                    return Err(self.err("single '&'"));
                }
            }
            b'|' => {
                if self.bytes.get(self.pos + 1) == Some(&b'|') {
                    self.pos += 2;
                    Tok::Op("||")
                } else {
                    return Err(self.err("single '|'"));
                }
            }
            b'+' => {
                self.pos += 1;
                Tok::Op("+")
            }
            b'-' => {
                // Could start a negative number literal.
                if self.bytes.get(self.pos + 1).is_some_and(|d| d.is_ascii_digit()) {
                    self.pos += 1;
                    let num = self.take_number();
                    Tok::Num(format!("-{num}"))
                } else {
                    self.pos += 1;
                    Tok::Op("-")
                }
            }
            b'/' => {
                self.pos += 1;
                Tok::Op("/")
            }
            b'^' => {
                if self.bytes.get(self.pos + 1) == Some(&b'^') {
                    self.pos += 2;
                    Tok::Op("^^")
                } else {
                    return Err(self.err("single '^'"));
                }
            }
            b'@' => {
                self.pos += 1;
                Tok::Op("@")
            }
            b'"' => {
                self.pos += 1;
                let mut out = String::new();
                loop {
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => {
                            self.pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            self.pos += 1;
                            match self.bytes.get(self.pos).copied() {
                                Some(b'n') => out.push('\n'),
                                Some(b't') => out.push('\t'),
                                Some(b'r') => out.push('\r'),
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                _ => return Err(self.err("bad string escape")),
                            }
                            self.pos += 1;
                        }
                        Some(d) if d < 0x80 => {
                            out.push(d as char);
                            self.pos += 1;
                        }
                        Some(_) => {
                            let s = self.pos;
                            let mut e = self.pos + 1;
                            while e < self.bytes.len() && (self.bytes[e] & 0xC0) == 0x80 {
                                e += 1;
                            }
                            out.push_str(&self.src[s..e]);
                            self.pos = e;
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
                Tok::Str(out)
            }
            c if c.is_ascii_digit() => {
                let num = self.take_number();
                Tok::Num(num)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let word = self.take_pname();
                if word == "a" {
                    Tok::A
                } else if word.contains(':') {
                    Tok::PName(word)
                } else {
                    Tok::Keyword(word.to_ascii_uppercase())
                }
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok((tok, start))
    }

    fn take_name(&mut self) -> String {
        let s = self.pos;
        while let Some(c) = self.peek_byte() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.src[s..self.pos].to_string()
    }

    fn take_pname(&mut self) -> String {
        let s = self.pos;
        while let Some(c) = self.peek_byte() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b':' | b'.') {
                if c == b'.' {
                    let next = self.bytes.get(self.pos + 1).copied();
                    if next.is_none_or(|d| !(d.is_ascii_alphanumeric() || d == b'_')) {
                        break;
                    }
                }
                self.pos += 1;
            } else {
                break;
            }
        }
        self.src[s..self.pos].to_string()
    }

    fn take_number(&mut self) -> String {
        let s = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek_byte() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot && !saw_exp => {
                    if self.bytes.get(self.pos + 1).is_some_and(|d| d.is_ascii_digit()) {
                        saw_dot = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.peek_byte(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        self.src[s..self.pos].to_string()
    }
}

/// The parser over a token stream with one-token lookahead.
pub struct Parser<'a> {
    lexer: Lexer<'a>,
    current: Tok,
    current_pos: usize,
    prefixes: PrefixMap,
}

impl<'a> Parser<'a> {
    /// Creates a parser for the given query text.
    pub fn new(src: &'a str) -> Self {
        let mut lexer = Lexer::new(src);
        let (current, current_pos) = lexer.next_token().unwrap_or((Tok::Eof, 0));
        Parser { lexer, current, current_pos, prefixes: PrefixMap::new() }
    }

    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::SparqlSyntax { pos: self.current_pos, message: message.into() }
    }

    fn advance(&mut self) -> Result<Tok> {
        let (next, pos) = self.lexer.next_token()?;
        self.current_pos = pos;
        Ok(std::mem::replace(&mut self.current, next))
    }

    fn eat_punct(&mut self, c: char) -> Result<()> {
        if self.current == Tok::Punct(c) {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}, found {:?}", self.current)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if matches!(&self.current, Tok::Keyword(k) if k == kw) {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.current)))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.current, Tok::Keyword(k) if k == kw)
    }

    /// Entry point: parses one complete query.
    pub fn parse_query(&mut self) -> Result<Query> {
        while self.at_keyword("PREFIX") {
            self.advance()?;
            let Tok::PName(pname) = self.advance()? else {
                return Err(self.err("expected prefix declaration name"));
            };
            let prefix = pname.strip_suffix(':').unwrap_or(&pname).to_string();
            let Tok::IriRef(ns) = self.advance()? else {
                return Err(self.err("expected namespace IRI"));
            };
            self.prefixes.declare(prefix, ns);
        }
        if self.at_keyword("SELECT") {
            self.parse_select()
        } else if self.at_keyword("ASK") {
            self.advance()?;
            let pattern = self.parse_group()?;
            self.expect_eof()?;
            Ok(Query::Ask { pattern })
        } else {
            Err(self.err("expected SELECT or ASK"))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.current == Tok::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.current)))
        }
    }

    fn parse_select(&mut self) -> Result<Query> {
        self.eat_keyword("SELECT")?;
        let distinct = if self.at_keyword("DISTINCT") {
            self.advance()?;
            true
        } else {
            false
        };
        let projection = if self.current == Tok::Punct('*') {
            self.advance()?;
            SelectProjection::Star
        } else {
            let mut vars = Vec::new();
            while let Tok::Var(v) = &self.current {
                vars.push(v.clone());
                self.advance()?;
            }
            if vars.is_empty() {
                return Err(self.err("SELECT needs variables or *"));
            }
            SelectProjection::Vars(vars)
        };
        if self.at_keyword("WHERE") {
            self.advance()?;
        }
        let pattern = self.parse_group()?;

        let mut order = Vec::new();
        if self.at_keyword("ORDER") {
            self.advance()?;
            self.eat_keyword("BY")?;
            loop {
                let ascending = if self.at_keyword("DESC") {
                    self.advance()?;
                    false
                } else if self.at_keyword("ASC") {
                    self.advance()?;
                    true
                } else {
                    true
                };
                let expr = if self.current == Tok::Punct('(') {
                    self.advance()?;
                    let e = self.parse_expr()?;
                    self.eat_punct(')')?;
                    e
                } else if let Tok::Var(v) = &self.current {
                    let e = Expr::Var(v.clone());
                    self.advance()?;
                    e
                } else {
                    break;
                };
                order.push(OrderKey { expr, ascending });
            }
            if order.is_empty() {
                return Err(self.err("ORDER BY needs at least one key"));
            }
        }
        let mut limit = None;
        let mut offset = 0;
        loop {
            if self.at_keyword("LIMIT") {
                self.advance()?;
                limit = Some(self.parse_usize()?);
            } else if self.at_keyword("OFFSET") {
                self.advance()?;
                offset = self.parse_usize()?;
            } else {
                break;
            }
        }
        self.expect_eof()?;
        Ok(Query::Select { distinct, projection, pattern, order, limit, offset })
    }

    fn parse_usize(&mut self) -> Result<usize> {
        if let Tok::Num(n) = &self.current {
            let v = n.parse::<usize>().map_err(|_| self.err(format!("bad count {n:?}")))?;
            self.advance()?;
            Ok(v)
        } else {
            Err(self.err("expected a non-negative integer"))
        }
    }

    fn parse_group(&mut self) -> Result<GroupPattern> {
        self.eat_punct('{')?;
        let mut group = GroupPattern::default();
        loop {
            if self.current == Tok::Punct('}') {
                self.advance()?;
                return Ok(group);
            }
            if self.at_keyword("FILTER") {
                self.advance()?;
                // FILTER expr — expr may be parenthesised or a builtin call
                let expr = self.parse_expr()?;
                group.filters.push(expr);
                // optional trailing dot
                if self.current == Tok::Punct('.') {
                    self.advance()?;
                }
                continue;
            }
            if self.at_keyword("OPTIONAL") {
                self.advance()?;
                let sub = self.parse_group()?;
                group.optionals.push(sub);
                if self.current == Tok::Punct('.') {
                    self.advance()?;
                }
                continue;
            }
            // A triple block with ; and , abbreviations.
            let subject = self.parse_query_term()?;
            loop {
                let predicate = if self.current == Tok::A {
                    self.advance()?;
                    QueryTerm::Term(Term::iri(crate::namespace::rdf::TYPE))
                } else {
                    self.parse_query_term()?
                };
                loop {
                    let object = self.parse_query_term()?;
                    group.triples.push(TriplePatternQ {
                        subject: subject.clone(),
                        predicate: predicate.clone(),
                        object,
                    });
                    if self.current == Tok::Punct(',') {
                        self.advance()?;
                    } else {
                        break;
                    }
                }
                if self.current == Tok::Punct(';') {
                    self.advance()?;
                    // allow `;` directly before `.` or `}`
                    if self.current == Tok::Punct('.') || self.current == Tok::Punct('}') {
                        break;
                    }
                } else {
                    break;
                }
            }
            if self.current == Tok::Punct('.') {
                self.advance()?;
            }
        }
    }

    fn parse_query_term(&mut self) -> Result<QueryTerm> {
        match self.advance()? {
            Tok::Var(v) => Ok(QueryTerm::Var(v)),
            Tok::IriRef(iri) => Ok(QueryTerm::Term(Term::Iri(
                Iri::try_new(&iri).map_err(|_| self.err("invalid IRI"))?,
            ))),
            Tok::PName(p) => {
                let iri = self.prefixes.expand(&p).map_err(|e| self.err(e.to_string()))?;
                Ok(QueryTerm::Term(Term::Iri(iri)))
            }
            Tok::Str(s) => {
                // datatype or language suffix
                if self.current == Tok::Op("^^") {
                    self.advance()?;
                    let dt = match self.advance()? {
                        Tok::IriRef(iri) => {
                            Iri::try_new(&iri).map_err(|_| self.err("invalid IRI"))?
                        }
                        Tok::PName(p) => {
                            self.prefixes.expand(&p).map_err(|e| self.err(e.to_string()))?
                        }
                        _ => return Err(self.err("expected datatype IRI")),
                    };
                    Ok(QueryTerm::Term(Term::Literal(Literal::typed(s, dt))))
                } else if self.current == Tok::Op("@") {
                    self.advance()?;
                    let Tok::Keyword(lang) = self.advance()? else {
                        return Err(self.err("expected language tag"));
                    };
                    Ok(QueryTerm::Term(Term::Literal(Literal::lang_string(
                        s,
                        lang.to_ascii_lowercase(),
                    ))))
                } else {
                    Ok(QueryTerm::Term(Term::string(s)))
                }
            }
            Tok::Num(n) => {
                let term = parse_num(&n)
                    .ok_or_else(|| self.err(format!("numeric literal {n:?} out of range")))?;
                Ok(QueryTerm::Term(term))
            }
            Tok::Keyword(k) if k == "TRUE" => Ok(QueryTerm::Term(Term::boolean(true))),
            Tok::Keyword(k) if k == "FALSE" => Ok(QueryTerm::Term(Term::boolean(false))),
            other => Err(self.err(format!("expected a term, found {other:?}"))),
        }
    }

    // ---- expression grammar: or → and → cmp → add → mul → unary → primary
    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.current == Tok::Op("||") {
            self.advance()?;
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_cmp()?;
        while self.current == Tok::Op("&&") {
            self.advance()?;
            let rhs = self.parse_cmp()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let lhs = self.parse_add()?;
        let op = match self.current {
            Tok::Op("=") => CmpOp::Eq,
            Tok::Op("!=") => CmpOp::Ne,
            Tok::Op("<") => CmpOp::Lt,
            Tok::Op("<=") => CmpOp::Le,
            Tok::Op(">") => CmpOp::Gt,
            Tok::Op(">=") => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance()?;
        let rhs = self.parse_add()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.current {
                Tok::Op("+") => ArithOp::Add,
                Tok::Op("-") => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.advance()?;
            let rhs = self.parse_mul()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.current {
                Tok::Punct('*') => ArithOp::Mul,
                Tok::Op("/") => ArithOp::Div,
                _ => return Ok(lhs),
            };
            self.advance()?;
            let rhs = self.parse_unary()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.current == Tok::Op("!") {
            self.advance()?;
            let inner = self.parse_unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match &self.current {
            Tok::Punct('(') => {
                self.advance()?;
                let e = self.parse_expr()?;
                self.eat_punct(')')?;
                Ok(e)
            }
            Tok::Keyword(k) => {
                let builtin = match k.as_str() {
                    "BOUND" => Builtin::Bound,
                    "STR" => Builtin::Str,
                    "DATATYPE" => Builtin::Datatype,
                    "ISIRI" | "ISURI" => Builtin::IsIri,
                    "ISLITERAL" => Builtin::IsLiteral,
                    "REGEX" => Builtin::Regex,
                    "TRUE" => {
                        self.advance()?;
                        return Ok(Expr::Const(Term::boolean(true)));
                    }
                    "FALSE" => {
                        self.advance()?;
                        return Ok(Expr::Const(Term::boolean(false)));
                    }
                    other => return Err(self.err(format!("unknown function {other}"))),
                };
                self.advance()?;
                self.eat_punct('(')?;
                let mut args = Vec::new();
                if self.current != Tok::Punct(')') {
                    loop {
                        args.push(self.parse_expr()?);
                        if self.current == Tok::Punct(',') {
                            self.advance()?;
                        } else {
                            break;
                        }
                    }
                }
                self.eat_punct(')')?;
                Ok(Expr::Call(builtin, args))
            }
            _ => {
                let qt = self.parse_query_term()?;
                Ok(match qt {
                    QueryTerm::Var(v) => Expr::Var(v),
                    QueryTerm::Term(t) => Expr::Const(t),
                })
            }
        }
    }
}

fn parse_num(n: &str) -> Option<Term> {
    if n.contains('.') || n.contains(['e', 'E']) {
        n.parse::<f64>().ok().filter(|v| v.is_finite()).map(Term::double)
    } else {
        n.parse::<i64>().ok().map(Term::integer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_select() {
        let q =
            Parser::new("PREFIX q: <http://qurator.org/iq#> SELECT ?s WHERE { ?s a q:HitRatio . }")
                .parse_query()
                .unwrap();
        match q {
            Query::Select { projection, pattern, .. } => {
                assert_eq!(projection, SelectProjection::Vars(vec!["s".into()]));
                assert_eq!(pattern.triples.len(), 1);
            }
            _ => panic!("not a select"),
        }
    }

    #[test]
    fn parses_filter_precedence() {
        let q = Parser::new(
            "SELECT ?x WHERE { ?x <http://p> ?y . FILTER(?y > 1 && ?y < 5 || !BOUND(?x)) }",
        )
        .parse_query()
        .unwrap();
        let Query::Select { pattern, .. } = q else { panic!() };
        // (|| (&& (> y 1) (< y 5)) (! (bound x)))
        match &pattern.filters[0] {
            Expr::Or(lhs, rhs) => {
                assert!(matches!(**lhs, Expr::And(..)));
                assert!(matches!(**rhs, Expr::Not(..)));
            }
            other => panic!("bad tree {other:?}"),
        }
    }

    #[test]
    fn parses_negative_numbers_and_literals() {
        let q =
            Parser::new(r#"SELECT ?x WHERE { ?x <http://p> -3 ; <http://q> "s"^^<http://dt> . }"#)
                .parse_query()
                .unwrap();
        let Query::Select { pattern, .. } = q else { panic!() };
        assert_eq!(pattern.triples.len(), 2);
        assert_eq!(pattern.triples[0].object, QueryTerm::Term(Term::integer(-3)));
    }

    #[test]
    fn distinguishes_less_than_from_iri() {
        // `?y < 5` must not lex `< 5...` as an IRI.
        let q = Parser::new("SELECT ?x WHERE { ?x <http://p> ?y . FILTER(?y < 5) }")
            .parse_query()
            .unwrap();
        let Query::Select { pattern, .. } = q else { panic!() };
        assert!(matches!(pattern.filters[0], Expr::Cmp(CmpOp::Lt, ..)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Parser::new("SELECT").parse_query().is_err());
        assert!(Parser::new("SELECT ?x WHERE { ?x }").parse_query().is_err());
        assert!(Parser::new("SELECT ?x WHERE { ?x <p> ?y } JUNK").parse_query().is_err());
    }
}
