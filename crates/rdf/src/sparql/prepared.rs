//! Prepared (parameterised) queries: parse once, bind at evaluation time.
//!
//! The repository's lookup path used to interpolate the data-item IRI into
//! the query *string* for every `(item, evidence type)` pair — paying a
//! full parse per lookup and, worse, letting a hostile IRI such as
//! `urn:x> q:value ?v . ?s ?p <urn:y` rewrite the query (classic
//! injection). A [`PreparedQuery`] closes both holes structurally:
//!
//! * the text is parsed exactly once, so repeated lookups skip the parser;
//! * parameters enter evaluation as *initial solution bindings* — ordinary
//!   [`Term`]s joined against the store's indexes. They are never spliced
//!   into query text, so no term value can alter the query's shape.
//!
//! ```
//! use qurator_rdf::{sparql::PreparedQuery, term::Term, turtle};
//!
//! let store = turtle::parse_into_store(r#"
//!     @prefix q: <http://qurator.org/iq#> .
//!     <urn:lsid:a:b:P1> q:contains-evidence _:e .
//!     _:e a q:HitRatio ; q:value 0.9 .
//! "#).unwrap();
//! let lookup = PreparedQuery::new(r#"
//!     PREFIX q: <http://qurator.org/iq#>
//!     SELECT ?v WHERE {
//!         ?item q:contains-evidence ?e .
//!         ?e a ?etype ; q:value ?v .
//!     }
//! "#).unwrap();
//! let rows = lookup.select(&store, &[
//!     ("item", Term::iri("urn:lsid:a:b:P1")),
//!     ("etype", Term::iri("http://qurator.org/iq#HitRatio")),
//! ]).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

use super::ast::Query;
use super::eval::{self, Bindings, Row};
use crate::storage::Storage;
use crate::term::Term;
use crate::{RdfError, Result};

/// A parsed query whose variables can be bound per execution.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    query: Query,
    /// Variables mentioned in the pattern (the bindable set).
    variables: Vec<String>,
}

impl PreparedQuery {
    /// Parses `text` once; any pattern variable becomes a bindable
    /// parameter.
    pub fn new(text: &str) -> Result<Self> {
        Self::from_query(super::parse(text)?)
    }

    /// Wraps an already-parsed query.
    pub fn from_query(query: Query) -> Result<Self> {
        let pattern = match &query {
            Query::Select { pattern, .. } => pattern,
            Query::Ask { pattern } => pattern,
        };
        let variables = pattern.variables();
        if variables.is_empty() {
            return Err(RdfError::SparqlEval("prepared query has no variables to bind".into()));
        }
        Ok(PreparedQuery { query, variables })
    }

    /// The bindable variable names, in first-mention order.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// Executes a prepared SELECT with the given `(variable, term)`
    /// parameters. Unused variables stay free and are solved as usual.
    pub fn select<S: Storage + ?Sized>(
        &self,
        store: &S,
        params: &[(&str, Term)],
    ) -> Result<Vec<Row>> {
        eval::evaluate_select_with(store, &self.query, self.seed(params)?)
    }

    /// Executes a prepared ASK with the given parameters.
    pub fn ask<S: Storage + ?Sized>(&self, store: &S, params: &[(&str, Term)]) -> Result<bool> {
        eval::evaluate_ask_with(store, &self.query, self.seed(params)?)
    }

    /// Validates parameters and turns them into initial bindings.
    fn seed(&self, params: &[(&str, Term)]) -> Result<Bindings> {
        let mut initial = Bindings::new();
        for (name, term) in params {
            if !self.variables.iter().any(|v| v == name) {
                return Err(RdfError::SparqlEval(format!(
                    "cannot bind ?{name}: not a variable of the prepared query \
                     (expected one of {:?})",
                    self.variables
                )));
            }
            if initial.insert((*name).to_string(), term.clone()).is_some() {
                return Err(RdfError::SparqlEval(format!("duplicate binding for ?{name}")));
            }
        }
        Ok(initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::GraphStore;
    use crate::turtle;

    const Q: &str = "http://qurator.org/iq#";

    fn fixture() -> GraphStore {
        turtle::parse_into_store(
            r#"
            @prefix q: <http://qurator.org/iq#> .
            <urn:lsid:uniprot.org:uniprot:P30089>
                q:contains-evidence _:e1 , _:e2 .
            _:e1 a q:HitRatio ; q:value 0.82 .
            _:e2 a q:MassCoverage ; q:value 31 .
            <urn:lsid:uniprot.org:uniprot:P00734>
                q:contains-evidence _:e3 .
            _:e3 a q:HitRatio ; q:value 0.4 .
        "#,
        )
        .unwrap()
    }

    fn lookup() -> PreparedQuery {
        PreparedQuery::new(
            r#"PREFIX q: <http://qurator.org/iq#>
               SELECT ?v WHERE {
                   ?item q:contains-evidence ?e .
                   ?e a ?etype ; q:value ?v .
               }"#,
        )
        .unwrap()
    }

    #[test]
    fn bind_and_select_per_pair() {
        let store = fixture();
        let q = lookup();
        let rows = q
            .select(
                &store,
                &[
                    ("item", Term::iri("urn:lsid:uniprot.org:uniprot:P30089")),
                    ("etype", Term::iri(format!("{Q}MassCoverage"))),
                ],
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("v").unwrap(), &Term::integer(31));

        // Same prepared query, different parameters — no re-parse.
        let rows = q
            .select(
                &store,
                &[
                    ("item", Term::iri("urn:lsid:uniprot.org:uniprot:P00734")),
                    ("etype", Term::iri(format!("{Q}HitRatio"))),
                ],
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("v").unwrap(), &Term::double(0.4));
    }

    #[test]
    fn partial_binding_leaves_other_vars_free() {
        let store = fixture();
        let q = lookup();
        // Bind only the item: all its evidence values come back.
        let rows = q
            .select(&store, &[("item", Term::iri("urn:lsid:uniprot.org:uniprot:P30089"))])
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn unknown_variable_is_rejected() {
        let q = lookup();
        let err = q.select(&fixture(), &[("nope", Term::iri("urn:x"))]).unwrap_err();
        assert!(err.to_string().contains("nope"), "err: {err}");
    }

    #[test]
    fn duplicate_binding_is_rejected() {
        let q = lookup();
        let err = q
            .select(&fixture(), &[("item", Term::iri("urn:a")), ("item", Term::iri("urn:b"))])
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "err: {err}");
    }

    #[test]
    fn hostile_iri_is_data_not_query_text() {
        // The classic close-and-reopen payload (`urn:x> q:value ?v . <urn:y`)
        // is already unconstructible: `Iri::try_new` rejects `>` and
        // whitespace. But digit-initial IRIs are valid `Iri`s that still
        // corrupt interpolated query text — the lexer reads `<7…` as a
        // less-than operator, not an IRI ref.
        assert!(
            crate::term::Iri::try_new("urn:x> q:value ?v . ?s ?p <urn:y").is_err(),
            "close-and-reopen payloads must not be constructible"
        );
        let interpolated = format!(
            "PREFIX q: <{Q}>\n\
             SELECT ?v WHERE {{\n\
               <7evil:item> q:contains-evidence ?e .\n\
               ?e a <{Q}HitRatio> ; q:value ?v .\n\
             }}"
        );
        assert!(
            super::super::parse(&interpolated).is_err(),
            "interpolating a digit-initial IRI corrupts the query"
        );
        // The prepared path never renders the IRI into text: the same term
        // evaluates cleanly and simply matches nothing.
        let rows = lookup()
            .select(
                &fixture(),
                &[("item", Term::iri("7evil:item")), ("etype", Term::iri(format!("{Q}HitRatio")))],
            )
            .unwrap();
        assert!(rows.is_empty(), "hostile IRI must match nothing, not error");
    }

    #[test]
    fn ask_with_parameters() {
        let q = PreparedQuery::new(
            r#"PREFIX q: <http://qurator.org/iq#>
               ASK { ?item q:contains-evidence ?e . }"#,
        )
        .unwrap();
        let store = fixture();
        assert!(q
            .ask(&store, &[("item", Term::iri("urn:lsid:uniprot.org:uniprot:P30089"))])
            .unwrap());
        assert!(!q.ask(&store, &[("item", Term::iri("urn:nothing"))]).unwrap());
    }

    #[test]
    fn variables_are_listed_in_mention_order() {
        assert_eq!(lookup().variables(), ["item", "e", "etype", "v"]);
    }

    #[test]
    fn query_without_variables_is_rejected() {
        let err = PreparedQuery::new(
            r#"PREFIX q: <http://qurator.org/iq#>
               ASK { <urn:a> q:value 1 . }"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no variables"), "err: {err}");
    }
}
