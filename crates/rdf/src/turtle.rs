//! A Turtle-subset parser and serializer.
//!
//! Supports the fragment the annotation layer needs to persist and reload
//! repositories: `@prefix` directives, subject groups with `;`/`,`
//! abbreviations, the `a` keyword, IRIs, prefixed names, blank node labels,
//! string/numeric/boolean literals, datatype (`^^`) and language (`@`) tags,
//! and `#` comments. Collections and anonymous `[...]` blank nodes are not
//! supported (the annotation encoding never produces them).

use crate::namespace::PrefixMap;
use crate::store::GraphStore;
use crate::term::{Iri, Literal, Term};
use crate::triple::Triple;
use crate::{namespace::xsd, RdfError, Result};
use std::fmt::Write as _;

/// Escapes a string for a double-quoted Turtle literal.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Parses a Turtle document into triples plus the prefix map it declared.
pub fn parse(input: &str) -> Result<(Vec<Triple>, PrefixMap)> {
    let mut triples = Vec::new();
    let mut sink = |t: Triple| {
        triples.push(t);
        Ok(())
    };
    let prefixes = parse_each(input, &mut sink)?;
    Ok((triples, prefixes))
}

/// Streaming parse: invokes `sink` for each triple as it is produced, so a
/// bulk loader can ingest documents without materializing the triple list.
/// A sink error aborts the parse and is returned as-is.
pub fn parse_each(input: &str, sink: &mut dyn FnMut(Triple) -> Result<()>) -> Result<PrefixMap> {
    let mut parser = Parser::new(input, sink);
    parser.parse_document()?;
    Ok(parser.prefixes)
}

/// Parses a Turtle document straight into a [`GraphStore`]. Ill-formed
/// triples surface as [`crate::RdfError`] values (this path ingests
/// external data, so it must not abort the process).
pub fn parse_into_store(input: &str) -> Result<GraphStore> {
    let mut store = GraphStore::new();
    let mut sink = |t: Triple| store.try_insert(t).map(|_| ());
    parse_each(input, &mut sink)?;
    Ok(store)
}

/// Serializes a store as Turtle, grouping triples by subject and compacting
/// IRIs against the given prefix map. Generic over [`Storage`] so durable
/// backends export the same way as the in-memory store.
pub fn serialize<S: crate::storage::Storage + ?Sized>(store: &S, prefixes: &PrefixMap) -> String {
    let mut out = String::new();
    for (p, ns) in prefixes.iter() {
        let _ = writeln!(out, "@prefix {p}: <{ns}> .");
    }
    if prefixes.iter().next().is_some() {
        out.push('\n');
    }
    let mut last_subject: Option<Term> = None;
    // iter() is SPO-ordered per dictionary ids, which is not stable across
    // stores; sort for deterministic output.
    let mut triples: Vec<Triple> = store.iter().collect();
    triples.sort();
    for t in &triples {
        if last_subject.as_ref() == Some(&t.subject) {
            let _ = write!(
                out,
                " ;\n    {} {}",
                render(&t.predicate, prefixes),
                render(&t.object, prefixes)
            );
        } else {
            if last_subject.is_some() {
                out.push_str(" .\n");
            }
            let _ = write!(
                out,
                "{} {} {}",
                render(&t.subject, prefixes),
                render(&t.predicate, prefixes),
                render(&t.object, prefixes)
            );
            last_subject = Some(t.subject.clone());
        }
    }
    if last_subject.is_some() {
        out.push_str(" .\n");
    }
    out
}

fn render(term: &Term, prefixes: &PrefixMap) -> String {
    match term {
        Term::Iri(iri) => {
            if iri.as_str() == crate::namespace::rdf::TYPE {
                "a".to_string()
            } else if let Some(pname) = prefixes.compact(iri) {
                pname
            } else {
                format!("<{iri}>")
            }
        }
        Term::Blank(b) => b.to_string(),
        Term::Literal(l) => {
            // Numeric / boolean shorthands where the lexical form is canonical.
            // Only canonical lexical forms may be written bare: "007" or
            // "1." would silently re-parse as a different literal.
            match l.datatype().as_str() {
                xsd::INTEGER if l.as_i64().is_some_and(|v| v.to_string() == l.lexical()) => {
                    return l.lexical().to_string()
                }
                xsd::BOOLEAN if matches!(l.lexical(), "true" | "false") => {
                    return l.lexical().to_string()
                }
                xsd::DOUBLE
                    if looks_double(l.lexical())
                        && l.as_f64()
                            .is_some_and(|v| crate::term::canonical_double(v) == l.lexical()) =>
                {
                    return l.lexical().to_string()
                }
                _ => {}
            }
            let mut s = format!("\"{}\"", escape_string(l.lexical()));
            if let Some(lang) = l.lang() {
                let _ = write!(s, "@{lang}");
            } else if l.datatype().as_str() != xsd::STRING {
                if let Some(pname) = prefixes.compact(l.datatype()) {
                    let _ = write!(s, "^^{pname}");
                } else {
                    let _ = write!(s, "^^<{}>", l.datatype());
                }
            }
            s
        }
    }
}

/// True when the string parses back as an xsd:double shorthand (contains a
/// decimal point or exponent so the parser will type it as double).
fn looks_double(s: &str) -> bool {
    (s.contains('.') || s.contains(['e', 'E'])) && s.parse::<f64>().is_ok()
}

struct Parser<'a, 's> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
    prefixes: PrefixMap,
    sink: &'s mut dyn FnMut(Triple) -> Result<()>,
}

impl<'a, 's> Parser<'a, 's> {
    fn new(src: &'a str, sink: &'s mut dyn FnMut(Triple) -> Result<()>) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            prefixes: PrefixMap::new(),
            sink,
        }
    }

    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::TurtleSyntax {
            line: self.line,
            col: self.pos - self.line_start + 1,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {:?}, found {:?}",
                c as char,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn parse_document(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                return Ok(());
            }
            if self.src[self.pos..].starts_with("@prefix") {
                self.parse_prefix()?;
            } else {
                self.parse_statement()?;
            }
        }
    }

    fn parse_prefix(&mut self) -> Result<()> {
        self.pos += "@prefix".len();
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b':' {
                break;
            }
            if !(c.is_ascii_alphanumeric() || c == b'_' || c == b'-') {
                return Err(self.err("invalid prefix name"));
            }
            self.bump();
        }
        let prefix = self.src[start..self.pos].to_string();
        self.expect(b':')?;
        self.skip_ws();
        let iri = self.parse_iri_ref()?;
        self.expect(b'.')?;
        self.prefixes.declare(prefix, iri.as_str().to_string());
        Ok(())
    }

    fn parse_statement(&mut self) -> Result<()> {
        let subject = self.parse_term()?;
        if !subject.is_resource() {
            return Err(self.err("subject must be an IRI or blank node"));
        }
        loop {
            self.skip_ws();
            let predicate = self.parse_verb()?;
            loop {
                let object = self.parse_term()?;
                let triple = Triple::new(subject.clone(), predicate.clone(), object);
                // The grammar above already restricts subject/predicate
                // shapes; this guard keeps the invariant local so future
                // grammar extensions cannot leak an ill-formed triple into
                // a panicking store insert.
                if !triple.is_well_formed() {
                    return Err(self.err(format!("ill-formed triple: {triple}")));
                }
                (self.sink)(triple)?;
                self.skip_ws();
                if self.peek() == Some(b',') {
                    self.bump();
                } else {
                    break;
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b';') => {
                    self.bump();
                    self.skip_ws();
                    // allow trailing `;` before `.`
                    if self.peek() == Some(b'.') {
                        self.bump();
                        return Ok(());
                    }
                }
                Some(b'.') => {
                    self.bump();
                    return Ok(());
                }
                other => {
                    return Err(self
                        .err(format!("expected ';' or '.', found {:?}", other.map(|b| b as char))))
                }
            }
        }
    }

    fn parse_verb(&mut self) -> Result<Term> {
        self.skip_ws();
        // the `a` keyword
        if self.peek() == Some(b'a') {
            let next = self.bytes.get(self.pos + 1).copied();
            if next.is_none_or(|c| c.is_ascii_whitespace()) {
                self.bump();
                return Ok(Term::iri(crate::namespace::rdf::TYPE));
            }
        }
        let t = self.parse_term()?;
        if t.as_iri().is_none() {
            return Err(self.err("predicate must be an IRI"));
        }
        Ok(t)
    }

    fn parse_term(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => Ok(Term::Iri(self.parse_iri_ref()?)),
            Some(b'_') => self.parse_blank(),
            Some(b'"') => self.parse_literal(),
            Some(c) if c == b'+' || c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => self.parse_pname_or_keyword(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_iri_ref(&mut self) -> Result<Iri> {
        self.expect(b'<')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'>' {
                let iri = Iri::try_new(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid IRI"))?;
                self.bump();
                return Ok(iri);
            }
            self.bump();
        }
        Err(self.err("unterminated IRI"))
    }

    fn parse_blank(&mut self) -> Result<Term> {
        // consume `_:`
        self.bump();
        self.expect(b':')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("empty blank node label"));
        }
        Ok(Term::blank(&self.src[start..self.pos]))
    }

    fn parse_literal(&mut self) -> Result<Term> {
        self.expect(b'"')?;
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => value.push('\n'),
                    Some(b'r') => value.push('\r'),
                    Some(b't') => value.push('\t'),
                    Some(b'\\') => value.push('\\'),
                    Some(b'"') => value.push('"'),
                    other => {
                        return Err(self.err(format!("bad escape \\{:?}", other.map(|b| b as char))))
                    }
                },
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if c < 0x80 {
                        value.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        value.push_str(&self.src[start..end]);
                        self.pos = end;
                    }
                }
                None => return Err(self.err("unterminated string literal")),
            }
        }
        // optional suffix
        match self.peek() {
            Some(b'^') => {
                self.bump();
                self.expect(b'^')?;
                self.skip_ws();
                let dt = match self.peek() {
                    Some(b'<') => self.parse_iri_ref()?,
                    _ => {
                        let t = self.parse_pname_or_keyword()?;
                        t.as_iri().cloned().ok_or_else(|| self.err("datatype must be an IRI"))?
                    }
                };
                Ok(Term::Literal(Literal::typed(value, dt)))
            }
            Some(b'@') => {
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'-' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err(self.err("empty language tag"));
                }
                Ok(Term::Literal(Literal::lang_string(value, &self.src[start..self.pos])))
            }
            _ => Ok(Term::string(value)),
        }
    }

    fn parse_number(&mut self) -> Result<Term> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.bump();
        }
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !saw_dot && !saw_exp => {
                    // A `.` followed by a non-digit is the statement terminator.
                    if self.bytes.get(self.pos + 1).is_some_and(|d| d.is_ascii_digit()) {
                        saw_dot = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if saw_dot || saw_exp {
            let v: f64 = text.parse().map_err(|_| self.err(format!("bad double {text:?}")))?;
            Ok(Term::double(v))
        } else {
            let v: i64 = text.parse().map_err(|_| self.err(format!("bad integer {text:?}")))?;
            Ok(Term::integer(v))
        }
    }

    fn parse_pname_or_keyword(&mut self) -> Result<Term> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b':' | b'.') {
                // A trailing '.' is the statement terminator, not part of the name.
                if c == b'.' {
                    let next = self.bytes.get(self.pos + 1).copied();
                    if next.is_none_or(|d| !(d.is_ascii_alphanumeric() || d == b'_')) {
                        break;
                    }
                }
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        match text {
            "" => Err(self.err("expected a term")),
            "true" => Ok(Term::boolean(true)),
            "false" => Ok(Term::boolean(false)),
            _ if text.contains(':') => {
                let iri = self.prefixes.expand(text).map_err(|e| self.err(e.to_string()))?;
                Ok(Term::Iri(iri))
            }
            _ => Err(self.err(format!("unknown keyword or unprefixed name {text:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::{q, rdf};

    #[test]
    fn parse_paper_style_annotations() {
        // Mirrors the paper's Figure 2 annotation graph: a protein ID typed
        // as ImprintHitEntry, annotated with HitRatio/MassCoverage evidence.
        let doc = r#"
            @prefix q: <http://qurator.org/iq#> .
            @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
            # the data item (LSID-wrapped Uniprot accession)
            <urn:lsid:uniprot.org:uniprot:P30089>
                a q:ImprintHitEntry ;
                q:contains-evidence _:hr , _:mc .
            _:hr a q:HitRatio ; q:value 0.82 .
            _:mc a q:MassCoverage ; q:value 31 .
        "#;
        let (triples, prefixes) = parse(doc).unwrap();
        assert_eq!(triples.len(), 7);
        assert_eq!(prefixes.namespace("q"), Some("http://qurator.org/iq#"));
        let store: GraphStore = triples.into_iter().collect();
        let subject = Term::iri("urn:lsid:uniprot.org:uniprot:P30089");
        assert_eq!(
            store.object(&subject, &Term::iri(rdf::TYPE)),
            Some(Term::Iri(q::iri("ImprintHitEntry")))
        );
        let evid = store.objects(&subject, &Term::Iri(q::iri("contains-evidence")));
        assert_eq!(evid.len(), 2);
    }

    #[test]
    fn literal_forms() {
        let doc = r#"
            @prefix x: <http://x/> .
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            x:s x:str "plain" ;
                x:esc "a\"b\nc" ;
                x:lang "ciao"@it ;
                x:int 42 ;
                x:neg -7 ;
                x:dbl 3.25 ;
                x:exp 1e3 ;
                x:bool true ;
                x:typed "12"^^xsd:long .
        "#;
        let store = parse_into_store(doc).unwrap();
        let s = Term::iri("http://x/s");
        let get = |p: &str| store.object(&s, &Term::iri(format!("http://x/{p}"))).unwrap();
        assert_eq!(get("str"), Term::string("plain"));
        assert_eq!(get("esc"), Term::string("a\"b\nc"));
        assert_eq!(get("lang"), Term::Literal(Literal::lang_string("ciao", "it")));
        assert_eq!(get("int"), Term::integer(42));
        assert_eq!(get("neg"), Term::integer(-7));
        assert_eq!(get("dbl").as_literal().unwrap().as_f64(), Some(3.25));
        assert_eq!(get("exp").as_literal().unwrap().as_f64(), Some(1000.0));
        assert_eq!(get("bool"), Term::boolean(true));
        assert_eq!(get("typed").as_literal().unwrap().datatype().as_str(), xsd::LONG);
    }

    #[test]
    fn unicode_strings_survive() {
        let doc = "@prefix x: <http://x/> .\nx:s x:p \"protéine – αβγ\" .";
        let store = parse_into_store(doc).unwrap();
        let o = store.object(&Term::iri("http://x/s"), &Term::iri("http://x/p")).unwrap();
        assert_eq!(o, Term::string("protéine – αβγ"));
    }

    #[test]
    fn serialize_then_parse_is_identity() {
        let doc = r#"
            @prefix q: <http://qurator.org/iq#> .
            <urn:lsid:a:b:X> a q:DataEntity ;
                q:score 2.5 ;
                q:label "hello \"world\"" ;
                q:count 3 ;
                q:ok false .
        "#;
        let store = parse_into_store(doc).unwrap();
        let text = serialize(&store, &PrefixMap::with_defaults());
        let reparsed = parse_into_store(&text).unwrap();
        let mut a: Vec<Triple> = store.iter().collect();
        let mut b: Vec<Triple> = reparsed.iter().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "serialized form:\n{text}");
    }

    #[test]
    fn syntax_errors_carry_position() {
        let doc = "@prefix x: <http://x/> .\nx:s x:p ;;";
        let err = parse(doc).unwrap_err();
        match err {
            RdfError::TurtleSyntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let err = parse("nope:s nope:p nope:o .").unwrap_err();
        assert!(matches!(err, RdfError::TurtleSyntax { .. }));
    }

    #[test]
    fn trailing_semicolon_is_tolerated() {
        let doc = "@prefix x: <http://x/> .\nx:s x:p x:o ; .";
        let (triples, _) = parse(doc).unwrap();
        assert_eq!(triples.len(), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_term() -> impl Strategy<Value = Term> {
        prop_oneof![
            "[a-zA-Z][a-zA-Z0-9]{0,8}".prop_map(|s| Term::iri(format!("http://t/{s}"))),
            "[a-zA-Z][a-zA-Z0-9]{0,8}".prop_map(Term::blank),
            any::<i64>().prop_map(Term::integer),
            any::<bool>().prop_map(Term::boolean),
            (-1e9f64..1e9).prop_map(Term::double),
            "\\PC{0,20}".prop_map(Term::string),
            ("\\PC{0,12}", "[a-z]{2}").prop_map(|(s, l)| Term::Literal(Literal::lang_string(s, l))),
        ]
    }

    fn arb_resource() -> impl Strategy<Value = Term> {
        prop_oneof![
            "[a-zA-Z][a-zA-Z0-9]{0,8}".prop_map(|s| Term::iri(format!("http://t/{s}"))),
            "[a-zA-Z][a-zA-Z0-9]{0,8}".prop_map(Term::blank),
        ]
    }

    proptest! {
        /// serialize ∘ parse is the identity on stores (graph isomorphism is
        /// trivial here because we only emit labelled blank nodes).
        #[test]
        fn roundtrip(triples in proptest::collection::vec(
            (arb_resource(), "[a-zA-Z][a-zA-Z0-9]{0,6}", arb_term()),
            0..40,
        )) {
            let store: GraphStore = triples
                .into_iter()
                .map(|(s, p, o)| Triple::new(s, Term::iri(format!("http://t/p/{p}")), o))
                .collect();
            let text = serialize(&store, &PrefixMap::with_defaults());
            let reparsed = parse_into_store(&text).unwrap();
            let mut a: Vec<Triple> = store.iter().collect();
            let mut b: Vec<Triple> = reparsed.iter().collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "text was:\n{}", text);
        }
    }
}
