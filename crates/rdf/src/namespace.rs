//! Namespace prefixes and well-known vocabularies.
//!
//! The Qurator framework uses the `q:` prefix for its IQ-model namespace
//! (the paper writes e.g. `q:HitRatio`, `q:PIScoreClassification`); this
//! module also carries the standard RDF/RDFS/OWL/XSD vocabularies the
//! ontology layer needs.

use crate::term::Iri;
use crate::RdfError;
use std::collections::BTreeMap;

/// The RDF syntax vocabulary.
pub mod rdf {
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    pub const PROPERTY: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
}

/// The RDF Schema vocabulary.
pub mod rdfs {
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    pub const SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    pub const COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
}

/// The (tiny) OWL fragment the IQ model relies on.
pub mod owl {
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    pub const CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    pub const OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
    pub const DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
    pub const DISJOINT_WITH: &str = "http://www.w3.org/2002/07/owl#disjointWith";
    pub const ONE_OF: &str = "http://www.w3.org/2002/07/owl#oneOf";
    pub const THING: &str = "http://www.w3.org/2002/07/owl#Thing";
}

/// XML Schema datatypes.
pub mod xsd {
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
}

/// The Qurator IQ-model namespace (the paper's `q:` prefix).
pub mod q {
    pub const NS: &str = "http://qurator.org/iq#";

    /// Builds an IRI in the `q:` namespace from a local name.
    pub fn iri(local: &str) -> crate::term::Iri {
        crate::term::Iri::new(format!("{NS}{local}"))
    }
}

/// A mutable prefix → namespace mapping used by the Turtle and SPARQL
/// parsers and by serializers when rendering prefixed names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixMap {
    map: BTreeMap<String, String>,
}

impl PrefixMap {
    /// An empty prefix map.
    pub fn new() -> Self {
        Self::default()
    }

    /// A prefix map preloaded with `rdf`, `rdfs`, `owl`, `xsd` and `q`.
    pub fn with_defaults() -> Self {
        let mut m = Self::new();
        m.declare("rdf", rdf::NS);
        m.declare("rdfs", rdfs::NS);
        m.declare("owl", owl::NS);
        m.declare("xsd", xsd::NS);
        m.declare("q", q::NS);
        m
    }

    /// Declares (or redeclares) a prefix.
    pub fn declare(&mut self, prefix: impl Into<String>, ns: impl Into<String>) {
        self.map.insert(prefix.into(), ns.into());
    }

    /// Looks up the namespace bound to `prefix`.
    pub fn namespace(&self, prefix: &str) -> Option<&str> {
        self.map.get(prefix).map(String::as_str)
    }

    /// Expands a `prefix:local` name into a full IRI.
    pub fn expand(&self, pname: &str) -> Result<Iri, RdfError> {
        let (prefix, local) =
            pname.split_once(':').ok_or_else(|| RdfError::UnknownPrefix(pname.to_string()))?;
        let ns =
            self.namespace(prefix).ok_or_else(|| RdfError::UnknownPrefix(prefix.to_string()))?;
        Iri::try_new(&format!("{ns}{local}"))
    }

    /// Tries to compact an IRI into `prefix:local` form; returns `None` when
    /// no declared namespace is a prefix of the IRI or the local part is not
    /// a simple name.
    pub fn compact(&self, iri: &Iri) -> Option<String> {
        let s = iri.as_str();
        let mut best: Option<(&str, &str)> = None;
        for (p, ns) in &self.map {
            if let Some(local) = s.strip_prefix(ns.as_str()) {
                if is_local_name(local) && best.is_none_or(|(_, bns)| ns.len() > bns.len()) {
                    best = Some((p, ns));
                }
            }
        }
        best.map(|(p, ns)| format!("{p}:{}", &s[ns.len()..]))
    }

    /// Iterates over `(prefix, namespace)` pairs in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// True for strings usable as the local part of a prefixed name.
pub(crate) fn is_local_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
        && !s.starts_with('.')
        && !s.ends_with('.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_and_compact_roundtrip() {
        let m = PrefixMap::with_defaults();
        let iri = m.expand("q:HitRatio").unwrap();
        assert_eq!(iri.as_str(), "http://qurator.org/iq#HitRatio");
        assert_eq!(m.compact(&iri).as_deref(), Some("q:HitRatio"));
    }

    #[test]
    fn expand_unknown_prefix_fails() {
        let m = PrefixMap::new();
        assert!(matches!(m.expand("q:X"), Err(RdfError::UnknownPrefix(_))));
        assert!(matches!(m.expand("noColon"), Err(RdfError::UnknownPrefix(_))));
    }

    #[test]
    fn compact_prefers_longest_namespace() {
        let mut m = PrefixMap::new();
        m.declare("a", "http://x/");
        m.declare("b", "http://x/deep#");
        let iri = Iri::new("http://x/deep#leaf");
        assert_eq!(m.compact(&iri).as_deref(), Some("b:leaf"));
    }

    #[test]
    fn compact_refuses_non_name_locals() {
        let m = PrefixMap::with_defaults();
        let iri = Iri::new("http://qurator.org/iq#a/b");
        assert_eq!(m.compact(&iri), None);
    }

    #[test]
    fn q_namespace_helper() {
        assert_eq!(q::iri("MassCoverage").as_str(), "http://qurator.org/iq#MassCoverage");
    }
}
