//! Append-only persistent term dictionary (`dict.seg`).
//!
//! Records are `len(u32 LE) · payload · crc32(u32 LE)`, where the payload is
//! the canonical term encoding ([`super::codec`]). A term's id is its record
//! ordinal, so ids are assigned in intern order and are **never reassigned
//! or reused** — the id-stability invariant the whole id-space join API
//! rests on. RAM holds only the id→offset table and an FNV hash→ids bucket
//! map; term bytes stay on disk and decode on demand through a bounded
//! cache.

use crate::term::Term;
use crate::{RdfError, Result};
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use super::codec::{crc32, decode_term, encode_term, fnv1a};
use super::segment::{io_err, ReadFile};

/// Decoded terms cached in RAM; the map is dropped wholesale when full so
/// memory stays bounded without LRU bookkeeping.
const CACHE_CAP: usize = 1 << 16;

#[derive(Debug)]
pub(crate) struct DiskDict {
    file: ReadFile,
    path: PathBuf,
    /// id → (payload offset, payload length).
    offsets: Vec<(u64, u32)>,
    /// FNV-1a(payload) → candidate ids (collisions resolved by comparing).
    by_hash: HashMap<u64, Vec<u32>>,
    cache: Mutex<HashMap<u32, Term>>,
    end: u64,
    dirty: bool,
}

impl DiskDict {
    /// Opens (creating if absent) the dictionary, scanning all records to
    /// rebuild the offset table and hash index. An incomplete or
    /// checksum-failing record truncates the file there: appends are only
    /// acknowledged after an fsync, so a torn tail is always unacknowledged.
    pub fn open(dir: &Path) -> Result<DiskDict> {
        let path = dir.join("dict.seg");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("opening dictionary", &path, e))?;
        let mut bytes = Vec::new();
        {
            use std::io::Read;
            file.read_to_end(&mut bytes).map_err(|e| io_err("reading dictionary", &path, e))?;
        }
        let mut offsets = Vec::new();
        let mut by_hash: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut at = 0usize;
        while let Some(len_bytes) = bytes.get(at..at + 4) {
            let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
            let Some(payload) = bytes.get(at + 4..at + 4 + len) else { break };
            let Some(crc_bytes) = bytes.get(at + 4 + len..at + 8 + len) else { break };
            if crc32(payload) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
                break;
            }
            let id = offsets.len() as u32;
            offsets.push(((at + 4) as u64, len as u32));
            by_hash.entry(fnv1a(payload)).or_default().push(id);
            at += 8 + len;
        }
        if at < bytes.len() {
            file.set_len(at as u64).map_err(|e| io_err("truncating dictionary", &path, e))?;
        }
        file.seek(SeekFrom::Start(at as u64))
            .map_err(|e| io_err("seeking dictionary", &path, e))?;
        Ok(DiskDict {
            file: ReadFile::new(file),
            path,
            offsets,
            by_hash,
            cache: Mutex::new(HashMap::new()),
            end: at as u64,
            dirty: false,
        })
    }

    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// On-disk size of the dictionary file in bytes (the
    /// `store.dict.bytes` gauge).
    pub fn bytes(&self) -> u64 {
        self.end
    }

    fn payload(&self, id: u32) -> Option<Vec<u8>> {
        let &(off, len) = self.offsets.get(id as usize)?;
        let mut buf = vec![0u8; len as usize];
        self.file.read_exact_at(&mut buf, off).ok()?;
        Some(buf)
    }

    /// The term behind `id`, or `None` for ids this dictionary never issued
    /// (the [`crate::Storage::try_term_at`] trust boundary) or whose record
    /// fails to decode.
    pub fn term(&self, id: u32) -> Option<Term> {
        if let Some(t) = self.cache.lock().unwrap_or_else(|p| p.into_inner()).get(&id) {
            return Some(t.clone());
        }
        let term = decode_term(&self.payload(id)?)?;
        self.remember(id, &term);
        Some(term)
    }

    fn remember(&self, id: u32, term: &Term) {
        let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(id, term.clone());
    }

    /// The id of `term` if already interned.
    pub fn lookup(&self, term: &Term) -> Option<u32> {
        let mut payload = Vec::new();
        encode_term(term, &mut payload);
        self.lookup_encoded(&payload)
    }

    fn lookup_encoded(&self, payload: &[u8]) -> Option<u32> {
        let candidates = self.by_hash.get(&fnv1a(payload))?;
        candidates.iter().copied().find(|&id| self.payload(id).as_deref() == Some(payload))
    }

    /// Interns `term`, appending a new record when unseen. The new record is
    /// durable only after [`Self::flush`].
    pub fn intern(&mut self, term: &Term) -> Result<u32> {
        let mut payload = Vec::new();
        encode_term(term, &mut payload);
        if let Some(id) = self.lookup_encoded(&payload) {
            return Ok(id);
        }
        if self.offsets.len() > u32::MAX as usize - 1 {
            return Err(RdfError::Io("dictionary exhausted the u32 id space".into()));
        }
        let mut record = Vec::with_capacity(payload.len() + 8);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        (&self.file.file)
            .write_all(&record)
            .map_err(|e| io_err("appending to dictionary", &self.path, e))?;
        let id = self.offsets.len() as u32;
        self.offsets.push((self.end + 4, payload.len() as u32));
        self.by_hash.entry(fnv1a(&payload)).or_default().push(id);
        self.end += record.len() as u64;
        self.dirty = true;
        self.remember(id, term);
        Ok(id)
    }

    /// Durability barrier for appended records. Must run before the journal
    /// fsync so no durable WAL record references a non-durable term.
    pub fn flush(&mut self) -> Result<()> {
        if self.dirty {
            self.file.file.sync_data().map_err(|e| io_err("syncing dictionary", &self.path, e))?;
            self.dirty = false;
        }
        Ok(())
    }
}
