//! Pluggable storage backends behind one [`Storage`] trait.
//!
//! The trait captures everything the upper layers (annotation repositories,
//! SPARQL evaluation, bulk enrichment) ask of a triple store: term-space
//! pattern matching plus the id-space join API (`id_of` / `try_term_at` /
//! `edge_ids` / `object_ids`) that `enrich_bulk` runs on, and a
//! snapshot/recovery surface (`flush` / `checkpoint`) for durable backends.
//!
//! Two implementations ship:
//!
//! * [`MemoryBackend`] — the existing BTreeSet-indexed [`GraphStore`]; the
//!   default, unchanged semantics.
//! * [`DiskBackend`] — a persistent, dictionary-encoded store (append-only
//!   term dictionary, immutable sorted segment files, write-ahead journal
//!   with group commit and crash recovery). See [`disk`].
//!
//! # Id stability (invariant)
//!
//! Term ids returned by [`Storage::id_of`] are assigned at intern time and
//! remain valid for the *entire lifetime of the store* — across `clear`,
//! `flush`, `checkpoint`/compaction, and (for durable backends) process
//! restarts. Ids are never reused or remapped; compaction rewrites triple
//! segments but never the dictionary. Consequently id order is intern
//! order on every backend, which is what makes the ascending id-space
//! scans (`edge_ids`, `object_ids`) and their first-wins consumers
//! deterministic and backend-independent. Code holding ids from an
//! *external* source (disk segments, the network) must resolve them with
//! [`Storage::try_term_at`], which turns a corrupt or foreign id into
//! `None` instead of a panic.

mod bulk;
mod codec;
mod dict;
mod disk;
mod segment;
mod wal;

pub use crate::store::IndexChoice;
pub use bulk::{BulkLoadStats, BulkLoader};
pub use disk::DiskBackend;
pub use wal::truncate_mid_record;

use crate::store::GraphStore;
use crate::term::Term;
use crate::triple::{Triple, TriplePattern};
use crate::Result;
use std::path::Path;

/// The default in-memory backend: today's [`GraphStore`], unchanged.
pub type MemoryBackend = GraphStore;

/// A structured snapshot of one backend's storage-layer state — the
/// expanded `GET /store` surface. Volatile backends report the size
/// figures only; [`DiskBackend`] fills in journal, base-segment,
/// dictionary and compaction facts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageStatus {
    /// Backend identifier (`"memory"`, `"disk"`).
    pub backend: &'static str,
    /// Live triples.
    pub triples: usize,
    /// Distinct interned terms.
    pub terms: usize,
    /// Records currently in the write-ahead journal (0 for volatile
    /// backends).
    pub journal_records: usize,
    /// Triples in the compacted base segment.
    pub base_triples: u64,
    /// On-disk dictionary size in bytes.
    pub dict_bytes: u64,
    /// Compactions performed over this backend's lifetime.
    pub compactions: u64,
    /// Duration of the most recent compaction, if one ran.
    pub last_compaction_us: Option<u64>,
    /// Journal records folded by the most recent compaction, if one ran.
    pub last_compaction_folded: Option<u64>,
}

/// Abstract triple storage. Object-safe: the engine holds repositories as
/// `Box<dyn Storage>` so one binary serves both backends.
///
/// Implementations must uphold the **id-stability invariant** documented on
/// [the module](self): ids are assigned in intern order, never reused, and
/// survive `clear`/`checkpoint`/reopen. All id-space scans yield ascending
/// key order (`edge_ids` ascending `(object, subject)`, `object_ids`
/// ascending object id), matching `GraphStore`'s BTreeSet semantics.
pub trait Storage: Send + Sync + std::fmt::Debug {
    /// Short backend identifier (`"memory"`, `"disk"`), used in
    /// diagnostics and the `/store` endpoint.
    fn backend_name(&self) -> &'static str;

    /// Number of triples currently live.
    fn len(&self) -> usize;

    /// Number of distinct terms interned over the store's lifetime.
    fn term_count(&self) -> usize;

    /// Inserts a triple; `Ok(true)` when it was not already present.
    /// Ill-formed triples (literal subject / non-IRI predicate) are a
    /// [`crate::RdfError::IllFormed`] error — external data reaches this
    /// boundary, so it must not abort the process.
    fn insert(&mut self, t: Triple) -> Result<bool>;

    /// Removes a triple; `true` when it was present.
    fn remove(&mut self, t: &Triple) -> bool;

    /// Membership test.
    fn contains(&self, t: &Triple) -> bool;

    /// Streams all triples matching the pattern via the best index, in
    /// that index's ascending key order.
    fn matching<'a>(&'a self, pattern: &TriplePattern) -> Box<dyn Iterator<Item = Triple> + 'a>;

    /// Iterates all triples in ascending SPO id order.
    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = Triple> + 'a>;

    /// The interned id of a term, or `None` if the store has never seen it.
    fn id_of(&self, term: &Term) -> Option<u32>;

    /// The term behind an id, or `None` for ids this store never issued —
    /// the trust boundary for ids read back from disk segments or any
    /// other external source.
    fn try_term_at(&self, id: u32) -> Option<Term>;

    /// All `(subject, object)` id pairs under a bound predicate, ascending
    /// by `(object, subject)` — the bulk-enrichment workhorse.
    fn edge_ids<'a>(&'a self, predicate: u32) -> Box<dyn Iterator<Item = (u32, u32)> + 'a>;

    /// Object ids of `(subject, predicate, ?)`, ascending.
    fn object_ids<'a>(&'a self, subject: u32, predicate: u32)
        -> Box<dyn Iterator<Item = u32> + 'a>;

    /// Mints a store-scoped fresh blank node (not yet interned).
    fn fresh_blank(&mut self) -> Term;

    /// Removes all triples but keeps the dictionary (cache-repository
    /// clears between quality-process executions stay cheap, and ids stay
    /// stable per the module invariant).
    fn clear(&mut self);

    /// Durability barrier: after `Ok(())`, every previously acknowledged
    /// mutation survives a crash. No-op for volatile backends.
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    /// Folds accumulated mutations into a compact snapshot (segment
    /// compaction + journal truncation on disk). Implies [`Self::flush`].
    fn checkpoint(&mut self) -> Result<()> {
        Ok(())
    }

    /// The directory backing this store, if any.
    fn path(&self) -> Option<&Path> {
        None
    }

    /// Storage-layer state for operators (`GET /store`). The default
    /// covers volatile backends: sizes only, everything durable zeroed.
    fn status(&self) -> StorageStatus {
        StorageStatus {
            backend: self.backend_name(),
            triples: self.len(),
            terms: self.term_count(),
            ..StorageStatus::default()
        }
    }

    /// True when the store holds no triples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Infallible [`Self::try_term_at`] for ids the *store itself* just
    /// issued. Panics on foreign ids.
    fn term_at(&self, id: u32) -> Term {
        self.try_term_at(id)
            .unwrap_or_else(|| panic!("term id {id} was never issued by this store"))
    }

    /// Removes every triple matching the pattern; returns how many.
    fn remove_matching(&mut self, pattern: &TriplePattern) -> usize {
        let victims: Vec<Triple> = self.matching(pattern).collect();
        for v in &victims {
            self.remove(v);
        }
        victims.len()
    }

    /// Inserts every triple from an iterator; returns how many were new.
    fn insert_all(&mut self, triples: &mut dyn Iterator<Item = Triple>) -> Result<usize> {
        let mut added = 0;
        for t in triples {
            if self.insert(t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Convenience: all objects of `(subject, predicate, ?)`.
    fn objects(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        self.matching(&TriplePattern::new(subject.clone(), predicate.clone(), None))
            .map(|t| t.object)
            .collect()
    }

    /// Convenience: all subjects of `(?, predicate, object)`.
    fn subjects(&self, predicate: &Term, object: &Term) -> Vec<Term> {
        self.matching(&TriplePattern::new(None, predicate.clone(), object.clone()))
            .map(|t| t.subject)
            .collect()
    }

    /// The first object of `(subject, predicate, ?)` if any.
    fn object(&self, subject: &Term, predicate: &Term) -> Option<Term> {
        self.matching(&TriplePattern::new(subject.clone(), predicate.clone(), None))
            .next()
            .map(|t| t.object)
    }
}

impl Storage for GraphStore {
    fn backend_name(&self) -> &'static str {
        "memory"
    }

    fn len(&self) -> usize {
        GraphStore::len(self)
    }

    fn term_count(&self) -> usize {
        GraphStore::term_count(self)
    }

    fn insert(&mut self, t: Triple) -> Result<bool> {
        self.try_insert(t)
    }

    fn remove(&mut self, t: &Triple) -> bool {
        GraphStore::remove(self, t)
    }

    fn contains(&self, t: &Triple) -> bool {
        GraphStore::contains(self, t)
    }

    fn matching<'a>(&'a self, pattern: &TriplePattern) -> Box<dyn Iterator<Item = Triple> + 'a> {
        GraphStore::matching(self, pattern)
    }

    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = Triple> + 'a> {
        Box::new(GraphStore::iter(self))
    }

    fn id_of(&self, term: &Term) -> Option<u32> {
        GraphStore::id_of(self, term)
    }

    fn try_term_at(&self, id: u32) -> Option<Term> {
        GraphStore::try_term_at(self, id).cloned()
    }

    fn edge_ids<'a>(&'a self, predicate: u32) -> Box<dyn Iterator<Item = (u32, u32)> + 'a> {
        Box::new(GraphStore::edge_ids(self, predicate))
    }

    fn object_ids<'a>(
        &'a self,
        subject: u32,
        predicate: u32,
    ) -> Box<dyn Iterator<Item = u32> + 'a> {
        Box::new(GraphStore::object_ids(self, subject, predicate))
    }

    fn fresh_blank(&mut self) -> Term {
        GraphStore::fresh_blank(self)
    }

    fn clear(&mut self) {
        GraphStore::clear(self)
    }
}

/// Test support: a unique scratch directory removed on drop. Public so
/// downstream crates' backend-equivalence tests can share it (hidden from
/// docs; not a stable API).
#[doc(hidden)]
pub mod test_support {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("qv-store-{tag}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).expect("create scratch dir");
            TempDir(path)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }

        pub fn join(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::TempDir;
    use super::*;
    use crate::term::Literal;
    use crate::triple::Triple;

    fn iri(n: u32) -> Term {
        Term::iri(format!("http://x/{n}"))
    }

    fn tr(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(iri(s), iri(p), iri(o))
    }

    /// Every observable surface of the trait, compared across backends.
    pub(crate) fn assert_equivalent(a: &dyn Storage, b: &dyn Storage) {
        assert_eq!(a.len(), b.len(), "len");
        assert_eq!(a.is_empty(), b.is_empty());
        let ta: Vec<Triple> = a.iter().collect();
        let tb: Vec<Triple> = b.iter().collect();
        assert_eq!(ta, tb, "iter (including SPO id order)");
        // All eight pattern shapes, exercising every index, in index order.
        let subjects: Vec<Option<Term>> = vec![None, ta.first().map(|t| t.subject.clone())];
        for s in &subjects {
            for p in &[None, ta.first().map(|t| t.predicate.clone())] {
                for o in &[None, ta.first().map(|t| t.object.clone())] {
                    let pat = TriplePattern::new(s.clone(), p.clone(), o.clone());
                    let ra: Vec<Triple> = a.matching(&pat).collect();
                    let rb: Vec<Triple> = b.matching(&pat).collect();
                    assert_eq!(ra, rb, "pattern {pat:?}");
                }
            }
        }
        // Id-space scans: ids are intern-ordered on both backends, so the
        // raw id streams must agree wherever both know the term.
        for t in ta.iter().take(4) {
            let (ia, ib) = (a.id_of(&t.predicate), b.id_of(&t.predicate));
            let (ia, ib) = (ia.expect("a knows its own predicate"), ib.expect("b too"));
            assert_eq!(ia, ib, "intern order must agree");
            let ea: Vec<(u32, u32)> = a.edge_ids(ia).collect();
            let eb: Vec<(u32, u32)> = b.edge_ids(ib).collect();
            assert_eq!(ea, eb, "edge_ids({})", t.predicate);
            let sa = a.id_of(&t.subject).unwrap();
            let oa: Vec<u32> = a.object_ids(sa, ia).collect();
            let ob: Vec<u32> = b.object_ids(sa, ia).collect();
            assert_eq!(oa, ob, "object_ids");
        }
        assert_eq!(a.try_term_at(u32::MAX), None, "foreign id on {}", a.backend_name());
        assert_eq!(b.try_term_at(u32::MAX), None, "foreign id on {}", b.backend_name());
    }

    #[test]
    fn status_reports_journal_base_and_compaction_facts() {
        let dir = TempDir::new("status");
        let mut d = DiskBackend::open(dir.path()).unwrap();
        let fresh = d.status();
        assert_eq!(fresh.backend, "disk");
        assert_eq!((fresh.triples, fresh.journal_records, fresh.compactions), (0, 0, 0));
        assert_eq!(fresh.last_compaction_us, None);

        for i in 0..10 {
            d.insert(tr(i, 1, i + 1)).unwrap();
        }
        let dirty = d.status();
        assert_eq!(dirty.triples, 10);
        assert_eq!(dirty.journal_records, 10, "all writes still journaled");
        assert_eq!(dirty.base_triples, 0);
        assert!(dirty.dict_bytes > 0, "dictionary has interned terms");

        d.checkpoint().unwrap();
        let compacted = d.status();
        assert_eq!(compacted.journal_records, 0, "journal truncated");
        assert_eq!(compacted.base_triples, 10, "delta folded into the base");
        assert_eq!(compacted.compactions, 1);
        assert_eq!(compacted.last_compaction_folded, Some(10));
        assert!(compacted.last_compaction_us.is_some());

        // The volatile backend reports sizes only.
        let mut m = GraphStore::new();
        Storage::insert(&mut m, tr(1, 2, 3)).unwrap();
        let mem = Storage::status(&m);
        assert_eq!((mem.backend, mem.triples), ("memory", 1));
        assert_eq!(mem.journal_records, 0);
        assert_eq!(mem.last_compaction_us, None);
    }

    #[test]
    fn disk_backend_basics() {
        let dir = TempDir::new("basics");
        let mut d = DiskBackend::open(dir.path()).unwrap();
        assert_eq!(d.backend_name(), "disk");
        assert!(d.is_empty());
        assert!(d.insert(tr(1, 2, 3)).unwrap());
        assert!(!d.insert(tr(1, 2, 3)).unwrap(), "duplicate insert is a no-op");
        assert!(d.contains(&tr(1, 2, 3)));
        assert_eq!(d.len(), 1);
        assert!(d.remove(&tr(1, 2, 3)));
        assert!(!d.remove(&tr(1, 2, 3)));
        assert!(d.is_empty());
        assert!(d.insert(tr(9, 9, 9)).unwrap());
        d.clear();
        assert!(d.is_empty());
        assert!(d.term_count() > 0, "dictionary survives clear");
    }

    #[test]
    fn ill_formed_insert_is_an_error_not_a_panic() {
        let dir = TempDir::new("illformed");
        let bad = Triple {
            subject: Term::string("lit"),
            predicate: Term::iri("http://x/p"),
            object: Term::string("o"),
        };
        let mut d = DiskBackend::open(dir.path()).unwrap();
        assert!(matches!(d.insert(bad.clone()), Err(crate::RdfError::IllFormed(_))));
        let mut m = GraphStore::new();
        assert!(matches!(Storage::insert(&mut m, bad), Err(crate::RdfError::IllFormed(_))));
    }

    #[test]
    fn literals_survive_reopen() {
        let dir = TempDir::new("literals");
        let exotic = vec![
            Triple::new(iri(1), iri(2), Term::string("plain \"quoted\" text\n")),
            Triple::new(iri(1), iri(3), Term::integer(-42)),
            Triple::new(iri(1), iri(4), Term::double(2.5)),
            Triple::new(iri(1), iri(5), Term::Literal(Literal::lang_string("déjà", "fr"))),
            Triple::new(Term::blank("b0"), iri(6), Term::boolean(true)),
        ];
        {
            let mut d = DiskBackend::open(dir.path()).unwrap();
            for t in &exotic {
                d.insert(t.clone()).unwrap();
            }
            d.flush().unwrap();
        }
        let d = DiskBackend::open(dir.path()).unwrap();
        for t in &exotic {
            assert!(d.contains(t), "missing after reopen: {t}");
        }
        assert_eq!(d.len(), exotic.len());
    }

    #[test]
    fn id_stability_across_clear_checkpoint_and_reopen() {
        let dir = TempDir::new("idstable");
        let term = Term::iri("http://x/stable");
        let id = {
            let mut d = DiskBackend::open(dir.path()).unwrap();
            d.insert(Triple::new(term.clone(), iri(1), iri(2))).unwrap();
            let id = d.id_of(&term).unwrap();
            d.clear();
            d.insert(tr(7, 8, 9)).unwrap();
            assert_eq!(d.id_of(&term), Some(id), "id survives clear");
            d.checkpoint().unwrap();
            assert_eq!(d.id_of(&term), Some(id), "id survives compaction");
            id
        };
        let d = DiskBackend::open(dir.path()).unwrap();
        assert_eq!(d.id_of(&term), Some(id), "id survives reopen");
        assert_eq!(d.try_term_at(id), Some(term));
    }

    #[test]
    fn crash_recovery_restores_exactly_the_acknowledged_writes() {
        let dir = TempDir::new("crash");
        let acked: Vec<Triple> = (0..20).map(|i| tr(i, 100, i + 1)).collect();
        let unacked: Vec<Triple> = (0..5).map(|i| tr(i + 50, 200, i)).collect();
        {
            let mut d = DiskBackend::open(dir.path()).unwrap();
            for t in &acked {
                d.insert(t.clone()).unwrap();
            }
            d.flush().unwrap(); // ← the acknowledgement barrier
            for t in &unacked {
                d.insert(t.clone()).unwrap();
            }
            d.crash(); // no graceful-shutdown flush
        }
        // Simulate the torn tail a mid-write crash leaves: half a record.
        truncate_mid_record(&dir.join("wal.log")).unwrap();
        let d = DiskBackend::open(dir.path()).unwrap();
        for t in &acked {
            assert!(d.contains(t), "acknowledged write lost: {t}");
        }
        // The torn record is gone; any unacked prefix that fully reached
        // the journal may survive. Either way the store is consistent.
        let live: Vec<Triple> = d.iter().collect();
        assert!(live.len() >= acked.len() && live.len() < acked.len() + unacked.len());
        assert_eq!(live.len(), d.len());
        for t in &live {
            assert!(d.contains(t));
        }
        // Replay-then-compact leaves a clean journal behind.
        assert_eq!(std::fs::metadata(dir.join("wal.log")).unwrap().len(), 0);
    }

    #[test]
    fn locked_directory_fails_fast_and_stale_locks_are_stolen() {
        let dir = TempDir::new("lock");
        let d = DiskBackend::open(dir.path()).unwrap();
        match DiskBackend::open(dir.path()) {
            Err(crate::RdfError::Locked { holder, .. }) => {
                assert!(holder.contains(&std::process::id().to_string()));
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(d);
        // A lock whose holder is dead is stolen silently.
        std::fs::write(dir.join("LOCK"), "4294967294").unwrap();
        let d = DiskBackend::open(dir.path()).unwrap();
        drop(d);
        assert!(!dir.join("LOCK").exists(), "lock released on drop");
    }

    #[test]
    fn corrupt_segment_fails_fast_with_a_clear_error() {
        let dir = TempDir::new("corrupt");
        {
            let mut d = DiskBackend::open(dir.path()).unwrap();
            for i in 0..50 {
                d.insert(tr(i, 1, i + 1)).unwrap();
            }
            d.checkpoint().unwrap();
        }
        // Flip a payload byte: checksum must catch it.
        let path = dir.join("base.seg");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match DiskBackend::open(dir.path()) {
            Err(crate::RdfError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Trash the magic: still a clear error, not a panic or empty store.
        std::fs::write(&path, b"garbage-not-a-segment").unwrap();
        match DiskBackend::open(dir.path()) {
            Err(crate::RdfError::Corrupt { detail, .. }) => {
                assert!(detail.contains("magic"), "got: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bulk_loader_builds_an_equivalent_store() {
        let dir = TempDir::new("bulk");
        let mut triples = Vec::new();
        for s in 0..40u32 {
            for p in 0..5u32 {
                triples.push(tr(s, 1000 + p, (s * p) % 17));
            }
        }
        triples.push(tr(0, 1000, 0)); // duplicate: must dedup
        let stats = BulkLoader::new(dir.path())
            .run_capacity(16) // force a real multi-run merge
            .load_triples(triples.clone())
            .unwrap();
        assert_eq!(stats.triples_read, triples.len());
        assert!(stats.runs > 1, "want a multi-run merge, got {}", stats.runs);
        let mem: GraphStore = triples.iter().cloned().collect();
        assert_eq!(stats.triples_stored, mem.len());
        let mut d = DiskBackend::open(dir.path()).unwrap();
        assert_equivalent(&mem, &d);
        // The loaded store accepts further mutations.
        assert!(d.insert(tr(999, 999, 999)).unwrap());
        assert!(d.remove(&tr(0, 1000, 0)));
        d.flush().unwrap();
        // Refusing to load over an existing store is an error, not a wipe.
        drop(d);
        assert!(BulkLoader::new(dir.path()).load_triples(vec![tr(1, 2, 3)]).is_err());
    }

    #[test]
    fn bulk_loader_rejects_hostile_turtle_with_line_context() {
        let dir = TempDir::new("hostile");
        // Literal subject: rejected by the grammar with position info.
        let hostile = "<http://x/ok> <http://x/p> <http://x/o> .\n\"lit\" <http://x/p> 1 .\n";
        match BulkLoader::new(dir.path()).load_turtle(hostile) {
            Err(crate::RdfError::TurtleSyntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected TurtleSyntax at line 2, got {other:?}"),
        }
    }

    #[test]
    fn fresh_blanks_never_collide_across_reopen() {
        let dir = TempDir::new("blank");
        {
            let mut d = DiskBackend::open(dir.path()).unwrap();
            let b = d.fresh_blank();
            d.insert(Triple::new(b, iri(1), iri(2))).unwrap();
            d.flush().unwrap();
        }
        let mut d = DiskBackend::open(dir.path()).unwrap();
        let b2 = d.fresh_blank();
        assert_eq!(d.id_of(&b2), None, "fresh blank must be unused: {b2}");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::test_support::TempDir;
    use super::*;
    use crate::triple::Triple;
    use proptest::prelude::*;

    fn arb_triple() -> impl Strategy<Value = Triple> {
        (0u32..10, 0u32..4, 0u32..10).prop_map(|(s, p, o)| {
            Triple::new(
                Term::iri(format!("http://t/{s}")),
                Term::iri(format!("http://t/p{p}")),
                Term::iri(format!("http://t/{o}")),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// MemoryBackend ≡ DiskBackend under any interleaving of inserts
        /// and removes — including after a flush + reopen cycle.
        #[test]
        fn backends_are_observationally_equivalent(
            ops in proptest::collection::vec((any::<bool>(), arb_triple()), 0..60),
        ) {
            let dir = TempDir::new("prop");
            let mut mem = GraphStore::new();
            let mut disk = DiskBackend::open(dir.path()).unwrap();
            disk.set_auto_compact_records(25); // exercise mid-stream compaction
            for (i, (is_insert, t)) in ops.into_iter().enumerate() {
                if is_insert {
                    let a = Storage::insert(&mut mem, t.clone()).unwrap();
                    let b = disk.insert(t).unwrap();
                    prop_assert_eq!(a, b);
                } else {
                    prop_assert_eq!(Storage::remove(&mut mem, &t), disk.remove(&t));
                }
                if i % 13 == 0 {
                    disk.flush().unwrap();
                }
            }
            super::tests::assert_equivalent(&mem, &disk);
            // Recovery: reopen from disk and compare again.
            disk.flush().unwrap();
            drop(disk);
            let reopened = DiskBackend::open(dir.path()).unwrap();
            super::tests::assert_equivalent(&mem, &reopened);
        }
    }
}
