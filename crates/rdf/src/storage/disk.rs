//! The persistent, dictionary-encoded triple store backend.
//!
//! Layout of a store directory:
//!
//! ```text
//! <dir>/LOCK        pid of the process holding the store
//! <dir>/dict.seg    append-only term dictionary (id = record ordinal)
//! <dir>/base.seg    immutable compacted segment: SPO + POS + OSP runs
//! <dir>/wal.log     write-ahead journal of mutations since the base
//! ```
//!
//! Reads merge the (disk-resident, binary-searched) base segment with an
//! in-memory delta overlay — triples added since the last compaction plus
//! tombstones for deleted base triples — reconstructed from the journal on
//! open. [`DiskBackend::flush`] is the group-commit durability barrier
//! (dictionary fsync, then journal fsync); [`DiskBackend::checkpoint`]
//! folds the delta into a fresh base segment and truncates the journal.

use crate::store::{GraphStore, Key};
use crate::term::Term;
use crate::triple::{PatternTerm, Triple, TriplePattern};
use crate::{RdfError, Result};
use qurator_telemetry::{Counter, Histogram};
use std::collections::BTreeSet;
use std::fs::OpenOptions;
use std::io::Write;
use std::iter::Peekable;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use super::dict::DiskDict;
use super::segment::{sync_dir, BaseSegment, Order, SegmentWriter};
use super::wal::{Wal, OP_ADD, OP_CLEAR, OP_DEL};
use super::{IndexChoice, Storage, StorageStatus};

fn compact_count() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| qurator_telemetry::metrics().counter("store.compact.count"))
}

fn compact_duration() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("store.compact.duration_us"))
}

fn compact_folded() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("store.compact.folded"))
}

/// Refreshes the storage size gauges (base segment triples, dictionary
/// terms and bytes) after open and after every compaction.
fn update_size_gauges(base_triples: u64, dict_terms: u64, dict_bytes: u64) {
    let metrics = qurator_telemetry::metrics();
    metrics.gauge("store.base.triples").set(base_triples as i64);
    metrics.gauge("store.dict.terms").set(dict_terms as i64);
    metrics.gauge("store.dict.bytes").set(dict_bytes as i64);
}

/// Journal records accumulated before `flush` folds the delta into the base
/// segment automatically.
const AUTO_COMPACT_RECORDS: usize = 1 << 16;

/// Holds `<dir>/LOCK` for the lifetime of the backend. A stale lock (holder
/// pid no longer alive) is stolen; a live holder is a fail-fast
/// [`RdfError::Locked`].
#[derive(Debug)]
pub(crate) struct LockGuard {
    path: PathBuf,
}

impl LockGuard {
    pub(crate) fn acquire(dir: &Path) -> Result<LockGuard> {
        let path = dir.join("LOCK");
        for _ in 0..16 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    let _ = f.sync_data();
                    return Ok(LockGuard { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path).unwrap_or_default();
                    match holder.trim().parse::<u32>() {
                        Ok(pid) if pid_alive(pid) => {
                            return Err(RdfError::Locked {
                                path: dir.display().to_string(),
                                holder: format!("pid {pid}"),
                            });
                        }
                        // Stale (dead holder) or unreadable (torn write
                        // during a crash): steal and retry.
                        _ => {
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => {
                    return Err(RdfError::Io(format!("locking store {}: {e}", dir.display())))
                }
            }
        }
        Err(RdfError::Locked { path: dir.display().to_string(), holder: "contention".into() })
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Liveness check for lock stealing. The current process always counts as
/// alive, so double-opening one directory in-process fails fast too.
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        // Without a portable liveness probe, assume the holder died; store
        // dirs are single-writer per host in this codebase.
        false
    }
}

/// In-memory triple-key overlay kept in the same three orders as the base
/// segment so merged scans stay ascending.
#[derive(Debug, Default)]
struct Delta {
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
}

impl Delta {
    fn insert(&mut self, key: Key) -> bool {
        let added = self.spo.insert(key);
        if added {
            self.pos.insert(Order::Pos.to_coords(key));
            self.osp.insert(Order::Osp.to_coords(key));
        }
        added
    }

    fn remove(&mut self, key: Key) -> bool {
        let removed = self.spo.remove(&key);
        if removed {
            self.pos.remove(&Order::Pos.to_coords(key));
            self.osp.remove(&Order::Osp.to_coords(key));
        }
        removed
    }

    fn contains(&self, key: Key) -> bool {
        self.spo.contains(&key)
    }

    fn len(&self) -> usize {
        self.spo.len()
    }

    fn clear(&mut self) {
        self.spo.clear();
        self.pos.clear();
        self.osp.clear();
    }

    fn set(&self, order: Order) -> &BTreeSet<Key> {
        match order {
            Order::Spo => &self.spo,
            Order::Pos => &self.pos,
            Order::Osp => &self.osp,
        }
    }
}

/// Ascending merge of two already-sorted key streams (duplicates collapse).
struct MergeAsc<A: Iterator<Item = Key>, B: Iterator<Item = Key>> {
    a: Peekable<A>,
    b: Peekable<B>,
}

impl<A: Iterator<Item = Key>, B: Iterator<Item = Key>> Iterator for MergeAsc<A, B> {
    type Item = Key;

    fn next(&mut self) -> Option<Key> {
        match (self.a.peek().copied(), self.b.peek().copied()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    self.a.next();
                    if x == y {
                        self.b.next();
                    }
                    Some(x)
                } else {
                    self.b.next();
                    Some(y)
                }
            }
            (Some(_), None) => self.a.next(),
            (None, _) => self.b.next(),
        }
    }
}

/// The disk-backed [`Storage`] implementation.
#[derive(Debug)]
pub struct DiskBackend {
    dir: PathBuf,
    _lock: LockGuard,
    dict: DiskDict,
    base: Option<BaseSegment>,
    /// A `clear()` happened since the last compaction: the base segment is
    /// logically empty (cache-repository semantics keep the dictionary).
    base_cleared: bool,
    /// Triples inserted since the last compaction (disjoint from live base).
    adds: Delta,
    /// Tombstones for base triples deleted since the last compaction.
    dels: Delta,
    wal: Wal,
    live: usize,
    next_blank: u64,
    auto_compact_records: usize,
    crashed: bool,
    /// Compactions performed over this backend's lifetime (including the
    /// replay-then-compact on open).
    compactions: u64,
    last_compaction_us: u64,
    /// Journal records folded into the base by the last compaction.
    last_compaction_folded: u64,
}

impl DiskBackend {
    /// Opens or creates the store at `dir`: acquires the lock, scans the
    /// dictionary, integrity-checks the base segment, replays the journal
    /// into the delta overlay, then compacts if the journal was non-empty
    /// (replay-then-compact) so every open starts from a clean base.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DiskBackend> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| RdfError::Io(format!("creating store dir {}: {e}", dir.display())))?;
        let lock = LockGuard::acquire(&dir)?;
        let dict = DiskDict::open(&dir)?;
        let base = BaseSegment::open(&dir.join("base.seg"), dict.len())?;

        let mut adds = Delta::default();
        let mut dels = Delta::default();
        let mut base_cleared = false;
        {
            // Replay re-applies history against the current base. The apply
            // rules are idempotent, so a journal that predates a compaction
            // crash-interrupted before its truncation replays harmlessly.
            let base_has = |cleared: bool, key: Key| -> bool {
                !cleared && base.as_ref().is_some_and(|b| b.contains(key).unwrap_or(false))
            };
            let wal = Wal::open(&dir.join("wal.log"), dict.len(), |op, key| match op {
                OP_ADD => {
                    if base_has(base_cleared, key) {
                        dels.remove(key);
                    } else {
                        adds.insert(key);
                    }
                }
                OP_DEL => {
                    if adds.contains(key) {
                        adds.remove(key);
                    } else if base_has(base_cleared, key) {
                        dels.insert(key);
                    }
                }
                _ => {
                    base_cleared = true;
                    adds.clear();
                    dels.clear();
                }
            })?;
            let base_live = if base_cleared {
                0
            } else {
                base.as_ref().map_or(0, |b| b.count as usize) - dels.len()
            };
            let live = base_live + adds.len();
            let mut backend = DiskBackend {
                dir,
                _lock: lock,
                dict,
                base,
                base_cleared,
                adds,
                dels,
                wal,
                live,
                next_blank: 0,
                auto_compact_records: AUTO_COMPACT_RECORDS,
                crashed: false,
                compactions: 0,
                last_compaction_us: 0,
                last_compaction_folded: 0,
            };
            if backend.wal.records > 0 {
                backend.compact()?;
            } else {
                update_size_gauges(
                    backend.base.as_ref().map_or(0, |b| b.count),
                    backend.dict.len() as u64,
                    backend.dict.bytes(),
                );
            }
            Ok(backend)
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lowers the auto-compaction threshold (tests exercise compaction
    /// without writing 64k records).
    pub fn set_auto_compact_records(&mut self, records: usize) {
        self.auto_compact_records = records.max(1);
    }

    /// Simulates a crash for recovery tests: drops the backend without the
    /// graceful-shutdown fsync and releases the lock the way a dead pid
    /// would (the next open steals it).
    #[doc(hidden)]
    pub fn crash(mut self) {
        self.crashed = true;
    }

    fn base_has(&self, key: Key) -> Result<bool> {
        if self.base_cleared {
            return Ok(false);
        }
        match &self.base {
            Some(b) => b.contains(key),
            None => Ok(false),
        }
    }

    fn contains_key(&self, key: Key) -> Result<bool> {
        if self.adds.contains(key) {
            return Ok(true);
        }
        Ok(self.base_has(key)? && !self.dels.contains(key))
    }

    /// Merged ascending scan of one ordering with `GraphStore::scan`
    /// bound-prefix semantics, in that ordering's coordinates.
    fn scan_order(
        &self,
        order: Order,
        k0: Option<u32>,
        k1: Option<u32>,
        k2: Option<u32>,
    ) -> impl Iterator<Item = Key> + '_ {
        let base: Box<dyn Iterator<Item = Key> + '_> = match (&self.base, self.base_cleared) {
            (Some(b), false) => Box::new(b.scan(order, k0, k1)),
            _ => Box::new(std::iter::empty()),
        };
        let delta = GraphStore::scan(self.adds.set(order), k0, k1, k2);
        MergeAsc { a: base.peekable(), b: delta.peekable() }
            .filter(move |&(a, b, c)| {
                k0.is_none_or(|k| k == a) && k1.is_none_or(|k| k == b) && k2.is_none_or(|k| k == c)
            })
            .filter(move |&row| !self.dels.contains(order.spo_from_coords(row)))
    }

    fn decode(&self, key: Key) -> Option<Triple> {
        Some(Triple {
            subject: self.dict.term(key.0)?,
            predicate: self.dict.term(key.1)?,
            object: self.dict.term(key.2)?,
        })
    }

    fn apply_add(&mut self, key: Key) -> Result<()> {
        if self.base_has(key)? {
            self.dels.remove(key);
        } else {
            self.adds.insert(key);
        }
        Ok(())
    }

    fn apply_del(&mut self, key: Key) -> Result<()> {
        if self.adds.contains(key) {
            self.adds.remove(key);
        } else if self.base_has(key)? {
            self.dels.insert(key);
        }
        Ok(())
    }

    /// Rewrites the base segment from the merged live set and truncates the
    /// journal. Durability order: dictionary → new segment → journal reset,
    /// so a crash at any point replays to the same state.
    fn compact(&mut self) -> Result<()> {
        let started = Instant::now();
        let folded = self.wal.records as u64;
        self.dict.flush()?;
        self.wal.flush()?;
        let count = self.live as u64;
        let target = self.dir.join("base.seg");
        let mut writer = SegmentWriter::create(&target)?;
        for order in Order::ALL {
            for row in self.scan_order(order, None, None, None) {
                writer.push(row)?;
            }
        }
        writer.finish(count)?;
        self.base = BaseSegment::open(&target, self.dict.len())?;
        self.base_cleared = false;
        self.adds.clear();
        self.dels.clear();
        self.wal.reset()?;
        sync_dir(&self.dir)?;
        let duration_us = started.elapsed().as_micros() as u64;
        self.compactions += 1;
        self.last_compaction_us = duration_us;
        self.last_compaction_folded = folded;
        compact_count().inc();
        compact_duration().record(duration_us);
        compact_folded().record(folded);
        update_size_gauges(
            self.base.as_ref().map_or(0, |b| b.count),
            self.dict.len() as u64,
            self.dict.bytes(),
        );
        Ok(())
    }
}

impl Drop for DiskBackend {
    fn drop(&mut self) {
        if !self.crashed {
            let _ = self.dict.flush();
            let _ = self.wal.flush();
        }
    }
}

impl Storage for DiskBackend {
    fn backend_name(&self) -> &'static str {
        "disk"
    }

    fn len(&self) -> usize {
        self.live
    }

    fn term_count(&self) -> usize {
        self.dict.len()
    }

    fn insert(&mut self, t: Triple) -> Result<bool> {
        if !t.is_well_formed() {
            return Err(RdfError::IllFormed(t.to_string()));
        }
        let key = (
            self.dict.intern(&t.subject)?,
            self.dict.intern(&t.predicate)?,
            self.dict.intern(&t.object)?,
        );
        if self.contains_key(key)? {
            return Ok(false);
        }
        self.wal.append(OP_ADD, key)?;
        self.apply_add(key)?;
        self.live += 1;
        Ok(true)
    }

    fn remove(&mut self, t: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.lookup(&t.subject),
            self.dict.lookup(&t.predicate),
            self.dict.lookup(&t.object),
        ) else {
            return false;
        };
        let key = (s, p, o);
        if !self.contains_key(key).unwrap_or(false) {
            return false;
        }
        if self.wal.append(OP_DEL, key).is_err() || self.apply_del(key).is_err() {
            return false;
        }
        self.live -= 1;
        true
    }

    fn contains(&self, t: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.lookup(&t.subject),
            self.dict.lookup(&t.predicate),
            self.dict.lookup(&t.object),
        ) else {
            return false;
        };
        self.contains_key((s, p, o)).unwrap_or(false)
    }

    fn matching<'a>(&'a self, pattern: &TriplePattern) -> Box<dyn Iterator<Item = Triple> + 'a> {
        let resolve = |pt: &PatternTerm| -> std::result::Result<Option<u32>, ()> {
            match pt.as_term() {
                None => Ok(None),
                Some(t) => self.dict.lookup(t).map(Some).ok_or(()),
            }
        };
        let (s, p, o) = match (
            resolve(&pattern.subject),
            resolve(&pattern.predicate),
            resolve(&pattern.object),
        ) {
            (Ok(s), Ok(p), Ok(o)) => (s, p, o),
            _ => return Box::new(std::iter::empty()),
        };
        let (order, k) = match GraphStore::index_for(pattern) {
            IndexChoice::Spo => (Order::Spo, (s, p, o)),
            IndexChoice::Pos => (Order::Pos, (p, o, s)),
            IndexChoice::Osp => (Order::Osp, (o, s, p)),
        };
        Box::new(
            self.scan_order(order, k.0, k.1, k.2)
                .filter_map(move |row| self.decode(order.spo_from_coords(row))),
        )
    }

    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = Triple> + 'a> {
        Box::new(self.scan_order(Order::Spo, None, None, None).filter_map(|key| self.decode(key)))
    }

    fn id_of(&self, term: &Term) -> Option<u32> {
        self.dict.lookup(term)
    }

    fn try_term_at(&self, id: u32) -> Option<Term> {
        self.dict.term(id)
    }

    fn edge_ids<'a>(&'a self, predicate: u32) -> Box<dyn Iterator<Item = (u32, u32)> + 'a> {
        Box::new(self.scan_order(Order::Pos, Some(predicate), None, None).map(|(_, o, s)| (s, o)))
    }

    fn object_ids<'a>(
        &'a self,
        subject: u32,
        predicate: u32,
    ) -> Box<dyn Iterator<Item = u32> + 'a> {
        Box::new(
            self.scan_order(Order::Spo, Some(subject), Some(predicate), None).map(|(_, _, o)| o),
        )
    }

    fn fresh_blank(&mut self) -> Term {
        loop {
            let t = Term::blank(format!("g{}", self.next_blank));
            self.next_blank += 1;
            if self.dict.lookup(&t).is_none() {
                return t;
            }
        }
    }

    fn clear(&mut self) {
        if self.live == 0 && !self.base_cleared {
            return;
        }
        if self.wal.append(OP_CLEAR, (0, 0, 0)).is_ok() {
            self.base_cleared = true;
            self.adds.clear();
            self.dels.clear();
            self.live = 0;
        }
    }

    fn flush(&mut self) -> Result<()> {
        if self.wal.records >= self.auto_compact_records {
            return self.compact();
        }
        self.dict.flush()?;
        self.wal.flush()
    }

    fn checkpoint(&mut self) -> Result<()> {
        self.compact()
    }

    fn path(&self) -> Option<&Path> {
        Some(&self.dir)
    }

    fn status(&self) -> StorageStatus {
        StorageStatus {
            backend: "disk",
            triples: self.live,
            terms: self.dict.len(),
            journal_records: self.wal.records,
            base_triples: if self.base_cleared {
                0
            } else {
                self.base.as_ref().map_or(0, |b| b.count)
            },
            dict_bytes: self.dict.bytes(),
            compactions: self.compactions,
            last_compaction_us: (self.compactions > 0).then_some(self.last_compaction_us),
            last_compaction_folded: (self.compactions > 0).then_some(self.last_compaction_folded),
        }
    }
}
