//! Streaming bulk loader: Turtle → a fully-built disk store, without ever
//! materializing the graph in RAM.
//!
//! The loader interns terms straight into the persistent dictionary as
//! triples stream out of the parser, buffers fixed-width id rows up to a
//! run capacity, and spills each full buffer as three sorted runs (SPO /
//! POS / OSP). At the end the runs are k-way merged (with deduplication)
//! directly into an immutable base segment. Peak memory is the dictionary's
//! hash index plus one run buffer — far below the three-BTreeSet in-memory
//! store the same corpus would need.

use crate::store::Key;
use crate::triple::Triple;
use crate::turtle;
use crate::{RdfError, Result};
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use super::dict::DiskDict;
use super::segment::{sync_dir, Order, SegmentWriter};

/// Rows buffered before spilling a sorted run (12 bytes each → ~3 MiB).
const DEFAULT_RUN_CAPACITY: usize = 256 * 1024;

/// What a bulk load did, for logs and benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct BulkLoadStats {
    /// Triples parsed from the input (including duplicates).
    pub triples_read: usize,
    /// Distinct triples written to the base segment.
    pub triples_stored: usize,
    /// Terms interned into the dictionary.
    pub terms: usize,
    /// Sorted runs spilled per ordering.
    pub runs: usize,
}

/// Builds a fresh [`super::DiskBackend`] directory from streamed triples.
pub struct BulkLoader {
    dir: PathBuf,
    run_capacity: usize,
}

impl BulkLoader {
    pub fn new(dir: impl Into<PathBuf>) -> BulkLoader {
        BulkLoader { dir: dir.into(), run_capacity: DEFAULT_RUN_CAPACITY }
    }

    /// Overrides the spill threshold (tests exercise multi-run merges with
    /// small corpora).
    pub fn run_capacity(mut self, rows: usize) -> BulkLoader {
        self.run_capacity = rows.max(16);
        self
    }

    /// Loads a Turtle document (as text) into the target directory.
    /// Parse errors and ill-formed triples carry line/column context.
    pub fn load_turtle(&self, input: &str) -> Result<BulkLoadStats> {
        let mut ingest = Ingest::begin(&self.dir, self.run_capacity)?;
        let mut sink = |t: Triple| ingest.push(t);
        turtle::parse_each(input, &mut sink)?;
        ingest.finish()
    }

    /// Loads triples from any iterator (generated corpora, migrations).
    pub fn load_triples(&self, triples: impl IntoIterator<Item = Triple>) -> Result<BulkLoadStats> {
        let mut ingest = Ingest::begin(&self.dir, self.run_capacity)?;
        for t in triples {
            ingest.push(t)?;
        }
        ingest.finish()
    }
}

struct Ingest {
    dir: PathBuf,
    _lock: super::disk::LockGuard,
    dict: DiskDict,
    buffer: Vec<Key>,
    run_capacity: usize,
    runs: usize,
    stats: BulkLoadStats,
}

impl Ingest {
    fn begin(dir: &Path, run_capacity: usize) -> Result<Ingest> {
        std::fs::create_dir_all(dir)
            .map_err(|e| RdfError::Io(format!("creating store dir {}: {e}", dir.display())))?;
        for existing in ["base.seg", "wal.log"] {
            if dir.join(existing).exists() {
                return Err(RdfError::Io(format!(
                    "refusing to bulk-load into {}: {existing} already exists \
                     (bulk load builds a store from scratch)",
                    dir.display()
                )));
            }
        }
        // Hold the store lock for the duration of the load.
        let lock = super::disk::LockGuard::acquire(dir)?;
        let dict = DiskDict::open(dir)?;
        Ok(Ingest {
            dir: dir.to_path_buf(),
            _lock: lock,
            dict,
            buffer: Vec::with_capacity(run_capacity.min(1 << 20)),
            run_capacity,
            runs: 0,
            stats: BulkLoadStats::default(),
        })
    }

    fn push(&mut self, t: Triple) -> Result<()> {
        if !t.is_well_formed() {
            return Err(RdfError::IllFormed(t.to_string()));
        }
        let key = (
            self.dict.intern(&t.subject)?,
            self.dict.intern(&t.predicate)?,
            self.dict.intern(&t.object)?,
        );
        self.buffer.push(key);
        self.stats.triples_read += 1;
        if self.buffer.len() >= self.run_capacity {
            self.spill()?;
        }
        Ok(())
    }

    fn run_path(&self, order: Order, n: usize) -> PathBuf {
        let tag = match order {
            Order::Spo => "spo",
            Order::Pos => "pos",
            Order::Osp => "osp",
        };
        self.dir.join(format!("run-{tag}-{n}.tmp"))
    }

    /// Sorts the buffer in each ordering and writes three run files.
    fn spill(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        for order in Order::ALL {
            let mut rows: Vec<Key> = self.buffer.iter().map(|&k| order.to_coords(k)).collect();
            rows.sort_unstable();
            rows.dedup();
            let path = self.run_path(order, self.runs);
            let file = File::create(&path)
                .map_err(|e| RdfError::Io(format!("creating run {}: {e}", path.display())))?;
            let mut w = BufWriter::with_capacity(1 << 16, file);
            for (a, b, c) in rows {
                let mut buf = [0u8; 12];
                buf[0..4].copy_from_slice(&a.to_le_bytes());
                buf[4..8].copy_from_slice(&b.to_le_bytes());
                buf[8..12].copy_from_slice(&c.to_le_bytes());
                w.write_all(&buf)
                    .map_err(|e| RdfError::Io(format!("writing run {}: {e}", path.display())))?;
            }
            w.flush().map_err(|e| RdfError::Io(format!("writing run {}: {e}", path.display())))?;
        }
        self.buffer.clear();
        self.runs += 1;
        Ok(())
    }

    fn finish(mut self) -> Result<BulkLoadStats> {
        self.spill()?;
        self.dict.flush()?;
        let target = self.dir.join("base.seg");
        let mut writer = SegmentWriter::create(&target)?;
        let mut count: Option<u64> = None;
        for order in Order::ALL {
            let readers = (0..self.runs)
                .map(|n| {
                    let path = self.run_path(order, n);
                    File::open(&path)
                        .map(|f| BufReader::with_capacity(1 << 16, f))
                        .map_err(|e| RdfError::Io(format!("opening run {}: {e}", path.display())))
                })
                .collect::<Result<Vec<_>>>()?;
            let mut written = 0u64;
            let mut merge = KWayMerge::new(readers);
            while let Some(row) = merge.next_row()? {
                writer.push(row)?;
                written += 1;
            }
            match count {
                None => count = Some(written),
                Some(c) => assert_eq!(c, written, "orderings disagree on triple count"),
            }
        }
        let count = count.unwrap_or(0);
        writer.finish(count)?;
        // An empty journal marks the store complete and replay-clean.
        std::fs::write(self.dir.join("wal.log"), [])
            .map_err(|e| RdfError::Io(format!("creating journal: {e}")))?;
        sync_dir(&self.dir)?;
        for order in Order::ALL {
            for n in 0..self.runs {
                let _ = std::fs::remove_file(self.run_path(order, n));
            }
        }
        self.stats.triples_stored = count as usize;
        self.stats.terms = self.dict.len();
        self.stats.runs = self.runs;
        Ok(self.stats)
    }
}

/// K-way ascending merge over sorted 12-byte-row run files, deduplicating.
struct KWayMerge {
    readers: Vec<BufReader<File>>,
    heap: BinaryHeap<std::cmp::Reverse<(Key, usize)>>,
    last: Option<Key>,
    primed: bool,
}

impl KWayMerge {
    fn new(readers: Vec<BufReader<File>>) -> KWayMerge {
        KWayMerge { readers, heap: BinaryHeap::new(), last: None, primed: false }
    }

    fn read_row(reader: &mut BufReader<File>) -> Result<Option<Key>> {
        let mut buf = [0u8; 12];
        let mut got = 0;
        while got < 12 {
            let n = reader
                .read(&mut buf[got..])
                .map_err(|e| RdfError::Io(format!("reading run file: {e}")))?;
            if n == 0 {
                if got == 0 {
                    return Ok(None);
                }
                return Err(RdfError::Io("run file truncated mid-row".into()));
            }
            got += n;
        }
        Ok(Some((
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            u32::from_le_bytes(buf[8..12].try_into().unwrap()),
        )))
    }

    fn next_row(&mut self) -> Result<Option<Key>> {
        if !self.primed {
            self.primed = true;
            for i in 0..self.readers.len() {
                if let Some(row) = Self::read_row(&mut self.readers[i])? {
                    self.heap.push(std::cmp::Reverse((row, i)));
                }
            }
        }
        while let Some(std::cmp::Reverse((row, i))) = self.heap.pop() {
            if let Some(next) = Self::read_row(&mut self.readers[i])? {
                self.heap.push(std::cmp::Reverse((next, i)));
            }
            if self.last != Some(row) {
                self.last = Some(row);
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}
