//! Write-ahead journal for [`super::DiskBackend`] mutations.
//!
//! Fixed 17-byte records: `op(u8) · s,p,o (u32 LE each) · crc32(u32 LE)`
//! where the checksum covers the first 13 bytes. Appends go straight to the
//! file (group commit defers only the fsync: [`Wal::flush`] is the
//! durability barrier). Replay on open stops at the first invalid record
//! and truncates there — because the dictionary is always fsynced *before*
//! the journal, an acknowledged record can never follow a torn one.

use crate::store::Key;
use crate::{RdfError, Result};
use qurator_telemetry::Histogram;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use super::codec::crc32;
use super::segment::io_err;

fn append_latency() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("store.wal.append_ns"))
}

fn fsync_latency() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("store.wal.fsync_ns"))
}

fn batch_records() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("store.wal.batch_records"))
}

pub(crate) const OP_ADD: u8 = 1;
pub(crate) const OP_DEL: u8 = 2;
pub(crate) const OP_CLEAR: u8 = 3;

const RECORD_LEN: usize = 17;

#[derive(Debug)]
pub(crate) struct Wal {
    file: File,
    path: PathBuf,
    dirty: bool,
    /// Records currently in the journal (drives compaction thresholds).
    pub records: usize,
    /// Records appended since the last durability barrier — the group-commit
    /// batch size reported to `store.wal.batch_records` on each fsync.
    pending: usize,
}

impl Wal {
    /// Opens (creating if absent) the journal and replays every valid
    /// record through `apply`. Records whose term ids fall outside the
    /// dictionary (`dict_len`) are torn tails from a crash between the two
    /// fsyncs and truncate the journal exactly like a bad checksum.
    pub fn open(path: &Path, dict_len: usize, mut apply: impl FnMut(u8, Key)) -> Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("opening journal", path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err("reading journal", path, e))?;
        let mut good = 0usize;
        let mut records = 0usize;
        for chunk in bytes.chunks(RECORD_LEN) {
            let Some(record) = decode_record(chunk) else { break };
            let (op, key) = record;
            if op != OP_CLEAR {
                let (s, p, o) = key;
                if s as usize >= dict_len || p as usize >= dict_len || o as usize >= dict_len {
                    break;
                }
            }
            apply(op, key);
            good += RECORD_LEN;
            records += 1;
        }
        if good < bytes.len() {
            file.set_len(good as u64).map_err(|e| io_err("truncating journal", path, e))?;
        }
        file.seek(SeekFrom::Start(good as u64)).map_err(|e| io_err("seeking journal", path, e))?;
        Ok(Wal { file, path: path.to_path_buf(), dirty: false, records, pending: 0 })
    }

    /// Appends one record (not yet durable — see [`Self::flush`]).
    pub fn append(&mut self, op: u8, key: Key) -> Result<()> {
        let started = Instant::now();
        let buf = encode_record(op, key);
        self.file.write_all(&buf).map_err(|e| io_err("appending to journal", &self.path, e))?;
        append_latency().record(started.elapsed().as_nanos() as u64);
        self.dirty = true;
        self.records += 1;
        self.pending += 1;
        Ok(())
    }

    /// Durability barrier: fsyncs pending appends.
    pub fn flush(&mut self) -> Result<()> {
        if self.dirty {
            let started = Instant::now();
            self.file.sync_data().map_err(|e| io_err("syncing journal", &self.path, e))?;
            fsync_latency().record(started.elapsed().as_nanos() as u64);
            batch_records().record(self.pending as u64);
            self.dirty = false;
            self.pending = 0;
        }
        Ok(())
    }

    /// Empties the journal after a successful compaction made it redundant.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0).map_err(|e| io_err("truncating journal", &self.path, e))?;
        self.file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seeking journal", &self.path, e))?;
        self.file.sync_data().map_err(|e| io_err("syncing journal", &self.path, e))?;
        self.dirty = false;
        self.records = 0;
        self.pending = 0;
        Ok(())
    }
}

fn encode_record(op: u8, (s, p, o): Key) -> [u8; RECORD_LEN] {
    let mut buf = [0u8; RECORD_LEN];
    buf[0] = op;
    buf[1..5].copy_from_slice(&s.to_le_bytes());
    buf[5..9].copy_from_slice(&p.to_le_bytes());
    buf[9..13].copy_from_slice(&o.to_le_bytes());
    let crc = crc32(&buf[..13]);
    buf[13..17].copy_from_slice(&crc.to_le_bytes());
    buf
}

fn decode_record(chunk: &[u8]) -> Option<(u8, Key)> {
    if chunk.len() != RECORD_LEN {
        return None;
    }
    let crc = u32::from_le_bytes(chunk[13..17].try_into().unwrap());
    if crc32(&chunk[..13]) != crc {
        return None;
    }
    let op = chunk[0];
    if !matches!(op, OP_ADD | OP_DEL | OP_CLEAR) {
        return None;
    }
    let key = (
        u32::from_le_bytes(chunk[1..5].try_into().unwrap()),
        u32::from_le_bytes(chunk[5..9].try_into().unwrap()),
        u32::from_le_bytes(chunk[9..13].try_into().unwrap()),
    );
    Some((op, key))
}

/// Exposed to the crash-recovery tests: `RdfError::Io` if the journal at
/// `path` cannot be truncated to simulate a torn tail.
#[doc(hidden)]
pub fn truncate_mid_record(path: &Path) -> std::result::Result<(), RdfError> {
    let len = std::fs::metadata(path).map_err(|e| io_err("reading metadata of", path, e))?.len();
    if len < RECORD_LEN as u64 {
        return Ok(());
    }
    let torn = len - (RECORD_LEN as u64 / 2);
    let file = OpenOptions::new().write(true).open(path).map_err(|e| io_err("opening", path, e))?;
    file.set_len(torn).map_err(|e| io_err("truncating", path, e))?;
    Ok(())
}
