//! Byte-level encoding shared by the disk backend's files: the term codec
//! for dictionary records, a streaming CRC-32 (IEEE) for integrity checks,
//! and FNV-1a for the dictionary's hash→id index.

use crate::term::{Iri, Literal, Term};

const TAG_IRI: u8 = 1;
const TAG_BLANK: u8 = 2;
const TAG_LITERAL: u8 = 3;

/// Appends the canonical byte encoding of a term to `out`.
///
/// Layout: one tag byte, then length-prefixed (`u32` LE) UTF-8 strings —
/// IRI/blank carry one string, literals carry lexical + datatype + an
/// optional language tag behind a presence byte. The encoding is injective,
/// so byte equality ⇔ term equality (the dictionary dedups on it).
pub(crate) fn encode_term(term: &Term, out: &mut Vec<u8>) {
    match term {
        Term::Iri(iri) => {
            out.push(TAG_IRI);
            push_str(out, iri.as_str());
        }
        Term::Blank(b) => {
            out.push(TAG_BLANK);
            push_str(out, b.label());
        }
        Term::Literal(l) => {
            out.push(TAG_LITERAL);
            push_str(out, l.lexical());
            push_str(out, l.datatype().as_str());
            match l.lang() {
                Some(lang) => {
                    out.push(1);
                    push_str(out, lang);
                }
                None => out.push(0),
            }
        }
    }
}

/// Decodes a term encoded by [`encode_term`]; `None` on any malformed
/// payload (truncated lengths, bad UTF-8, unknown tag).
pub(crate) fn decode_term(bytes: &[u8]) -> Option<Term> {
    let (&tag, mut rest) = bytes.split_first()?;
    let term = match tag {
        TAG_IRI => Term::Iri(Iri::new(take_str(&mut rest)?)),
        TAG_BLANK => Term::blank(take_str(&mut rest)?),
        TAG_LITERAL => {
            let lexical = take_str(&mut rest)?;
            let datatype = take_str(&mut rest)?;
            let (&has_lang, mut tail) = rest.split_first()?;
            let term = match has_lang {
                0 => Term::Literal(Literal::typed(lexical, Iri::new(datatype))),
                1 => Term::Literal(Literal::lang_string(lexical, take_str(&mut tail)?)),
                _ => return None,
            };
            rest = tail;
            term
        }
        _ => return None,
    };
    if !rest.is_empty() {
        return None;
    }
    Some(term)
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_str<'a>(rest: &mut &'a [u8]) -> Option<&'a str> {
    let (len_bytes, tail) = rest.split_at_checked(4)?;
    let len = u32::from_le_bytes(len_bytes.try_into().ok()?) as usize;
    let (s, tail) = tail.split_at_checked(len)?;
    *rest = tail;
    std::str::from_utf8(s).ok()
}

/// FNV-1a over the canonical term encoding (the dictionary's bucket key).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Streaming CRC-32 (IEEE 802.3) used by dictionary/WAL records and segment
/// payloads.
#[derive(Debug, Clone)]
pub(crate) struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Self {
        Crc32(0xffff_ffff)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = CRC_TABLE[((self.0 ^ b as u32) & 0xff) as usize] ^ (self.0 >> 8);
        }
    }

    pub fn finish(&self) -> u32 {
        self.0 ^ 0xffff_ffff
    }
}

/// One-shot CRC-32 of a byte slice.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn term_codec_roundtrips() {
        let terms = [
            Term::iri("http://example.org/a"),
            Term::blank("b0"),
            Term::string("plain"),
            Term::integer(42),
            Term::double(1.5),
            Term::boolean(true),
            Term::Literal(Literal::lang_string("bonjour", "fr")),
            Term::Literal(Literal::typed(
                "P1Y",
                Iri::new("http://www.w3.org/2001/XMLSchema#duration"),
            )),
        ];
        for t in &terms {
            let mut buf = Vec::new();
            encode_term(t, &mut buf);
            assert_eq!(decode_term(&buf).as_ref(), Some(t), "roundtrip {t}");
        }
    }

    #[test]
    fn truncated_payloads_decode_to_none() {
        let mut buf = Vec::new();
        encode_term(&Term::iri("http://example.org/long-enough"), &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode_term(&buf[..cut]), None, "cut at {cut}");
        }
        assert_eq!(decode_term(&[9, 0, 0, 0, 0]), None, "unknown tag");
    }
}
