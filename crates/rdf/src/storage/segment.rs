//! Immutable base segments: the compacted triple file behind [`super::DiskBackend`].
//!
//! One `base.seg` holds the full triple set three times, as fixed-width
//! 12-byte rows (`3 × u32` LE) sorted in SPO, POS and OSP coordinate order —
//! the on-disk mirror of `GraphStore`'s three BTreeSet indexes. Readers keep
//! nothing in RAM: point lookups binary-search with `pread`, range scans
//! stream rows in chunks. The file is written once (bulk load or
//! compaction), renamed into place, and never mutated.

use crate::store::Key;
use crate::{RdfError, Result};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::codec::Crc32;

/// `base.seg` magic + format version.
const MAGIC: &[u8; 8] = b"QVBASE1\n";
/// Header: magic (8) + count (u64 LE) + payload crc32 (u32 LE).
const HEADER_LEN: u64 = 8 + 8 + 4;
const ROW_LEN: u64 = 12;
/// Rows fetched per read during a range scan.
const SCAN_CHUNK_ROWS: usize = 2048;

/// The three sort orders of a segment. Rows are stored in *coordinate*
/// order: a POS row is `(p, o, s)`, an OSP row `(o, s, p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Order {
    Spo,
    Pos,
    Osp,
}

impl Order {
    pub const ALL: [Order; 3] = [Order::Spo, Order::Pos, Order::Osp];

    /// Permutes an SPO key into this order's coordinates.
    pub fn to_coords(self, (s, p, o): Key) -> Key {
        match self {
            Order::Spo => (s, p, o),
            Order::Pos => (p, o, s),
            Order::Osp => (o, s, p),
        }
    }

    /// Recovers the SPO key from this order's coordinates.
    pub fn spo_from_coords(self, (a, b, c): Key) -> Key {
        match self {
            Order::Spo => (a, b, c),
            Order::Pos => (c, a, b),
            Order::Osp => (b, c, a),
        }
    }

    fn index(self) -> u64 {
        match self {
            Order::Spo => 0,
            Order::Pos => 1,
            Order::Osp => 2,
        }
    }
}

/// A file handle supporting positioned reads from `&self`.
#[derive(Debug)]
pub(crate) struct ReadFile {
    pub file: File,
    #[cfg(not(unix))]
    seek_lock: std::sync::Mutex<()>,
}

impl ReadFile {
    pub fn new(file: File) -> Self {
        ReadFile {
            file,
            #[cfg(not(unix))]
            seek_lock: std::sync::Mutex::new(()),
        }
    }

    #[cfg(unix)]
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)
    }

    #[cfg(not(unix))]
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        let _guard = self.seek_lock.lock().unwrap_or_else(|p| p.into_inner());
        let mut f = &self.file;
        let saved = f.stream_position()?;
        f.seek(SeekFrom::Start(offset))?;
        let res = f.read_exact(buf);
        f.seek(SeekFrom::Start(saved))?;
        res
    }
}

pub(crate) fn io_err(context: &str, path: &Path, e: std::io::Error) -> RdfError {
    RdfError::Io(format!("{context} {}: {e}", path.display()))
}

fn corrupt(path: &Path, detail: impl Into<String>) -> RdfError {
    RdfError::Corrupt { path: path.display().to_string(), detail: detail.into() }
}

fn decode_row(buf: &[u8]) -> Key {
    (
        u32::from_le_bytes(buf[0..4].try_into().unwrap()),
        u32::from_le_bytes(buf[4..8].try_into().unwrap()),
        u32::from_le_bytes(buf[8..12].try_into().unwrap()),
    )
}

fn encode_row((a, b, c): Key, buf: &mut [u8; 12]) {
    buf[0..4].copy_from_slice(&a.to_le_bytes());
    buf[4..8].copy_from_slice(&b.to_le_bytes());
    buf[8..12].copy_from_slice(&c.to_le_bytes());
}

/// An opened, integrity-checked base segment.
#[derive(Debug)]
pub(crate) struct BaseSegment {
    file: ReadFile,
    path: PathBuf,
    pub count: u64,
}

impl BaseSegment {
    /// Opens `path` if it exists, verifying magic, size, payload checksum
    /// and that every row's term ids resolve inside a dictionary of
    /// `dict_len` terms. Any mismatch is [`RdfError::Corrupt`]: this is the
    /// trust boundary where disk bytes re-enter the id space.
    pub fn open(path: &Path, dict_len: usize) -> Result<Option<BaseSegment>> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("opening segment", path, e)),
        };
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header).map_err(|_| corrupt(path, "truncated header"))?;
        if &header[0..8] != MAGIC {
            return Err(corrupt(path, "bad magic (not a qv base segment)"));
        }
        let count = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let expected_crc = u32::from_le_bytes(header[16..20].try_into().unwrap());
        let expected_len = HEADER_LEN + count * 3 * ROW_LEN;
        let actual_len = file.metadata().map_err(|e| io_err("reading metadata of", path, e))?.len();
        if actual_len != expected_len {
            return Err(corrupt(
                path,
                format!("size {actual_len} does not match header count {count}"),
            ));
        }
        // One sequential pass: checksum the payload and bound-check ids.
        let mut crc = Crc32::new();
        let mut buf = vec![0u8; SCAN_CHUNK_ROWS * ROW_LEN as usize];
        let mut remaining = (count * 3 * ROW_LEN) as usize;
        while remaining > 0 {
            let take = remaining.min(buf.len());
            let chunk = &mut buf[..take];
            file.read_exact(chunk).map_err(|e| io_err("reading segment", path, e))?;
            crc.update(chunk);
            for row in chunk.chunks_exact(ROW_LEN as usize) {
                let (a, b, c) = decode_row(row);
                if a as usize >= dict_len || b as usize >= dict_len || c as usize >= dict_len {
                    return Err(corrupt(
                        path,
                        format!("row references term id beyond dictionary ({dict_len} terms)"),
                    ));
                }
            }
            remaining -= take;
        }
        if crc.finish() != expected_crc {
            return Err(corrupt(path, "payload checksum mismatch"));
        }
        Ok(Some(BaseSegment { file: ReadFile::new(file), path: path.to_path_buf(), count }))
    }

    fn order_offset(&self, order: Order) -> u64 {
        HEADER_LEN + order.index() * self.count * ROW_LEN
    }

    /// The `i`-th row of an ordering, in that ordering's coordinates.
    fn row(&self, order: Order, i: u64) -> Result<Key> {
        let mut buf = [0u8; ROW_LEN as usize];
        self.file
            .read_exact_at(&mut buf, self.order_offset(order) + i * ROW_LEN)
            .map_err(|e| io_err("reading row from", &self.path, e))?;
        Ok(decode_row(&buf))
    }

    /// First row index whose key is `>= probe` (standard partition point).
    fn lower_bound(&self, order: Order, probe: Key) -> Result<u64> {
        let (mut lo, mut hi) = (0u64, self.count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.row(order, mid)? < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Exact-match membership via binary search on the SPO ordering.
    pub fn contains(&self, key: Key) -> Result<bool> {
        let at = self.lower_bound(Order::Spo, key)?;
        Ok(at < self.count && self.row(Order::Spo, at)? == key)
    }

    /// Streams rows of `order` within the bound-prefix range, in ascending
    /// coordinate order. `k0..k2` follow the same semantics as
    /// `GraphStore::scan`: a bound prefix narrows the range, later bound
    /// positions are filtered by the caller.
    pub fn scan(&self, order: Order, k0: Option<u32>, k1: Option<u32>) -> SegmentScan<'_> {
        let (lo, hi) = match (k0, k1) {
            (Some(a), Some(b)) => ((a, b, u32::MIN), (a, b, u32::MAX)),
            (Some(a), None) => ((a, u32::MIN, u32::MIN), (a, u32::MAX, u32::MAX)),
            (None, _) => ((u32::MIN, u32::MIN, u32::MIN), (u32::MAX, u32::MAX, u32::MAX)),
        };
        let start = self.lower_bound(order, lo).unwrap_or(self.count);
        let end = if hi == (u32::MAX, u32::MAX, u32::MAX) {
            self.count
        } else {
            // first row strictly greater than hi
            let (a, b, _) = hi;
            match b.checked_add(1) {
                Some(b1) => self.lower_bound(order, (a, b1, u32::MIN)),
                None => match a.checked_add(1) {
                    Some(a1) => self.lower_bound(order, (a1, u32::MIN, u32::MIN)),
                    None => Ok(self.count),
                },
            }
            .unwrap_or(self.count)
        };
        SegmentScan { seg: self, order, next: start, end, buf: Vec::new(), buf_start: 0 }
    }
}

/// Chunked streaming scan over one ordering of a base segment.
pub(crate) struct SegmentScan<'a> {
    seg: &'a BaseSegment,
    order: Order,
    next: u64,
    end: u64,
    buf: Vec<u8>,
    buf_start: u64,
}

impl Iterator for SegmentScan<'_> {
    type Item = Key;

    fn next(&mut self) -> Option<Key> {
        if self.next >= self.end {
            return None;
        }
        let rows_buffered = (self.buf.len() as u64) / ROW_LEN;
        if self.next < self.buf_start || self.next >= self.buf_start + rows_buffered {
            let rows = (self.end - self.next).min(SCAN_CHUNK_ROWS as u64) as usize;
            self.buf.resize(rows * ROW_LEN as usize, 0);
            let off = self.seg.order_offset(self.order) + self.next * ROW_LEN;
            if self.seg.file.read_exact_at(&mut self.buf, off).is_err() {
                // The segment was validated on open; a failing read here is
                // an environmental I/O error. End the scan rather than
                // panicking; mutating entry points surface errors properly.
                self.end = self.next;
                return None;
            }
            self.buf_start = self.next;
        }
        let at = ((self.next - self.buf_start) * ROW_LEN) as usize;
        self.next += 1;
        Some(decode_row(&self.buf[at..at + ROW_LEN as usize]))
    }
}

/// Streaming writer producing a new base segment: push all SPO rows, then
/// all POS rows, then all OSP rows (each ascending), then [`Self::finish`].
/// The file is built under a temporary name and renamed into place only
/// after a successful sync, so readers never observe a partial segment.
pub(crate) struct SegmentWriter {
    file: std::io::BufWriter<File>,
    tmp: PathBuf,
    target: PathBuf,
    crc: Crc32,
    rows: u64,
}

impl SegmentWriter {
    pub fn create(target: &Path) -> Result<SegmentWriter> {
        let tmp = target.with_extension("seg.tmp");
        let mut file = File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
        file.write_all(&[0u8; HEADER_LEN as usize]).map_err(|e| io_err("writing", &tmp, e))?;
        Ok(SegmentWriter {
            file: std::io::BufWriter::with_capacity(1 << 16, file),
            tmp,
            target: target.to_path_buf(),
            crc: Crc32::new(),
            rows: 0,
        })
    }

    pub fn push(&mut self, row: Key) -> Result<()> {
        let mut buf = [0u8; 12];
        encode_row(row, &mut buf);
        self.crc.update(&buf);
        self.file.write_all(&buf).map_err(|e| io_err("writing", &self.tmp, e))?;
        self.rows += 1;
        Ok(())
    }

    /// Seals the segment: patches the header with `count` and the payload
    /// checksum, fsyncs, renames over the target, and fsyncs the directory.
    pub fn finish(mut self, count: u64) -> Result<()> {
        assert_eq!(self.rows, count * 3, "segment writer: row count mismatch");
        self.file.flush().map_err(|e| io_err("flushing", &self.tmp, e))?;
        let mut file = self
            .file
            .into_inner()
            .map_err(|e| RdfError::Io(format!("flushing {}: {}", self.tmp.display(), e.error())))?;
        let mut header = [0u8; HEADER_LEN as usize];
        header[0..8].copy_from_slice(MAGIC);
        header[8..16].copy_from_slice(&count.to_le_bytes());
        header[16..20].copy_from_slice(&self.crc.finish().to_le_bytes());
        file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seeking", &self.tmp, e))?;
        file.write_all(&header).map_err(|e| io_err("writing header of", &self.tmp, e))?;
        file.sync_data().map_err(|e| io_err("syncing", &self.tmp, e))?;
        drop(file);
        std::fs::rename(&self.tmp, &self.target)
            .map_err(|e| io_err("installing segment at", &self.target, e))?;
        sync_dir(self.target.parent().unwrap_or(Path::new(".")))
    }
}

/// Fsyncs a directory so a just-renamed file inside it is durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all().map_err(|e| io_err("syncing directory", dir, e)),
        // Some platforms refuse to open directories; renames there are
        // best-effort durable.
        Err(_) => Ok(()),
    }
}
