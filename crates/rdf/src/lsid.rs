//! Life Science Identifiers (LSID).
//!
//! The paper adopts the OMG LSID naming convention to wrap native data
//! identifiers (bioinformatics accession numbers) as URIs so that data items
//! can be RDF subjects: `urn:lsid:authority:namespace:object[:revision]`.
//! For example the Uniprot accession `P30089` becomes
//! `urn:lsid:uniprot.org:uniprot:P30089`.

use crate::term::{Iri, Term};
use crate::RdfError;
use std::fmt;

/// A parsed LSID.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lsid {
    authority: String,
    namespace: String,
    object: String,
    revision: Option<String>,
}

impl Lsid {
    /// Builds an LSID from components. Components must be non-empty and must
    /// not contain `:` or whitespace.
    pub fn new(
        authority: impl Into<String>,
        namespace: impl Into<String>,
        object: impl Into<String>,
    ) -> Result<Self, RdfError> {
        let lsid = Lsid {
            authority: authority.into(),
            namespace: namespace.into(),
            object: object.into(),
            revision: None,
        };
        lsid.validate()?;
        Ok(lsid)
    }

    /// Adds a revision component.
    pub fn with_revision(mut self, revision: impl Into<String>) -> Result<Self, RdfError> {
        self.revision = Some(revision.into());
        self.validate()?;
        Ok(self)
    }

    fn validate(&self) -> Result<(), RdfError> {
        let parts = [
            Some(self.authority.as_str()),
            Some(self.namespace.as_str()),
            Some(self.object.as_str()),
            self.revision.as_deref(),
        ];
        for part in parts.into_iter().flatten() {
            if part.is_empty() || part.contains(':') || part.chars().any(char::is_whitespace) {
                return Err(RdfError::BadLsid(self.to_string()));
            }
        }
        Ok(())
    }

    /// Parses the canonical `urn:lsid:...` form (case-insensitive scheme).
    pub fn parse(s: &str) -> Result<Self, RdfError> {
        let err = || RdfError::BadLsid(s.to_string());
        let mut parts = s.split(':');
        let urn = parts.next().ok_or_else(err)?;
        let scheme = parts.next().ok_or_else(err)?;
        if !urn.eq_ignore_ascii_case("urn") || !scheme.eq_ignore_ascii_case("lsid") {
            return Err(err());
        }
        let authority = parts.next().ok_or_else(err)?;
        let namespace = parts.next().ok_or_else(err)?;
        let object = parts.next().ok_or_else(err)?;
        let revision = parts.next();
        if parts.next().is_some() {
            return Err(err());
        }
        let mut lsid = Lsid::new(authority, namespace, object)?;
        if let Some(rev) = revision {
            lsid = lsid.with_revision(rev)?;
        }
        Ok(lsid)
    }

    /// The naming authority (a DNS name by convention).
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// The namespace within the authority.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// The native identifier (accession number).
    pub fn object(&self) -> &str {
        &self.object
    }

    /// The revision, if present.
    pub fn revision(&self) -> Option<&str> {
        self.revision.as_deref()
    }

    /// Renders as an RDF IRI term (the paper's URI-wrapping of data items).
    pub fn to_term(&self) -> Term {
        Term::Iri(self.to_iri())
    }

    /// Renders as an [`Iri`].
    pub fn to_iri(&self) -> Iri {
        Iri::new(self.to_string())
    }
}

impl fmt::Display for Lsid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "urn:lsid:{}:{}:{}", self.authority, self.namespace, self.object)?;
        if let Some(rev) = &self.revision {
            write!(f, ":{rev}")?;
        }
        Ok(())
    }
}

/// Wraps a native accession under a fixed authority/namespace — the helper
/// data sources use for bulk LSID minting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsidAuthority {
    authority: String,
    namespace: String,
}

impl LsidAuthority {
    /// A minting authority, e.g. `LsidAuthority::new("uniprot.org", "uniprot")`.
    pub fn new(authority: impl Into<String>, namespace: impl Into<String>) -> Self {
        LsidAuthority { authority: authority.into(), namespace: namespace.into() }
    }

    /// Mints an LSID for the given native object id.
    pub fn mint(&self, object: impl Into<String>) -> Result<Lsid, RdfError> {
        Lsid::new(self.authority.clone(), self.namespace.clone(), object)
    }

    /// Mints directly to an IRI term.
    pub fn term(&self, object: impl Into<String>) -> Term {
        self.mint(object).expect("invalid native id for LSID").to_term()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_paper_example() {
        // The paper's Figure 2 wraps Uniprot accession P30089.
        let lsid = Lsid::parse("urn:lsid:uniprot.org:uniprot:P30089").unwrap();
        assert_eq!(lsid.authority(), "uniprot.org");
        assert_eq!(lsid.namespace(), "uniprot");
        assert_eq!(lsid.object(), "P30089");
        assert_eq!(lsid.revision(), None);
        assert_eq!(lsid.to_string(), "urn:lsid:uniprot.org:uniprot:P30089");
    }

    #[test]
    fn revision_component() {
        let lsid = Lsid::parse("urn:lsid:pedro.man.ac.uk:peaklist:PL7:2").unwrap();
        assert_eq!(lsid.revision(), Some("2"));
        let reparsed = Lsid::parse(&lsid.to_string()).unwrap();
        assert_eq!(lsid, reparsed);
    }

    #[test]
    fn case_insensitive_scheme() {
        assert!(Lsid::parse("URN:LSID:a.org:ns:X1").is_ok());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "urn:lsid:only:three",
            "urn:lsid:a:b:c:d:e",
            "http://not.a.urn/x",
            "urn:lsid:::empty",
            "urn:lsid:a b:ns:obj",
            "",
        ] {
            assert!(Lsid::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn authority_minting() {
        let auth = LsidAuthority::new("uniprot.org", "uniprot");
        let term = auth.term("Q9H0H5");
        assert_eq!(term.as_iri().unwrap().as_str(), "urn:lsid:uniprot.org:uniprot:Q9H0H5");
    }

    #[test]
    fn component_validation() {
        assert!(Lsid::new("a.org", "ns", "has:colon").is_err());
        assert!(Lsid::new("a.org", "", "x").is_err());
        let ok = Lsid::new("a.org", "ns", "x").unwrap();
        assert!(ok.with_revision("r 1").is_err());
    }
}
