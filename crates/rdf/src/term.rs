//! RDF terms: IRIs, blank nodes and literals.
//!
//! Terms are small, cheaply-clonable values (`Arc<str>` backed) because the
//! annotation layer copies them freely between annotation maps, repositories
//! and query bindings.

use crate::namespace::xsd;
use crate::RdfError;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// An IRI reference (we do not validate full RFC 3987 syntax; the framework
/// only requires that IRIs are non-empty and contain no whitespace or angle
/// brackets, which is checked by [`Iri::new`]).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Arc<str>);

impl Iri {
    /// Creates an IRI, panicking on syntactically impossible input.
    /// Use [`Iri::try_new`] for fallible construction from untrusted text.
    pub fn new(s: impl AsRef<str>) -> Self {
        Self::try_new(s.as_ref()).expect("invalid IRI")
    }

    /// Fallible IRI construction: rejects empty strings and strings
    /// containing whitespace, `<`, `>` or `"`.
    pub fn try_new(s: &str) -> Result<Self, RdfError> {
        if s.is_empty() || s.chars().any(|c| c.is_whitespace() || matches!(c, '<' | '>' | '"')) {
            return Err(RdfError::BadLiteral {
                lexical: s.to_string(),
                datatype: "IRI".to_string(),
            });
        }
        Ok(Iri(Arc::from(s)))
    }

    /// The IRI text without angle brackets.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Splits the IRI into (namespace, local-name) at the last `#`, `/` or
    /// `:` — the conventional qname split used when rendering prefixed names.
    pub fn split_local(&self) -> (&str, &str) {
        let s = self.as_str();
        match s.rfind(['#', '/', ':']) {
            Some(i) => (&s[..=i], &s[i + 1..]),
            None => ("", s),
        }
    }

    /// The local name after the last `#`, `/` or `:`.
    pub fn local_name(&self) -> &str {
        self.split_local().1
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Iri {
    fn from(s: &str) -> Self {
        Iri::new(s)
    }
}

impl From<String> for Iri {
    fn from(s: String) -> Self {
        Iri::new(s)
    }
}

/// A blank (anonymous) node, identified by a document- or store-scoped label.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(Arc<str>);

impl BlankNode {
    /// Creates a blank node with the given label (without the `_:` sigil).
    pub fn new(label: impl AsRef<str>) -> Self {
        BlankNode(Arc::from(label.as_ref()))
    }

    /// The label without the `_:` sigil.
    pub fn label(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// A typed or language-tagged literal.
///
/// The value space comparison for numeric datatypes follows SPARQL semantics:
/// two numeric literals compare by numeric value, everything else by
/// `(lexical, datatype, lang)` tuple.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Arc<str>,
    datatype: Iri,
    lang: Option<Arc<str>>,
}

impl Literal {
    /// A plain `xsd:string` literal.
    pub fn string(s: impl AsRef<str>) -> Self {
        Literal { lexical: Arc::from(s.as_ref()), datatype: Iri::new(xsd::STRING), lang: None }
    }

    /// A language-tagged string (`rdf:langString` in RDF 1.1; we keep
    /// `xsd:string` as the datatype for simplicity of the 2006-era model).
    pub fn lang_string(s: impl AsRef<str>, lang: impl AsRef<str>) -> Self {
        // RFC 5646 language tags are case-insensitive; normalize so that
        // Turtle-loaded and SPARQL-written tags compare equal.
        Literal {
            lexical: Arc::from(s.as_ref()),
            datatype: Iri::new(xsd::STRING),
            lang: Some(Arc::from(lang.as_ref().to_ascii_lowercase().as_str())),
        }
    }

    /// An `xsd:double` literal.
    pub fn double(v: f64) -> Self {
        Literal {
            lexical: Arc::from(format_double(v).as_str()),
            datatype: Iri::new(xsd::DOUBLE),
            lang: None,
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(v: i64) -> Self {
        Literal {
            lexical: Arc::from(v.to_string().as_str()),
            datatype: Iri::new(xsd::INTEGER),
            lang: None,
        }
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(v: bool) -> Self {
        Literal {
            lexical: Arc::from(if v { "true" } else { "false" }),
            datatype: Iri::new(xsd::BOOLEAN),
            lang: None,
        }
    }

    /// A literal with an explicit datatype IRI.
    pub fn typed(lexical: impl AsRef<str>, datatype: Iri) -> Self {
        Literal { lexical: Arc::from(lexical.as_ref()), datatype, lang: None }
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The datatype IRI.
    pub fn datatype(&self) -> &Iri {
        &self.datatype
    }

    /// The language tag, if any.
    pub fn lang(&self) -> Option<&str> {
        self.lang.as_deref()
    }

    /// True if the datatype is one of the XSD numeric types we support.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self.datatype.as_str(),
            xsd::DOUBLE | xsd::FLOAT | xsd::DECIMAL | xsd::INTEGER | xsd::INT | xsd::LONG
        )
    }

    /// Numeric value if the literal is numeric and parses.
    pub fn as_f64(&self) -> Option<f64> {
        if self.is_numeric() {
            self.lexical.parse::<f64>().ok()
        } else {
            None
        }
    }

    /// Integer value if the literal has an integral datatype and parses.
    pub fn as_i64(&self) -> Option<i64> {
        match self.datatype.as_str() {
            xsd::INTEGER | xsd::INT | xsd::LONG => self.lexical.parse::<i64>().ok(),
            _ => None,
        }
    }

    /// Boolean value for `xsd:boolean` literals.
    pub fn as_bool(&self) -> Option<bool> {
        if self.datatype.as_str() == xsd::BOOLEAN {
            match &*self.lexical {
                "true" | "1" => Some(true),
                "false" | "0" => Some(false),
                _ => None,
            }
        } else {
            None
        }
    }

    /// SPARQL-style value comparison: numeric literals compare numerically,
    /// strings lexically; mixed or non-comparable pairs yield `None`.
    pub fn value_cmp(&self, other: &Literal) -> Option<Ordering> {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b),
            (None, None) => {
                if self.datatype == other.datatype {
                    Some(self.lexical.cmp(&other.lexical))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// SPARQL-style value equality (numeric 2 == 2.0; otherwise term equality).
    pub fn value_eq(&self, other: &Literal) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }
}

/// Renders an f64 so that integral values keep a trailing `.0` marker
/// (canonical-ish `xsd:double` lexical form) and round-trips via `parse`.
pub(crate) fn canonical_double(v: f64) -> String {
    format_double(v)
}

fn format_double(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", crate::turtle::escape_string(&self.lexical))?;
        if let Some(lang) = &self.lang {
            write!(f, "@{lang}")?;
        } else if self.datatype.as_str() != xsd::STRING {
            write!(f, "^^<{}>", self.datatype)?;
        }
        Ok(())
    }
}

/// An RDF term: the union of IRIs, blank nodes and literals.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Iri(Iri),
    Blank(BlankNode),
    Literal(Literal),
}

impl Term {
    /// Shorthand IRI term constructor.
    pub fn iri(s: impl AsRef<str>) -> Self {
        Term::Iri(Iri::new(s))
    }

    /// Shorthand blank-node term constructor.
    pub fn blank(label: impl AsRef<str>) -> Self {
        Term::Blank(BlankNode::new(label))
    }

    /// Shorthand string-literal term constructor.
    pub fn string(s: impl AsRef<str>) -> Self {
        Term::Literal(Literal::string(s))
    }

    /// Shorthand double-literal term constructor.
    pub fn double(v: f64) -> Self {
        Term::Literal(Literal::double(v))
    }

    /// Shorthand integer-literal term constructor.
    pub fn integer(v: i64) -> Self {
        Term::Literal(Literal::integer(v))
    }

    /// Shorthand boolean-literal term constructor.
    pub fn boolean(v: bool) -> Self {
        Term::Literal(Literal::boolean(v))
    }

    /// The IRI inside, if this term is an IRI.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// The literal inside, if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// True for IRIs and blank nodes (valid triple subjects).
    pub fn is_resource(&self) -> bool {
        !matches!(self, Term::Literal(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::Blank(b) => write!(f, "{b}"),
            Term::Literal(l) => write!(f, "{l}"),
        }
    }
}

impl From<Iri> for Term {
    fn from(i: Iri) -> Self {
        Term::Iri(i)
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Self {
        Term::Blank(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_rejects_whitespace_and_brackets() {
        assert!(Iri::try_new("http://a b").is_err());
        assert!(Iri::try_new("").is_err());
        assert!(Iri::try_new("http://ok/<x>").is_err());
        assert!(Iri::try_new("urn:lsid:uniprot.org:uniprot:P30089").is_ok());
    }

    #[test]
    fn iri_local_name_splits() {
        assert_eq!(Iri::new("http://qurator.org/iq#HitRatio").local_name(), "HitRatio");
        assert_eq!(Iri::new("http://example.org/path/leaf").local_name(), "leaf");
        assert_eq!(Iri::new("urn:lsid:a:b:C123").local_name(), "C123");
    }

    #[test]
    fn double_literal_roundtrip() {
        let l = Literal::double(2.0);
        assert_eq!(l.lexical(), "2.0");
        assert_eq!(l.as_f64(), Some(2.0));
        let l = Literal::double(0.3125);
        assert_eq!(l.as_f64(), Some(0.3125));
    }

    #[test]
    fn integer_and_bool_accessors() {
        assert_eq!(Literal::integer(-42).as_i64(), Some(-42));
        assert_eq!(Literal::boolean(true).as_bool(), Some(true));
        assert_eq!(Literal::string("x").as_i64(), None);
        assert_eq!(Literal::string("true").as_bool(), None);
    }

    #[test]
    fn value_eq_crosses_numeric_datatypes() {
        let i = Literal::integer(2);
        let d = Literal::double(2.0);
        assert!(i.value_eq(&d));
        assert_ne!(i, d); // term equality is stricter
    }

    #[test]
    fn value_cmp_numeric_and_string() {
        assert_eq!(Literal::integer(3).value_cmp(&Literal::double(3.5)), Some(Ordering::Less));
        assert_eq!(Literal::string("abc").value_cmp(&Literal::string("abd")), Some(Ordering::Less));
        assert_eq!(Literal::string("1").value_cmp(&Literal::integer(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://x/y").to_string(), "<http://x/y>");
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
        assert_eq!(Term::string("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::double(1.5).to_string(),
            "\"1.5\"^^<http://www.w3.org/2001/XMLSchema#double>"
        );
        assert_eq!(Literal::lang_string("ciao", "it").to_string(), "\"ciao\"@it");
    }

    #[test]
    fn literal_escaping_in_display() {
        assert_eq!(Term::string("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
    }
}
