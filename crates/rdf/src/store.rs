//! A dictionary-encoded, triple-indexed in-memory RDF store.
//!
//! The paper (§5) notes that annotation repositories are accessed "primarily
//! based on `(data, evidence type)` keys" through SPARQL, and that scalable
//! RDF storage back-ends (Sesame, 3store, Oracle) can be swapped in. This
//! store is the swap-in: terms are interned into `u32` ids and triples are
//! kept in three ordered indexes (SPO, POS, OSP) so that every single-triple
//! lookup pattern is answered by a range scan on the best index.

use crate::term::Term;
use crate::triple::{PatternTerm, Triple, TriplePattern};
use crate::{RdfError, Result};
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

pub(crate) type Id = u32;
pub(crate) type Key = (Id, Id, Id);

/// Which index a pattern was routed to (exposed for the E3 index ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexChoice {
    Spo,
    Pos,
    Osp,
}

/// Term dictionary: bidirectional Term ↔ id mapping.
#[derive(Debug, Default, Clone)]
struct Dictionary {
    by_term: HashMap<Term, Id>,
    by_id: Vec<Term>,
}

impl Dictionary {
    fn intern(&mut self, term: &Term) -> Id {
        match self.by_term.entry(term.clone()) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = self.by_id.len() as Id;
                self.by_id.push(term.clone());
                e.insert(id);
                id
            }
        }
    }

    fn lookup(&self, term: &Term) -> Option<Id> {
        self.by_term.get(term).copied()
    }

    fn term(&self, id: Id) -> &Term {
        &self.by_id[id as usize]
    }
}

/// The in-memory triple store.
///
/// Invariant: the three indexes always contain exactly the same set of
/// triples (verified by property tests in this module).
#[derive(Debug, Default, Clone)]
pub struct GraphStore {
    dict: Dictionary,
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
    /// Counter for store-scoped fresh blank nodes.
    next_blank: u64,
}

impl GraphStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Number of distinct terms interned (for capacity diagnostics).
    pub fn term_count(&self) -> usize {
        self.dict.by_id.len()
    }

    /// Inserts a triple; returns `true` if it was not already present.
    /// Ill-formed triples (literal subject / non-IRI predicate) are rejected
    /// with a panic, since they can only arise from programmer error.
    pub fn insert(&mut self, t: Triple) -> bool {
        assert!(t.is_well_formed(), "ill-formed triple: {t}");
        let s = self.dict.intern(&t.subject);
        let p = self.dict.intern(&t.predicate);
        let o = self.dict.intern(&t.object);
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Fallible insert for load paths fed by external data: an ill-formed
    /// triple yields [`RdfError::IllFormed`] instead of aborting the process.
    pub fn try_insert(&mut self, t: Triple) -> Result<bool> {
        if !t.is_well_formed() {
            return Err(RdfError::IllFormed(t.to_string()));
        }
        let s = self.dict.intern(&t.subject);
        let p = self.dict.intern(&t.predicate);
        let o = self.dict.intern(&t.object);
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        Ok(added)
    }

    /// Removes a triple; returns `true` if it was present.
    pub fn remove(&mut self, t: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.lookup(&t.subject),
            self.dict.lookup(&t.predicate),
            self.dict.lookup(&t.object),
        ) else {
            return false;
        };
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// Removes every triple matching the pattern; returns how many were removed.
    pub fn remove_matching(&mut self, pattern: &TriplePattern) -> usize {
        let victims: Vec<Triple> = self.matching(pattern).collect();
        for v in &victims {
            self.remove(v);
        }
        victims.len()
    }

    /// Membership test.
    pub fn contains(&self, t: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.lookup(&t.subject),
            self.dict.lookup(&t.predicate),
            self.dict.lookup(&t.object),
        ) else {
            return false;
        };
        self.spo.contains(&(s, p, o))
    }

    /// Iterates over all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(move |&(s, p, o)| self.decode(s, p, o))
    }

    fn decode(&self, s: Id, p: Id, o: Id) -> Triple {
        Triple {
            subject: self.dict.term(s).clone(),
            predicate: self.dict.term(p).clone(),
            object: self.dict.term(o).clone(),
        }
    }

    /// Chooses the index that turns the largest bound prefix of the pattern
    /// into a range scan.
    pub fn index_for(pattern: &TriplePattern) -> IndexChoice {
        let s = pattern.subject.as_term().is_some();
        let p = pattern.predicate.as_term().is_some();
        let o = pattern.object.as_term().is_some();
        match (s, p, o) {
            // subject bound: SPO handles (s,*,*), (s,p,*), (s,p,o)
            (true, _, false) => IndexChoice::Spo,
            (true, true, true) => IndexChoice::Spo,
            // (s,*,o) -> OSP gives o,s prefix
            (true, false, true) => IndexChoice::Osp,
            // predicate bound without subject
            (false, true, _) => IndexChoice::Pos,
            // object bound only
            (false, false, true) => IndexChoice::Osp,
            // nothing bound
            (false, false, false) => IndexChoice::Spo,
        }
    }

    /// Streams all triples matching the pattern, using the best index.
    pub fn matching<'a>(
        &'a self,
        pattern: &TriplePattern,
    ) -> Box<dyn Iterator<Item = Triple> + 'a> {
        // Resolve bound pattern positions to ids; an unknown term can match
        // nothing.
        let resolve = |pt: &PatternTerm| -> std::result::Result<Option<Id>, ()> {
            match pt.as_term() {
                None => Ok(None),
                Some(t) => self.dict.lookup(t).map(Some).ok_or(()),
            }
        };
        let (s, p, o) = match (
            resolve(&pattern.subject),
            resolve(&pattern.predicate),
            resolve(&pattern.object),
        ) {
            (Ok(s), Ok(p), Ok(o)) => (s, p, o),
            _ => return Box::new(std::iter::empty()),
        };

        match Self::index_for(pattern) {
            IndexChoice::Spo => {
                let it = Self::scan(&self.spo, s, p, o);
                Box::new(it.map(move |(a, b, c)| self.decode(a, b, c)))
            }
            IndexChoice::Pos => {
                let it = Self::scan(&self.pos, p, o, s);
                Box::new(it.map(move |(a, b, c)| self.decode(c, a, b)))
            }
            IndexChoice::Osp => {
                let it = Self::scan(&self.osp, o, s, p);
                Box::new(it.map(move |(a, b, c)| self.decode(b, c, a)))
            }
        }
    }

    /// Range-scans an index whose key order is `(k0, k1, k2)`, where a bound
    /// prefix narrows the range and any remaining bound positions are
    /// filtered. Shared with the disk backend's delta overlays.
    pub(crate) fn scan<'a>(
        index: &'a BTreeSet<Key>,
        k0: Option<Id>,
        k1: Option<Id>,
        k2: Option<Id>,
    ) -> impl Iterator<Item = Key> + 'a {
        let (lo, hi): (Bound<Key>, Bound<Key>) = match (k0, k1, k2) {
            (Some(a), Some(b), Some(c)) => (Bound::Included((a, b, c)), Bound::Included((a, b, c))),
            (Some(a), Some(b), None) => {
                (Bound::Included((a, b, Id::MIN)), Bound::Included((a, b, Id::MAX)))
            }
            (Some(a), None, _) => {
                (Bound::Included((a, Id::MIN, Id::MIN)), Bound::Included((a, Id::MAX, Id::MAX)))
            }
            (None, ..) => (Bound::Unbounded, Bound::Unbounded),
        };
        // Positions after an unbound one cannot narrow the range; filter.
        index.range((lo, hi)).copied().filter(move |&(a, b, c)| {
            k0.is_none_or(|k| k == a) && k1.is_none_or(|k| k == b) && k2.is_none_or(|k| k == c)
        })
    }

    /// The interned id of a term, or `None` if the store has never seen it.
    /// Ids are stable for the lifetime of the store and are the currency of
    /// the bulk-join accessors below.
    pub fn id_of(&self, term: &Term) -> Option<u32> {
        self.dict.lookup(term)
    }

    /// The term behind an id obtained from [`Self::id_of`] or an id-space
    /// scan. Panics on ids the store never issued.
    pub fn term_at(&self, id: u32) -> &Term {
        self.dict.term(id)
    }

    /// Fallible [`Self::term_at`] for trust boundaries: ids read back from
    /// disk segments (or any other external source) resolve to `None` rather
    /// than an out-of-bounds panic when the store never issued them.
    pub fn try_term_at(&self, id: u32) -> Option<&Term> {
        self.dict.by_id.get(id as usize)
    }

    /// All `(subject, object)` id pairs under a bound predicate, in
    /// ascending `(object, subject)` order — a POS range scan with no term
    /// decoding. This is the workhorse of bulk enrichment: joins against an
    /// item set happen on `u32`s, and only the winning terms are decoded.
    pub fn edge_ids(&self, predicate: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        Self::scan(&self.pos, Some(predicate), None, None).map(|(_, o, s)| (s, o))
    }

    /// Object ids of `(subject, predicate, ?)` in ascending id order — an
    /// SPO range scan with no term decoding.
    pub fn object_ids(&self, subject: u32, predicate: u32) -> impl Iterator<Item = u32> + '_ {
        Self::scan(&self.spo, Some(subject), Some(predicate), None).map(|(_, _, o)| o)
    }

    /// Convenience: all objects of `(subject, predicate, ?)`.
    pub fn objects(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        self.matching(&TriplePattern::new(subject.clone(), predicate.clone(), None))
            .map(|t| t.object)
            .collect()
    }

    /// Convenience: all subjects of `(?, predicate, object)`.
    pub fn subjects(&self, predicate: &Term, object: &Term) -> Vec<Term> {
        self.matching(&TriplePattern::new(None, predicate.clone(), object.clone()))
            .map(|t| t.subject)
            .collect()
    }

    /// The first object of `(subject, predicate, ?)` if any.
    pub fn object(&self, subject: &Term, predicate: &Term) -> Option<Term> {
        self.matching(&TriplePattern::new(subject.clone(), predicate.clone(), None))
            .next()
            .map(|t| t.object)
    }

    /// Mints a store-scoped fresh blank node.
    pub fn fresh_blank(&mut self) -> Term {
        let t = Term::blank(format!("g{}", self.next_blank));
        self.next_blank += 1;
        t
    }

    /// Inserts every triple from an iterator; returns how many were new.
    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        triples.into_iter().filter(|t| self.insert(t.clone())).count()
    }

    /// Removes all triples but keeps the dictionary (cheap clear between
    /// quality-process executions of a cache repository).
    pub fn clear(&mut self) {
        self.spo.clear();
        self.pos.clear();
        self.osp.clear();
    }
}

impl FromIterator<Triple> for GraphStore {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = GraphStore::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::rdf;

    fn iri(n: u32) -> Term {
        Term::iri(format!("http://x/{n}"))
    }

    fn tr(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(iri(s), iri(p), iri(o))
    }

    #[test]
    fn insert_contains_remove() {
        let mut g = GraphStore::new();
        assert!(g.insert(tr(1, 2, 3)));
        assert!(!g.insert(tr(1, 2, 3)), "duplicate insert is a no-op");
        assert!(g.contains(&tr(1, 2, 3)));
        assert_eq!(g.len(), 1);
        assert!(g.remove(&tr(1, 2, 3)));
        assert!(!g.remove(&tr(1, 2, 3)));
        assert!(g.is_empty());
    }

    #[test]
    fn all_eight_patterns_agree_with_naive_filter() {
        let mut g = GraphStore::new();
        for s in 0..4 {
            for p in 4..7 {
                for o in 7..10 {
                    if (s + p + o) % 2 == 0 {
                        g.insert(tr(s, p, o));
                    }
                }
            }
        }
        let all: Vec<Triple> = g.iter().collect();
        let candidates = [None, Some(2u32)];
        for s in candidates {
            for p in [None, Some(5u32)] {
                for o in [None, Some(8u32)] {
                    let pat = TriplePattern::new(s.map(iri), p.map(iri), o.map(iri));
                    let mut via_index: Vec<Triple> = g.matching(&pat).collect();
                    let mut naive: Vec<Triple> =
                        all.iter().filter(|t| pat.matches(t)).cloned().collect();
                    via_index.sort();
                    naive.sort();
                    assert_eq!(via_index, naive, "pattern {pat:?}");
                }
            }
        }
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let mut g = GraphStore::new();
        g.insert(tr(1, 2, 3));
        let pat = TriplePattern::new(iri(99), None, None);
        assert_eq!(g.matching(&pat).count(), 0);
    }

    #[test]
    fn index_routing() {
        use IndexChoice::*;
        let some = |n: u32| PatternTerm::Is(iri(n));
        let pat = |s: Option<u32>, p: Option<u32>, o: Option<u32>| TriplePattern {
            subject: s.map_or(PatternTerm::Any, &some),
            predicate: p.map_or(PatternTerm::Any, &some),
            object: o.map_or(PatternTerm::Any, &some),
        };
        assert_eq!(GraphStore::index_for(&pat(Some(1), None, None)), Spo);
        assert_eq!(GraphStore::index_for(&pat(Some(1), Some(2), None)), Spo);
        assert_eq!(GraphStore::index_for(&pat(Some(1), Some(2), Some(3))), Spo);
        assert_eq!(GraphStore::index_for(&pat(None, Some(2), None)), Pos);
        assert_eq!(GraphStore::index_for(&pat(None, Some(2), Some(3))), Pos);
        assert_eq!(GraphStore::index_for(&pat(None, None, Some(3))), Osp);
        assert_eq!(GraphStore::index_for(&pat(Some(1), None, Some(3))), Osp);
        assert_eq!(GraphStore::index_for(&pat(None, None, None)), Spo);
    }

    #[test]
    fn convenience_accessors() {
        let mut g = GraphStore::new();
        let s = Term::iri("http://x/s");
        let p = Term::iri(rdf::TYPE);
        g.insert(Triple::new(s.clone(), p.clone(), iri(1)));
        g.insert(Triple::new(s.clone(), p.clone(), iri(2)));
        let mut os = g.objects(&s, &p);
        os.sort();
        assert_eq!(os, vec![iri(1), iri(2)]);
        assert_eq!(g.subjects(&p, &iri(1)), vec![s.clone()]);
        assert!(g.object(&s, &p).is_some());
    }

    #[test]
    fn id_space_scans_agree_with_term_space() {
        let mut g = GraphStore::new();
        let p = Term::iri("http://x/p");
        for s in 1..=3u32 {
            for o in 4..=5u32 {
                g.insert(tr(s, 100, o + s));
                g.insert(Triple::new(iri(s), p.clone(), iri(o)));
            }
        }
        assert_eq!(g.id_of(&Term::iri("http://x/nope")), None);
        let pid = g.id_of(&p).unwrap();

        // edge_ids decodes back to exactly the POS-ordered matching() result.
        let via_ids: Vec<(Term, Term)> =
            g.edge_ids(pid).map(|(s, o)| (g.term_at(s).clone(), g.term_at(o).clone())).collect();
        let via_terms: Vec<(Term, Term)> = g
            .matching(&TriplePattern::new(None, p.clone(), None))
            .map(|t| (t.subject, t.object))
            .collect();
        assert_eq!(via_ids, via_terms);

        // object_ids reproduces objects() content and ascending-id order.
        let sid = g.id_of(&iri(2)).unwrap();
        let objs: Vec<Term> = g.object_ids(sid, pid).map(|o| g.term_at(o).clone()).collect();
        assert_eq!(objs.len(), 2);
        let mut expected = g.objects(&iri(2), &p);
        expected.sort_by_key(|t| g.id_of(t).unwrap());
        assert_eq!(objs, expected);
    }

    #[test]
    fn remove_matching_and_clear() {
        let mut g = GraphStore::new();
        g.insert(tr(1, 2, 3));
        g.insert(tr(1, 2, 4));
        g.insert(tr(5, 2, 3));
        let removed = g.remove_matching(&TriplePattern::new(iri(1), None, None));
        assert_eq!(removed, 2);
        assert_eq!(g.len(), 1);
        g.clear();
        assert!(g.is_empty());
        assert!(g.term_count() > 0, "dictionary survives clear");
    }

    #[test]
    fn fresh_blanks_are_distinct() {
        let mut g = GraphStore::new();
        let a = g.fresh_blank();
        let b = g.fresh_blank();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "ill-formed")]
    fn ill_formed_insert_panics() {
        let mut g = GraphStore::new();
        let bad = Triple {
            subject: Term::string("lit"),
            predicate: Term::iri("http://x/p"),
            object: Term::string("o"),
        };
        g.insert(bad);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_term_id() -> impl Strategy<Value = u32> {
        0u32..12
    }

    fn arb_triple() -> impl Strategy<Value = Triple> {
        (arb_term_id(), arb_term_id(), arb_term_id()).prop_map(|(s, p, o)| {
            Triple::new(
                Term::iri(format!("http://t/{s}")),
                Term::iri(format!("http://t/p{p}")),
                Term::iri(format!("http://t/{o}")),
            )
        })
    }

    proptest! {
        /// After any interleaving of inserts and removes, the three indexes
        /// agree: every pattern query equals the naive filter over iter().
        #[test]
        fn indexes_stay_coherent(ops in proptest::collection::vec((any::<bool>(), arb_triple()), 0..80)) {
            let mut g = GraphStore::new();
            let mut model: std::collections::BTreeSet<Triple> = Default::default();
            for (is_insert, t) in ops {
                if is_insert {
                    prop_assert_eq!(g.insert(t.clone()), model.insert(t));
                } else {
                    prop_assert_eq!(g.remove(&t), model.remove(&t));
                }
            }
            prop_assert_eq!(g.len(), model.len());
            let got: std::collections::BTreeSet<Triple> = g.iter().collect();
            prop_assert_eq!(&got, &model);
            // spot-check a bound pattern on each position
            for t in model.iter().take(3) {
                let by_s: Vec<_> = g.matching(&TriplePattern::new(t.subject.clone(), None, None)).collect();
                prop_assert!(by_s.iter().all(|x| x.subject == t.subject));
                let expect = model.iter().filter(|x| x.subject == t.subject).count();
                prop_assert_eq!(by_s.len(), expect);
            }
        }
    }
}
