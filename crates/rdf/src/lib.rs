//! # qurator-rdf
//!
//! A compact, dependency-free RDF substrate for the Qurator quality-view
//! framework (reproduction of *Quality Views: Capturing and Exploiting the
//! User Perspective on Data Quality*, VLDB 2006).
//!
//! The paper stores quality annotations as RDF statements in dedicated
//! repositories and retrieves them with SPARQL queries keyed on
//! `(data item, evidence type)`. This crate provides everything that layer
//! needs, implemented from scratch:
//!
//! * [`term`] — IRIs, blank nodes, typed literals and the [`term::Term`] sum type;
//! * [`triple`] — triples and triple patterns;
//! * [`store`] — a dictionary-encoded, triple-indexed in-memory store
//!   ([`store::GraphStore`]) with SPO/POS/OSP indexes;
//! * [`turtle`] — a Turtle-subset parser and serializer for durable
//!   annotation repositories;
//! * [`sparql`] — a SPARQL-subset query engine (BGP matching, `FILTER`,
//!   `OPTIONAL`, `ORDER BY`, `LIMIT`/`OFFSET`, `SELECT`/`ASK`);
//! * [`lsid`] — Life Science Identifiers, the URI-wrapping scheme the paper
//!   adopts for native data identifiers (e.g. Uniprot accessions);
//! * [`namespace`] — prefix/namespace management and well-known vocabularies.
//!
//! ## Example
//!
//! ```
//! use qurator_rdf::store::GraphStore;
//! use qurator_rdf::term::Term;
//! use qurator_rdf::triple::Triple;
//! use qurator_rdf::namespace::rdf;
//!
//! let mut store = GraphStore::new();
//! let protein = Term::iri("urn:lsid:uniprot.org:uniprot:P30089");
//! let class = Term::iri("http://qurator.org/iq#ImprintHitEntry");
//! store.insert(Triple::new(protein.clone(), Term::iri(rdf::TYPE), class.clone()));
//! assert!(store.contains(&Triple::new(protein, Term::iri(rdf::TYPE), class)));
//! ```

pub mod lsid;
pub mod namespace;
pub mod sparql;
pub mod storage;
pub mod store;
pub mod term;
pub mod triple;
pub mod turtle;

pub use storage::{DiskBackend, MemoryBackend, Storage};
pub use store::GraphStore;
pub use term::{BlankNode, Iri, Literal, Term};
pub use triple::{Triple, TriplePattern};

/// Errors produced by the RDF layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A lexical form could not be parsed into the requested value space.
    BadLiteral { lexical: String, datatype: String },
    /// Turtle syntax error with 1-based line/column.
    TurtleSyntax { line: usize, col: usize, message: String },
    /// SPARQL syntax error.
    SparqlSyntax { pos: usize, message: String },
    /// SPARQL evaluation error (e.g. type error inside FILTER).
    SparqlEval(String),
    /// An LSID string did not conform to `urn:lsid:auth:ns:obj[:rev]`.
    BadLsid(String),
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
    /// An ill-formed triple (literal subject / non-IRI predicate) reached a
    /// storage boundary fed by external data.
    IllFormed(String),
    /// A storage I/O failure (path and OS error, stringified so the error
    /// stays `Clone + Eq`).
    Io(String),
    /// A persistent store failed an integrity check (bad magic, checksum
    /// mismatch, dangling term id).
    Corrupt { path: String, detail: String },
    /// A persistent store directory is locked by another live process.
    Locked { path: String, holder: String },
}

impl std::fmt::Display for RdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdfError::BadLiteral { lexical, datatype } => {
                write!(f, "literal {lexical:?} is not valid for datatype <{datatype}>")
            }
            RdfError::TurtleSyntax { line, col, message } => {
                write!(f, "turtle syntax error at {line}:{col}: {message}")
            }
            RdfError::SparqlSyntax { pos, message } => {
                write!(f, "sparql syntax error at offset {pos}: {message}")
            }
            RdfError::SparqlEval(m) => write!(f, "sparql evaluation error: {m}"),
            RdfError::BadLsid(s) => write!(f, "malformed LSID: {s:?}"),
            RdfError::UnknownPrefix(p) => write!(f, "unknown namespace prefix {p:?}"),
            RdfError::IllFormed(detail) => write!(f, "ill-formed triple: {detail}"),
            RdfError::Io(detail) => write!(f, "storage i/o error: {detail}"),
            RdfError::Corrupt { path, detail } => {
                write!(f, "corrupt store at {path}: {detail}")
            }
            RdfError::Locked { path, holder } => {
                write!(f, "store at {path} is locked by {holder}")
            }
        }
    }
}

impl std::error::Error for RdfError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RdfError>;
