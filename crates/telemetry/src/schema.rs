//! In-tree schema checks for the telemetry artifacts the CLI emits.
//! The CI smoke job runs the Fig. 1 workflow with `--trace-out` /
//! `--metrics-out` and feeds the files through these validators, so the
//! export format can't silently drift.

use crate::json::{parse, Value};

/// Validates a span JSON-lines document (as produced by
/// [`crate::span::SpanTrace::to_jsonl`]). Returns the number of span
/// lines on success.
///
/// Checks per line: valid JSON object; `type == "span"`; `id` a positive
/// integer, unique across the file; `parent` null or a previously-unseen
/// ok id (forward references allowed — parents may merge after
/// children); `name` a string; `kind` one of the known kinds;
/// `start_ns`/`end_ns` integers with `end_ns >= start_ns` (end may not
/// be null: exported traces are finished); `attrs` an object.
/// Whole-file check: every non-null parent id must exist in the file.
///
/// Lines with `type == "trace"` — the per-trace header lines emitted by
/// [`crate::retain::TraceRetainer::recent_jsonl`] — are validated for
/// shape (integer `seq`/`root_duration_ns`, string `view`, known
/// `reason`, 16-hex-char `run_id`) but not counted in the returned span
/// total.
pub fn validate_trace_jsonl(input: &str) -> Result<usize, String> {
    let mut ids = std::collections::BTreeSet::new();
    let mut parents: Vec<(usize, u64)> = Vec::new();
    let mut count = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        let value = parse(line).map_err(|e| format!("line {n}: invalid JSON: {e}"))?;
        let obj = value.as_object().ok_or_else(|| format!("line {n}: not an object"))?;
        let kind_of = |key: &str| -> Result<&Value, String> {
            obj.get(key).ok_or_else(|| format!("line {n}: missing key {key:?}"))
        };
        match kind_of("type")?.as_str() {
            Some("span") => {}
            // retained-trace header lines (TraceRetainer::recent_jsonl):
            // validated for shape, not counted as spans
            Some("trace") => {
                kind_of("seq")?
                    .as_u64()
                    .ok_or_else(|| format!("line {n}: trace seq must be an integer"))?;
                if kind_of("view")?.as_str().is_none() {
                    return Err(format!("line {n}: trace view must be a string"));
                }
                let reason = kind_of("reason")?
                    .as_str()
                    .ok_or_else(|| format!("line {n}: trace reason must be a string"))?;
                if !matches!(reason, "error" | "rejected" | "slow" | "sampled") {
                    return Err(format!("line {n}: unknown retention reason {reason:?}"));
                }
                kind_of("root_duration_ns")?
                    .as_u64()
                    .ok_or_else(|| format!("line {n}: root_duration_ns must be an integer"))?;
                let run = kind_of("run_id")?
                    .as_str()
                    .ok_or_else(|| format!("line {n}: trace run_id must be a string"))?;
                if crate::runid::RunId::parse(run).is_none() {
                    return Err(format!("line {n}: run_id {run:?} is not 16 hex chars"));
                }
                continue;
            }
            _ => return Err(format!("line {n}: type is not \"span\" or \"trace\"")),
        }
        let id = kind_of("id")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| format!("line {n}: id must be a positive integer"))?;
        if !ids.insert(id) {
            return Err(format!("line {n}: duplicate span id {id}"));
        }
        match kind_of("parent")? {
            Value::Null => {}
            v => {
                let p = v
                    .as_u64()
                    .ok_or_else(|| format!("line {n}: parent must be null or an integer"))?;
                parents.push((n, p));
            }
        }
        if kind_of("name")?.as_str().is_none() {
            return Err(format!("line {n}: name must be a string"));
        }
        let kind =
            kind_of("kind")?.as_str().ok_or_else(|| format!("line {n}: kind must be a string"))?;
        if crate::span::SpanKind::parse(kind).is_none() {
            return Err(format!("line {n}: unknown span kind {kind:?}"));
        }
        let start = kind_of("start_ns")?
            .as_u64()
            .ok_or_else(|| format!("line {n}: start_ns must be an integer"))?;
        let end = kind_of("end_ns")?
            .as_u64()
            .ok_or_else(|| format!("line {n}: end_ns must be an integer (span not closed?)"))?;
        if end < start {
            return Err(format!("line {n}: end_ns < start_ns"));
        }
        if kind_of("attrs")?.as_object().is_none() {
            return Err(format!("line {n}: attrs must be an object"));
        }
        count += 1;
    }
    for (n, p) in parents {
        if !ids.contains(&p) {
            return Err(format!("line {n}: parent {p} does not exist in the trace"));
        }
    }
    Ok(count)
}

/// Validates a structured-access-log JSON-lines document (as produced by
/// [`crate::accesslog::AccessLog::recent_jsonl`] or the `--access-log`
/// file sink). Returns the number of records on success.
///
/// Checks per line: valid JSON object; `type == "access"`; `seq`,
/// `ts_ms`, `status`, `bytes` and `latency_us` non-negative integers
/// with `status` a plausible HTTP code; `peer` and `route` strings;
/// `run_id` null or a 16-hex-char string; `shed` and `timeout`
/// booleans; `seq` unique across the file.
pub fn validate_access_log_jsonl(input: &str) -> Result<usize, String> {
    let mut seqs = std::collections::BTreeSet::new();
    let mut count = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        let value = parse(line).map_err(|e| format!("line {n}: invalid JSON: {e}"))?;
        let obj = value.as_object().ok_or_else(|| format!("line {n}: not an object"))?;
        let field = |key: &str| -> Result<&Value, String> {
            obj.get(key).ok_or_else(|| format!("line {n}: missing key {key:?}"))
        };
        if field("type")?.as_str() != Some("access") {
            return Err(format!("line {n}: type is not \"access\""));
        }
        let seq =
            field("seq")?.as_u64().ok_or_else(|| format!("line {n}: seq must be an integer"))?;
        if !seqs.insert(seq) {
            return Err(format!("line {n}: duplicate access-log seq {seq}"));
        }
        for key in ["ts_ms", "bytes", "latency_us"] {
            field(key)?.as_u64().ok_or_else(|| format!("line {n}: {key} must be an integer"))?;
        }
        let status = field("status")?
            .as_u64()
            .ok_or_else(|| format!("line {n}: status must be an integer"))?;
        if !(100..=599).contains(&status) {
            return Err(format!("line {n}: implausible HTTP status {status}"));
        }
        for key in ["peer", "route"] {
            if field(key)?.as_str().is_none() {
                return Err(format!("line {n}: {key} must be a string"));
            }
        }
        match field("run_id")? {
            Value::Null => {}
            v => {
                let run = v
                    .as_str()
                    .ok_or_else(|| format!("line {n}: run_id must be null or a string"))?;
                if crate::runid::RunId::parse(run).is_none() {
                    return Err(format!("line {n}: run_id {run:?} is not 16 hex chars"));
                }
            }
        }
        for key in ["shed", "timeout"] {
            if field(key)?.as_bool().is_none() {
                return Err(format!("line {n}: {key} must be a boolean"));
            }
        }
        count += 1;
    }
    Ok(count)
}

/// Validates a Prometheus-style text exposition (as produced by
/// [`crate::metrics::MetricsRegistry::render_prometheus`]). Returns the
/// number of sample lines on success.
///
/// Checks per line: `name[{label="value",…}] number`, metric names
/// matching `[a-zA-Z_:][a-zA-Z0-9_:.]*`, no duplicate series.
pub fn validate_metrics_text(input: &str) -> Result<usize, String> {
    let mut seen = std::collections::BTreeSet::new();
    let mut count = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: expected '<series> <value>'"))?;
        let series = series.trim();
        value
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("line {n}: sample value {value:?} is not a number"))?;
        let name = match series.split_once('{') {
            Some((name, rest)) => {
                if !rest.ends_with('}') {
                    return Err(format!("line {n}: unterminated label set"));
                }
                validate_labels(&rest[..rest.len() - 1]).map_err(|e| format!("line {n}: {e}"))?;
                name
            }
            None => series,
        };
        if name.is_empty()
            || !name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':' || c == '.')
        {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        if !seen.insert(series.to_string()) {
            return Err(format!("line {n}: duplicate series {series:?}"));
        }
        count += 1;
    }
    Ok(count)
}

/// Validates a `label="value"` comma-separated list.
fn validate_labels(labels: &str) -> Result<(), String> {
    // split on commas that are not inside a quoted value
    let mut rest = labels;
    while !rest.is_empty() {
        let (key, after_eq) =
            rest.split_once('=').ok_or_else(|| format!("label pair missing '=' in {rest:?}"))?;
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("invalid label name {key:?}"));
        }
        let after_quote =
            after_eq.strip_prefix('"').ok_or_else(|| format!("label {key:?} value not quoted"))?;
        // find the closing quote, honouring backslash escapes
        let mut end = None;
        let bytes = after_quote.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let end = end.ok_or_else(|| format!("label {key:?} value unterminated"))?;
        rest = &after_quote[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("unexpected characters after label {key:?}"));
        }
    }
    Ok(())
}

/// Validates a `BENCH_<name>.json` artifact (as written by the `bench`
/// crate's `BenchResult::write`). Returns the recorded sample count on
/// success.
///
/// Checks: valid JSON object; `name` and `git_rev` non-empty strings;
/// `config` an object with string values; `samples` a non-negative
/// integer; `median_ms` and `p95_ms` numbers with `p95_ms >= median_ms`
/// when samples were recorded; `metrics` an object with numeric (or
/// null, for non-finite) values.
pub fn validate_bench_json(input: &str) -> Result<usize, String> {
    let value = parse(input).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = value.as_object().ok_or("bench artifact is not a JSON object")?;
    let field = |key: &str| -> Result<&Value, String> {
        obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
    };
    for key in ["name", "git_rev"] {
        match field(key)?.as_str() {
            Some(s) if !s.is_empty() => {}
            _ => return Err(format!("{key} must be a non-empty string")),
        }
    }
    let config = field("config")?.as_object().ok_or("config must be an object")?;
    for (key, value) in config {
        if value.as_str().is_none() {
            return Err(format!("config.{key} must be a string"));
        }
    }
    let samples =
        field("samples")?.as_u64().ok_or("samples must be a non-negative integer")? as usize;
    let median = field("median_ms")?.as_f64().ok_or("median_ms must be a number")?;
    let p95 = field("p95_ms")?.as_f64().ok_or("p95_ms must be a number")?;
    if samples > 0 && (median < 0.0 || p95 < median) {
        return Err(format!("implausible quantiles: median_ms {median}, p95_ms {p95}"));
    }
    let metrics = field("metrics")?.as_object().ok_or("metrics must be an object")?;
    for (key, value) in metrics {
        if value.as_f64().is_none() && !matches!(value, Value::Null) {
            return Err(format!("metrics.{key} must be a number"));
        }
    }
    Ok(samples)
}

/// Validates an EXPLAIN ANALYZE JSON document (as produced by
/// `qurator_plan::render::render_analyze_json`). Returns the number of
/// annotated plan nodes on success.
///
/// Checks: valid JSON object; `type == "analyze"`; `view` a string;
/// `optimized` a boolean; `run_id` null or 16 hex chars; `items` a
/// non-negative integer; `nodes` a non-empty array of objects each
/// carrying a unique string `node`, a known `kind`, integer `calls` /
/// `rows_in` / `rows_out` / `evidence` / `hits` counters and a numeric
/// `wall_us`.
pub fn validate_analyze_json(input: &str) -> Result<usize, String> {
    let value = parse(input.trim()).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = value.as_object().ok_or("analyze document is not a JSON object")?;
    let field = |key: &str| -> Result<&Value, String> {
        obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
    };
    if field("type")?.as_str() != Some("analyze") {
        return Err("type is not \"analyze\"".into());
    }
    if field("view")?.as_str().is_none() {
        return Err("view must be a string".into());
    }
    if field("optimized")?.as_bool().is_none() {
        return Err("optimized must be a boolean".into());
    }
    match field("run_id")? {
        Value::Null => {}
        v => {
            let run = v.as_str().ok_or("run_id must be null or a string")?;
            if crate::runid::RunId::parse(run).is_none() {
                return Err(format!("run_id {run:?} is not 16 hex chars"));
            }
        }
    }
    field("items")?.as_u64().ok_or("items must be a non-negative integer")?;
    let nodes = field("nodes")?.as_array().ok_or("nodes must be an array")?;
    if nodes.is_empty() {
        return Err("nodes must not be empty".into());
    }
    let mut names = std::collections::BTreeSet::new();
    for (i, node) in nodes.iter().enumerate() {
        let obj = node.as_object().ok_or_else(|| format!("nodes[{i}] is not an object"))?;
        let node_field = |key: &str| -> Result<&Value, String> {
            obj.get(key).ok_or_else(|| format!("nodes[{i}] missing key {key:?}"))
        };
        let name =
            node_field("node")?.as_str().ok_or_else(|| format!("nodes[{i}].node must be a string"))?;
        if !names.insert(name.to_string()) {
            return Err(format!("duplicate node {name:?}"));
        }
        let kind =
            node_field("kind")?.as_str().ok_or_else(|| format!("nodes[{i}].kind must be a string"))?;
        if !matches!(kind, "annotate" | "enrich" | "assert" | "consolidate" | "act") {
            return Err(format!("nodes[{i}]: unknown node kind {kind:?}"));
        }
        for key in ["calls", "rows_in", "rows_out", "evidence", "hits"] {
            node_field(key)?
                .as_u64()
                .ok_or_else(|| format!("nodes[{i}].{key} must be a non-negative integer"))?;
        }
        node_field("wall_us")?
            .as_f64()
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| format!("nodes[{i}].wall_us must be a non-negative number"))?;
    }
    Ok(nodes.len())
}

/// Validates a persisted per-view stats profile (as written under
/// `<store>/stats/` or `--stats-out` and served by `GET /stats/<view>`).
/// Returns the number of profiled nodes on success.
pub fn validate_stats_profile_json(input: &str) -> Result<usize, String> {
    let profile = crate::stats::StatsProfile::parse(input)?;
    Ok(profile.nodes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_trace_lines() {
        let jsonl = concat!(
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"view:v\",\"kind\":\"view\",\"start_ns\":0,\"end_ns\":10,\"attrs\":{}}\n",
            "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"wave:0\",\"kind\":\"wave\",\"start_ns\":1,\"end_ns\":9,\"attrs\":{\"width\":2}}\n",
        );
        assert_eq!(validate_trace_jsonl(jsonl).unwrap(), 2);
    }

    #[test]
    fn validates_bench_artifacts() {
        let ok = r#"{"name":"serve_load","git_rev":"abc123","config":{"clients":"8"},
            "samples":3,"median_ms":2,"p95_ms":3,"metrics":{"rps":120.5,"nan":null}}"#;
        assert_eq!(validate_bench_json(ok).unwrap(), 3);

        assert!(validate_bench_json("{}").unwrap_err().contains("missing key"));
        let noname = ok.replace("\"serve_load\"", "\"\"");
        assert!(validate_bench_json(&noname).unwrap_err().contains("non-empty string"));
        let backwards = ok.replace("\"p95_ms\":3", "\"p95_ms\":1");
        assert!(validate_bench_json(&backwards).unwrap_err().contains("implausible"));
        let badmetric = ok.replace("120.5", "\"fast\"");
        assert!(validate_bench_json(&badmetric).unwrap_err().contains("must be a number"));
        assert!(validate_bench_json("not json").unwrap_err().contains("invalid JSON"));
    }

    #[test]
    fn rejects_bad_trace_lines() {
        let dup = concat!(
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"a\",\"kind\":\"view\",\"start_ns\":0,\"end_ns\":1,\"attrs\":{}}\n",
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"b\",\"kind\":\"view\",\"start_ns\":0,\"end_ns\":1,\"attrs\":{}}\n",
        );
        assert!(validate_trace_jsonl(dup).unwrap_err().contains("duplicate span id"));

        let orphan =
            "{\"type\":\"span\",\"id\":2,\"parent\":9,\"name\":\"c\",\"kind\":\"node\",\"start_ns\":0,\"end_ns\":1,\"attrs\":{}}\n";
        assert!(validate_trace_jsonl(orphan).unwrap_err().contains("does not exist"));

        let open =
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"d\",\"kind\":\"node\",\"start_ns\":5,\"end_ns\":null,\"attrs\":{}}\n";
        assert!(validate_trace_jsonl(open).unwrap_err().contains("end_ns"));

        let backwards =
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"e\",\"kind\":\"node\",\"start_ns\":5,\"end_ns\":3,\"attrs\":{}}\n";
        assert!(validate_trace_jsonl(backwards).unwrap_err().contains("end_ns < start_ns"));

        let badkind =
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"f\",\"kind\":\"galaxy\",\"start_ns\":0,\"end_ns\":1,\"attrs\":{}}\n";
        assert!(validate_trace_jsonl(badkind).unwrap_err().contains("unknown span kind"));
    }

    #[test]
    fn accepts_and_checks_trace_header_lines() {
        let ok = concat!(
            "{\"type\":\"trace\",\"seq\":0,\"view\":\"fig1\",\"run_id\":\"00000000deadbeef\",\"reason\":\"rejected\",\"root_duration_ns\":42,\"rejected\":1,\"spans\":1}\n",
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"view:fig1\",\"kind\":\"view\",\"start_ns\":0,\"end_ns\":42,\"attrs\":{}}\n",
        );
        assert_eq!(validate_trace_jsonl(ok).unwrap(), 1);

        let bad_reason =
            "{\"type\":\"trace\",\"seq\":0,\"view\":\"v\",\"run_id\":\"00000000deadbeef\",\"reason\":\"vibes\",\"root_duration_ns\":1}\n";
        assert!(validate_trace_jsonl(bad_reason).unwrap_err().contains("retention reason"));

        let no_run =
            "{\"type\":\"trace\",\"seq\":0,\"view\":\"v\",\"reason\":\"sampled\",\"root_duration_ns\":1}\n";
        assert!(validate_trace_jsonl(no_run).unwrap_err().contains("run_id"));

        let bad_run =
            "{\"type\":\"trace\",\"seq\":0,\"view\":\"v\",\"run_id\":\"xyz\",\"reason\":\"sampled\",\"root_duration_ns\":1}\n";
        assert!(validate_trace_jsonl(bad_run).unwrap_err().contains("16 hex"));
    }

    #[test]
    fn accepts_and_rejects_access_log_lines() {
        let ok = concat!(
            "{\"type\":\"access\",\"seq\":0,\"ts_ms\":1700000000000,\"peer\":\"127.0.0.1:9\",\"route\":\"/run\",\"status\":200,\"bytes\":120,\"latency_us\":900,\"run_id\":\"00000000deadbeef\",\"shed\":false,\"timeout\":false}\n",
            "{\"type\":\"access\",\"seq\":1,\"ts_ms\":1700000000001,\"peer\":\"-\",\"route\":\"-\",\"status\":503,\"bytes\":0,\"latency_us\":0,\"run_id\":null,\"shed\":true,\"timeout\":false}\n",
        );
        assert_eq!(validate_access_log_jsonl(ok).unwrap(), 2);

        let dup = ok.replace("\"seq\":1", "\"seq\":0");
        assert!(validate_access_log_jsonl(&dup).unwrap_err().contains("duplicate"));
        let bad_status = ok.replace("\"status\":200", "\"status\":9000");
        assert!(validate_access_log_jsonl(&bad_status).unwrap_err().contains("implausible"));
        let bad_run = ok.replace("00000000deadbeef", "nope");
        assert!(validate_access_log_jsonl(&bad_run).unwrap_err().contains("16 hex"));
        let bad_type = ok.replace("\"type\":\"access\"", "\"type\":\"span\"");
        assert!(validate_access_log_jsonl(&bad_type).unwrap_err().contains("access"));
    }

    #[test]
    fn accepts_valid_metrics_text() {
        let text = "enrich.bulk.rows 120\nqa.classify.count{class=\"q:high\"} 7\nenrich.lookup.latency_p95 2047\n";
        assert_eq!(validate_metrics_text(text).unwrap(), 3);
    }

    #[test]
    fn rejects_bad_metrics_text() {
        assert!(validate_metrics_text("not a number line\n").is_err());
        assert!(validate_metrics_text("9bad.name 1\n").is_err());
        assert!(validate_metrics_text("dup 1\ndup 2\n").unwrap_err().contains("duplicate"));
        assert!(validate_metrics_text("m{class=unquoted} 1\n").is_err());
        assert!(validate_metrics_text("m{class=\"open} 1\n").is_err());
    }

    #[test]
    fn accepts_and_rejects_analyze_json() {
        let ok = concat!(
            "{\"type\":\"analyze\",\"view\":\"fig1\",\"optimized\":true,\"run_id\":\"00000000deadbeef\",\"items\":5,",
            "\"nodes\":[",
            "{\"node\":\"ann\",\"kind\":\"annotate\",\"calls\":1,\"rows_in\":5,\"rows_out\":5,\"evidence\":5,\"hits\":5,\"wall_us\":12.5},",
            "{\"node\":\"Enrich\",\"kind\":\"enrich\",\"calls\":1,\"rows_in\":5,\"rows_out\":5,\"evidence\":15,\"hits\":5,\"wall_us\":88}",
            "]}"
        );
        assert_eq!(validate_analyze_json(ok).unwrap(), 2);

        let no_run = ok.replace("\"00000000deadbeef\"", "null");
        assert_eq!(validate_analyze_json(&no_run).unwrap(), 2);
        let bad_kind = ok.replace("\"enrich\"", "\"teleport\"");
        assert!(validate_analyze_json(&bad_kind).unwrap_err().contains("unknown node kind"));
        let dup = ok.replace("\"Enrich\"", "\"ann\"");
        assert!(validate_analyze_json(&dup).unwrap_err().contains("duplicate node"));
        let neg = ok.replace("\"wall_us\":88", "\"wall_us\":-1");
        assert!(validate_analyze_json(&neg).unwrap_err().contains("wall_us"));
        assert!(validate_analyze_json("{}").unwrap_err().contains("missing key"));
    }

    #[test]
    fn accepts_stats_profile_json() {
        let mut profile = crate::stats::StatsProfile::new("fig1", 42);
        let mut run = crate::stats::RunStats::default();
        run.nodes.insert("Enrich".into(), crate::stats::NodeStats { calls: 1, rows_in: 5, rows_out: 5, evidence: 15, hits: 5, wall_ns: 1000 });
        profile.observe(&run);
        assert_eq!(validate_stats_profile_json(&profile.to_json()).unwrap(), 1);
        assert!(validate_stats_profile_json("{}").is_err());
    }

    #[test]
    fn registry_output_passes_validation() {
        let registry = crate::metrics::MetricsRegistry::new();
        registry.counter_with("qa.classify.count", &[("class", "q:\"odd\"")]).inc();
        registry.histogram("enrich.lookup.latency").record(100);
        registry.gauge("enact.wave.width").set(4);
        let text = registry.render_prometheus();
        // counter + gauge + histogram (1 non-empty bucket + +Inf + count/sum/p50/p95)
        assert_eq!(validate_metrics_text(&text).unwrap(), 8);
        assert!(text.contains("enrich.lookup.latency_bucket{le=\"127\"} 1"));
        assert!(text.contains("enrich.lookup.latency_bucket{le=\"+Inf\"} 1"));
    }
}
