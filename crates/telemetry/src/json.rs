//! A minimal, dependency-free JSON reader/escaper — just enough for the
//! in-tree schema checks ([`crate::schema`]) and exporters to round-trip
//! their own output. Not a general-purpose JSON library.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `obj.get(key)` convenience for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document; rejects trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf8 in number".to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            // surrogate pairs are out of scope for our own
                            // exports; map unpaired surrogates to U+FFFD
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy a full utf8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let value =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true, "f": false}"#)
                .unwrap();
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(value.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(value.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert!(value.get("b").unwrap().get("d").unwrap().is_null());
        assert_eq!(value.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn escape_round_trips() {
        let original = "quote \" backslash \\ newline \n tab \t control \u{1}";
        let parsed = parse(&format!("\"{}\"", escape(original))).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("truthy").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
