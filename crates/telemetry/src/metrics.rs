//! Process-wide metrics: counters, gauges and log₂-bucket histograms
//! behind sharded atomics.
//!
//! Hot-path writes touch one cache-line-padded `AtomicU64` chosen by a
//! thread-local shard index, so concurrent workers don't contend on a
//! single line. Instrument lookup goes through a `RwLock<BTreeMap>` once
//! per call site (call sites cache the returned `Arc` in a `OnceLock`),
//! and [`MetricsRegistry::reset`] zeroes values *in place* rather than
//! clearing the map, so cached handles never go stale.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

pub(crate) const SHARDS: usize = 8;

/// One cache line per shard so increments from different threads don't
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

pub(crate) fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-value-wins gauge (signed).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket `i` holds values whose log₂ is
/// `i-1` (bucket 0 holds zero), i.e. upper bounds 0, 1, 2, 4, 8, …
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log₂-scale histogram. Bucket boundaries are powers of
/// two, which is plenty for latencies and row counts while keeping the
/// record path branch-free (one `leading_zeros`).
pub struct Histogram {
    // [shard][bucket]
    buckets: [[AtomicU64; HISTOGRAM_BUCKETS]; SHARDS],
    sum: [PaddedU64; SHARDS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            sum: Default::default(),
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`, so
/// bucket `i >= 1` covers `[2^(i-1), 2^i - 1]` (bucket 1 is exactly
/// `{1}`, bucket 2 is `{2, 3}`, …).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        let shard = shard_index();
        self.buckets[shard][bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum[shard].0.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        let mut total = 0u64;
        for shard in &self.buckets {
            for b in shard {
                total += b.load(Ordering::Relaxed);
            }
        }
        total
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    /// Per-bucket counts merged across shards.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for shard in &self.buckets {
            for (i, b) in shard.iter().enumerate() {
                out[i] += b.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Approximate quantile (upper bound of the bucket containing the
    /// q-th observation). `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    fn reset(&self) {
        for shard in &self.buckets {
            for b in shard {
                b.store(0, Ordering::Relaxed);
            }
        }
        for s in &self.sum {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Instrument key: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    fn render(&self) -> String {
        self.render_suffixed("", None)
    }

    /// Renders `<name><suffix>{labels...,extra}`, merging an extra label
    /// (e.g. `le` for histogram buckets) into the instrument's own label
    /// set.
    fn render_suffixed(&self, suffix: &str, extra: Option<(&str, &str)>) -> String {
        let escape = |v: &str| v.replace('\\', "\\\\").replace('"', "\\\"");
        let mut labels: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))).collect();
        if let Some((k, v)) = extra {
            labels.push(format!("{k}=\"{}\"", escape(v)));
        }
        if labels.is_empty() {
            format!("{}{}", self.name, suffix)
        } else {
            format!("{}{}{{{}}}", self.name, suffix, labels.join(","))
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A snapshot row, as exposed by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    /// (count, sum, p50, p95)
    Histogram {
        count: u64,
        sum: u64,
        p50: u64,
        p95: u64,
    },
}

/// The registry: name+labels → instrument. Get-or-create; instruments
/// live for the process lifetime.
#[derive(Default)]
pub struct MetricsRegistry {
    instruments: RwLock<BTreeMap<MetricKey, Instrument>>,
}

impl MetricsRegistry {
    /// Creates an empty registry (tests; production uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create a counter with no labels.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get-or-create a counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        if let Some(Instrument::Counter(c)) = self.instruments.read().unwrap().get(&key) {
            return c.clone();
        }
        let mut map = self.instruments.write().unwrap();
        match map.entry(key).or_insert_with(|| Instrument::Counter(Arc::new(Counter::default()))) {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get-or-create a gauge with no labels.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get-or-create a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        if let Some(Instrument::Gauge(g)) = self.instruments.read().unwrap().get(&key) {
            return g.clone();
        }
        let mut map = self.instruments.write().unwrap();
        match map.entry(key).or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default()))) {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get-or-create a histogram with no labels.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Get-or-create a histogram with labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        if let Some(Instrument::Histogram(h)) = self.instruments.read().unwrap().get(&key) {
            return h.clone();
        }
        let mut map = self.instruments.write().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::default())))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// A deterministic (name-ordered) snapshot of every instrument.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.instruments.read().unwrap();
        map.iter()
            .map(|(key, inst)| {
                let value = match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.value()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.value()),
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                    },
                };
                (key.render(), value)
            })
            .collect()
    }

    /// Prometheus-style text exposition. Histograms are exposed as one
    /// cumulative `<name>_bucket{le="..."}` series per label set (bucket
    /// counts merged across the internal write shards *before* rendering,
    /// so a series is monotone regardless of which threads recorded into
    /// it), followed by `<name>_count`, `<name>_sum`, `<name>_p50`,
    /// `<name>_p95`. Only non-empty buckets are emitted, plus the
    /// mandatory `le="+Inf"` terminator.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let map = self.instruments.read().unwrap();
        for (key, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{} {}", key.render(), c.value());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", key.render(), g.value());
                }
                Instrument::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        if *c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = bucket_upper_bound(i).to_string();
                        let _ = writeln!(
                            out,
                            "{} {cumulative}",
                            key.render_suffixed("_bucket", Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} {cumulative}",
                        key.render_suffixed("_bucket", Some(("le", "+Inf")))
                    );
                    let _ = writeln!(out, "{} {}", key.render_suffixed("_count", None), h.count());
                    let _ = writeln!(out, "{} {}", key.render_suffixed("_sum", None), h.sum());
                    let _ =
                        writeln!(out, "{} {}", key.render_suffixed("_p50", None), h.quantile(0.50));
                    let _ =
                        writeln!(out, "{} {}", key.render_suffixed("_p95", None), h.quantile(0.95));
                }
            }
        }
        out
    }

    /// Zeroes every instrument **in place**. Never removes map entries, so
    /// `Arc` handles cached at call sites (e.g. in `OnceLock` statics)
    /// keep pointing at the live instrument.
    pub fn reset(&self) {
        let map = self.instruments.read().unwrap();
        for inst in map.values() {
            match inst {
                Instrument::Counter(c) => c.reset(),
                Instrument::Gauge(g) => g.reset(),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry used by all instrumented call sites.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("test.ops");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 8000);
        // same key returns the same instrument
        assert_eq!(registry.counter("test.ops").value(), 8000);
    }

    #[test]
    fn labeled_counters_are_distinct_and_sorted() {
        let registry = MetricsRegistry::new();
        registry.counter_with("qa.classify.count", &[("class", "high")]).add(3);
        registry.counter_with("qa.classify.count", &[("class", "low")]).add(1);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["qa.classify.count{class=\"high\"}", "qa.classify.count{class=\"low\"}"]
        );
        assert_eq!(snapshot[0].1, MetricValue::Counter(3));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // bucket 0 = {0}, bucket i >= 1 = [2^(i-1), 2^i - 1]
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(9), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(2047), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(11), 2047);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // every value lands in a bucket whose bound contains it
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 20, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "value {v} above bound of bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "value {v} not above bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn histogram_quantiles_track_bucket_bounds() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("test.latency");
        for _ in 0..90 {
            h.record(3);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 3 + 10 * 1000);
        // p50 falls in the bucket holding 3
        assert_eq!(h.quantile(0.50), bucket_upper_bound(bucket_index(3)));
        // p95 falls in the bucket holding 1000
        assert_eq!(h.quantile(0.95), bucket_upper_bound(bucket_index(1000)));
        assert_eq!(h.quantile(1.0), bucket_upper_bound(bucket_index(1000)));
    }

    #[test]
    fn histogram_buckets_merge_across_shards_into_one_monotone_series() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram_with("serve.request.latency", &[("route", "/metrics")]);
        // Record from more threads than there are shards so every shard's
        // per-bucket array is populated; a per-shard renderer would emit
        // duplicate (and individually partial) `_bucket` series.
        std::thread::scope(|scope| {
            for t in 0..(SHARDS + 2) {
                let h = h.clone();
                scope.spawn(move || {
                    for v in [1u64, 3, 100, 5000] {
                        h.record(v + t as u64 % 2);
                    }
                });
            }
        });
        let text = registry.render_prometheus();
        crate::schema::validate_metrics_text(&text).unwrap();
        // exactly one series per le value for this label set...
        let bucket_lines: Vec<(&str, u64)> = text
            .lines()
            .filter(|l| l.starts_with("serve.request.latency_bucket{"))
            .map(|l| {
                let (series, value) = l.rsplit_once(' ').unwrap();
                (series, value.parse::<u64>().unwrap())
            })
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        for (series, _) in &bucket_lines {
            assert!(series.contains("route=\"/metrics\""), "bucket series lost its labels");
            assert!(seen.insert(*series), "duplicate bucket series {series}");
        }
        // ...and the cumulative counts are monotone, ending at the total.
        let values: Vec<u64> = bucket_lines.iter().map(|(_, v)| *v).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "bucket series not monotone: {values:?}");
        assert_eq!(*values.last().unwrap(), h.count());
        assert_eq!(h.count(), (SHARDS as u64 + 2) * 4);
    }

    #[test]
    fn reset_preserves_cached_handles() {
        let registry = MetricsRegistry::new();
        let cached = registry.counter("test.cached");
        cached.add(7);
        registry.reset();
        assert_eq!(cached.value(), 0);
        cached.add(2);
        // the registry still sees the same instrument
        assert_eq!(registry.counter("test.cached").value(), 2);
        let rendered = registry.render_prometheus();
        assert!(rendered.contains("test.cached 2"));
    }
}
