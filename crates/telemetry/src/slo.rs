//! Service-level objectives for `qv serve`: per-route latency targets
//! and availability error budgets over a sliding window.
//!
//! The tracker owns **no instrumentation of its own** — it reads the
//! request counters (`serve.requests{route,status}`) and latency
//! histograms (`serve.request.latency{route}`) the server already
//! records, takes a cumulative snapshot per tick, and differences the
//! newest snapshot against the newest one older than the window. Ticks
//! are lazy (the server ticks on `GET /metrics` and `GET /slo`), so the
//! request hot path pays nothing.
//!
//! Two objectives per route, both with the standard error-budget
//! arithmetic over the window:
//!
//! * **latency** — at most 1% of requests may exceed the p99 target
//!   (`--slo-p99-ms`): `bad` = requests in histogram buckets strictly
//!   above the target's bucket;
//! * **availability** — at least `--slo-availability` of requests must
//!   not fail (status ≥ 500): `bad` = 5xx responses, including sheds.
//!
//! For each objective with target fraction `o` over `total` requests of
//! which `bad` were bad:
//!
//! ```text
//! allowed    = (1 − o) · total            # the error budget
//! burn_rate  = bad / allowed              # 1.0 = burning exactly at budget
//! remaining  = 1 − burn_rate              # <0 = budget overdrawn
//! ```
//!
//! Exported as `slo.budget.remaining{route,objective}` and
//! `slo.burn.rate{route,objective}` gauges in permille, plus the full
//! JSON at `GET /slo`.

use crate::metrics::{bucket_index, MetricValue, MetricsRegistry};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// Objectives and window length.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Per-route p99 latency target, microseconds.
    pub p99_target_us: u64,
    /// Availability objective in `(0, 1)`, e.g. `0.999`.
    pub availability: f64,
    /// Sliding-window length, seconds.
    pub window_secs: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig { p99_target_us: 250_000, availability: 0.999, window_secs: 300 }
    }
}

/// Cumulative per-route totals at one tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Cumulative {
    /// Requests answered (all statuses, from the request counters).
    total: u64,
    /// Responses with status ≥ 500.
    failures: u64,
    /// Requests with a recorded latency.
    measured: u64,
    /// Latencies in buckets strictly above the target's bucket.
    breaching: u64,
}

#[derive(Debug, Default)]
struct RouteWindow {
    snaps: VecDeque<(u64, Cumulative)>,
}

/// One objective's state over the window.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveStatus {
    /// Target fraction of good requests (0.99 for p99 latency).
    pub objective: f64,
    /// Requests considered in the window.
    pub total: u64,
    /// Requests that violated the objective.
    pub bad: u64,
    /// Fraction of the error budget left, `1.0` = untouched.
    pub budget_remaining: f64,
    /// `bad / allowed`; `1.0` = burning exactly at budget.
    pub burn_rate: f64,
}

fn objective_status(objective: f64, total: u64, bad: u64) -> ObjectiveStatus {
    let allowed = (1.0 - objective) * total as f64;
    let burn_rate = if total == 0 || allowed <= 0.0 { 0.0 } else { bad as f64 / allowed };
    ObjectiveStatus { objective, total, bad, budget_remaining: 1.0 - burn_rate, burn_rate }
}

/// One route's SLO state over the window.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSlo {
    pub route: String,
    pub latency: ObjectiveStatus,
    pub availability: ObjectiveStatus,
}

/// Sliding-window SLO tracker over the serve request metrics.
pub struct SloTracker {
    config: SloConfig,
    routes: Mutex<BTreeMap<String, RouteWindow>>,
}

/// Extracts one label value from a rendered metric key such as
/// `serve.requests{route="/run",status="200"}`. Good enough for the
/// server's own low-cardinality label values (no quotes, no commas).
fn label_value<'a>(rendered: &'a str, label: &str) -> Option<&'a str> {
    let needle = format!("{label}=\"");
    let start = rendered.find(&needle)? + needle.len();
    let end = rendered[start..].find('"')?;
    Some(&rendered[start..start + end])
}

impl SloTracker {
    pub fn new(config: SloConfig) -> SloTracker {
        SloTracker { config, routes: Mutex::new(BTreeMap::new()) }
    }

    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Reads the current cumulative per-route totals out of the
    /// registry's request counters and latency histograms.
    fn collect(&self, registry: &MetricsRegistry) -> BTreeMap<String, Cumulative> {
        let mut routes: BTreeMap<String, Cumulative> = BTreeMap::new();
        let mut with_latency: Vec<String> = Vec::new();
        for (rendered, value) in registry.snapshot() {
            if rendered.starts_with("serve.requests{") {
                let MetricValue::Counter(count) = value else { continue };
                let (Some(route), Some(status)) =
                    (label_value(&rendered, "route"), label_value(&rendered, "status"))
                else {
                    continue;
                };
                let entry = routes.entry(route.to_string()).or_default();
                entry.total += count;
                if status.parse::<u16>().is_ok_and(|s| s >= 500) {
                    entry.failures += count;
                }
            } else if rendered.starts_with("serve.request.latency{") {
                if let Some(route) = label_value(&rendered, "route") {
                    with_latency.push(route.to_string());
                }
            }
        }
        let breach_bucket = bucket_index(self.config.p99_target_us);
        for route in with_latency {
            let hist = registry.histogram_with("serve.request.latency", &[("route", &route)]);
            let counts = hist.bucket_counts();
            let entry = routes.entry(route).or_default();
            entry.measured = counts.iter().sum();
            entry.breaching = counts.iter().skip(breach_bucket + 1).sum();
        }
        routes
    }

    /// Takes a snapshot at `now_ms`, differences it against the window
    /// baseline, updates the `slo.budget.remaining` / `slo.burn.rate`
    /// gauges, and returns the per-route status (sorted by route).
    pub fn tick(&self, registry: &MetricsRegistry, now_ms: u64) -> Vec<RouteSlo> {
        let window_ms = self.config.window_secs.saturating_mul(1000);
        // signed: a server younger than one window has a negative
        // horizon, and nothing (not even a t=0 snapshot) is "old" yet
        let horizon = now_ms as i64 - window_ms as i64;
        let current = self.collect(registry);
        let mut windows = self.routes.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(current.len());
        for (route, cum) in current {
            let window = windows.entry(route.clone()).or_default();
            window.snaps.push_back((now_ms, cum));
            // Baseline: the newest snapshot at or before the horizon
            // (zero — i.e. full history — while the server is younger
            // than one window). Everything older is dropped.
            let mut baseline = Cumulative::default();
            while let Some(&(ts, snap)) = window.snaps.front() {
                if ts as i64 > horizon || window.snaps.len() == 1 {
                    break;
                }
                // only a baseline if the *next* snapshot is also usable
                if window.snaps.get(1).is_some_and(|&(next_ts, _)| next_ts as i64 <= horizon) {
                    window.snaps.pop_front();
                    continue;
                }
                baseline = snap;
                break;
            }
            let delta = Cumulative {
                total: cum.total.saturating_sub(baseline.total),
                failures: cum.failures.saturating_sub(baseline.failures),
                measured: cum.measured.saturating_sub(baseline.measured),
                breaching: cum.breaching.saturating_sub(baseline.breaching),
            };
            let latency = objective_status(0.99, delta.measured, delta.breaching);
            let availability =
                objective_status(self.config.availability, delta.total, delta.failures);
            for (objective, status) in [("latency", &latency), ("availability", &availability)] {
                let labels = &[("route", route.as_str()), ("objective", objective)];
                let permille =
                    |x: f64| (x * 1000.0).round().clamp(-1_000_000.0, 1_000_000.0) as i64;
                registry
                    .gauge_with("slo.budget.remaining", labels)
                    .set(permille(status.budget_remaining));
                registry.gauge_with("slo.burn.rate", labels).set(permille(status.burn_rate));
            }
            out.push(RouteSlo { route, latency, availability });
        }
        out
    }

    /// The full SLO state as one JSON document (the `GET /slo` body).
    pub fn to_json(&self, registry: &MetricsRegistry, now_ms: u64) -> String {
        use std::fmt::Write as _;
        let status = self.tick(registry, now_ms);
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"p99_target_us\":{},\"availability\":{},\"window_secs\":{},\"routes\":[",
            self.config.p99_target_us, self.config.availability, self.config.window_secs
        );
        for (i, route) in status.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let objective = |s: &ObjectiveStatus| {
                format!(
                    concat!(
                        "{{\"objective\":{},\"total\":{},\"bad\":{},",
                        "\"budget_remaining\":{:.6},\"burn_rate\":{:.6}}}"
                    ),
                    s.objective, s.total, s.bad, s.budget_remaining, s.burn_rate
                )
            };
            let _ = write!(
                out,
                "{{\"route\":\"{}\",\"latency\":{},\"availability\":{}}}",
                crate::json::escape(&route.route),
                objective(&route.latency),
                objective(&route.availability)
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::bucket_upper_bound;

    fn drive(registry: &MetricsRegistry, route: &str, status: &str, latency_us: u64, n: u64) {
        registry.counter_with("serve.requests", &[("route", route), ("status", status)]).add(n);
        let hist = registry.histogram_with("serve.request.latency", &[("route", route)]);
        for _ in 0..n {
            hist.record(latency_us);
        }
    }

    #[test]
    fn full_budget_when_every_request_is_good() {
        let registry = MetricsRegistry::new();
        let tracker = SloTracker::new(SloConfig::default());
        drive(&registry, "/run", "200", 1_000, 100);
        let status = tracker.tick(&registry, 1_000);
        assert_eq!(status.len(), 1);
        let route = &status[0];
        assert_eq!(route.route, "/run");
        assert_eq!(route.latency.total, 100);
        assert_eq!(route.latency.bad, 0);
        assert_eq!(route.latency.budget_remaining, 1.0);
        assert_eq!(route.availability.burn_rate, 0.0);
    }

    #[test]
    fn breaches_and_failures_burn_their_budgets() {
        let registry = MetricsRegistry::new();
        let config = SloConfig { p99_target_us: 10_000, availability: 0.9, window_secs: 300 };
        let tracker = SloTracker::new(config.clone());
        // 95 fast + 5 far-above-target slow requests: 5% bad vs 1% allowed
        drive(&registry, "/run", "200", 1_000, 95);
        let slow = bucket_upper_bound(bucket_index(config.p99_target_us) + 2);
        drive(&registry, "/run", "200", slow, 5);
        // plus 20 shed requests on the early-failure pseudo-route
        registry.counter_with("serve.requests", &[("route", "-"), ("status", "503")]).add(20);
        let status = tracker.tick(&registry, 1_000);
        let run = status.iter().find(|r| r.route == "/run").expect("/run status");
        assert_eq!(run.latency.bad, 5);
        assert!((run.latency.burn_rate - 5.0).abs() < 1e-9, "{:?}", run.latency);
        assert!((run.latency.budget_remaining - -4.0).abs() < 1e-9);
        // availability for /run untouched; the sheds burn the "-" route
        assert_eq!(run.availability.bad, 0);
        let early = status.iter().find(|r| r.route == "-").expect("- status");
        assert_eq!(early.availability.total, 20);
        assert_eq!(early.availability.bad, 20);
        assert!((early.availability.burn_rate - 10.0).abs() < 1e-9);
        // gauges exported in permille
        let gauge = registry
            .gauge_with("slo.burn.rate", &[("route", "/run"), ("objective", "latency")])
            .value();
        assert_eq!(gauge, 5000);
    }

    #[test]
    fn window_slides_past_old_badness() {
        let registry = MetricsRegistry::new();
        let config = SloConfig { p99_target_us: 10_000, availability: 0.99, window_secs: 10 };
        let tracker = SloTracker::new(config);
        // t=0s: 50 failures
        drive(&registry, "/run", "503", 1_000, 50);
        let status = tracker.tick(&registry, 0);
        assert_eq!(status[0].availability.bad, 50);
        // t=5s: nothing new — failures still inside the 10s window
        let status = tracker.tick(&registry, 5_000);
        assert_eq!(status[0].availability.bad, 50);
        // t=20s: 100 fresh good requests; the old badness has aged out
        drive(&registry, "/run", "200", 1_000, 100);
        let status = tracker.tick(&registry, 20_000);
        assert_eq!(status[0].availability.bad, 0, "{:?}", status[0].availability);
        assert_eq!(status[0].availability.total, 100);
        assert_eq!(status[0].availability.budget_remaining, 1.0);
    }

    #[test]
    fn slo_json_is_parseable_and_complete() {
        let registry = MetricsRegistry::new();
        let tracker = SloTracker::new(SloConfig::default());
        drive(&registry, "/run", "200", 1_000, 10);
        drive(&registry, "/metrics", "200", 500, 3);
        let json = tracker.to_json(&registry, 1_000);
        let value = crate::json::parse(&json).expect("parse /slo body");
        assert_eq!(value.get("p99_target_us").and_then(|v| v.as_u64()), Some(250_000));
        let routes = value.get("routes").and_then(|v| v.as_array()).expect("routes");
        assert_eq!(routes.len(), 2);
        for route in routes {
            for objective in ["latency", "availability"] {
                let o = route.get(objective).expect(objective);
                assert!(o.get("budget_remaining").and_then(|v| v.as_f64()).is_some());
                assert!(o.get("burn_rate").and_then(|v| v.as_f64()).is_some());
            }
        }
    }
}
