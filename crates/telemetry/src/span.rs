//! Hierarchical spans: the structural half of an enactment trace.
//!
//! A [`TraceSession`] hands out per-worker [`SpanRecorder`]s that append to
//! thread-local buffers — recording a span is two `Instant::now()` reads,
//! one atomic id allocation and a `Vec` push; no locks are shared between
//! workers. At the end of the traced activity the buffers are merged into
//! one [`SpanTrace`], which owns validation (well-formedness), rendering
//! and the JSON-lines export.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Opaque span identifier, unique within one [`TraceSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The level of a span in the enactment hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A whole view execution / enactment (the root).
    View,
    /// One wave (antichain) of the dependency graph.
    Wave,
    /// One processor node within a wave.
    Node,
    /// One implicit-iteration invocation of a node.
    Invocation,
    /// A named phase of the direct interpreter (annotation, enrichment, …).
    Phase,
    /// Anything else.
    Custom,
}

impl SpanKind {
    /// Stable lowercase name (used in exports and schema checks).
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::View => "view",
            SpanKind::Wave => "wave",
            SpanKind::Node => "node",
            SpanKind::Invocation => "invocation",
            SpanKind::Phase => "phase",
            SpanKind::Custom => "custom",
        }
    }

    /// Parses the stable name back (exports round-trip).
    pub fn parse(s: &str) -> Option<SpanKind> {
        Some(match s {
            "view" => SpanKind::View,
            "wave" => SpanKind::Wave,
            "node" => SpanKind::Node,
            "invocation" => SpanKind::Invocation,
            "phase" => SpanKind::Phase,
            "custom" => SpanKind::Custom,
            _ => return None,
        })
    }
}

/// A span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Text(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Text(s) => write!(f, "{s}"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Text(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Text(s)
    }
}
impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}
impl From<usize> for AttrValue {
    fn from(i: usize) -> Self {
        AttrValue::Int(i as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::Float(x)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// One recorded span. Timestamps are nanoseconds since the session epoch
/// (a shared monotonic `Instant`, valid across threads).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub name: String,
    pub kind: SpanKind,
    pub start_ns: u64,
    /// `None` while the span is still open; every span in a finished
    /// [`SpanTrace`] must be closed.
    pub end_ns: Option<u64>,
    pub attrs: Vec<(String, AttrValue)>,
}

impl Span {
    /// Duration, if closed.
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }

    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Shared session state: the time epoch and the span-id allocator.
///
/// Cheap to share by reference into scoped worker threads; each worker
/// derives its own [`SpanRecorder`] so no recording synchronises on
/// anything but the id counter (one `fetch_add` per span).
#[derive(Debug, Clone)]
pub struct TraceSession {
    epoch: Instant,
    next_id: Arc<AtomicU64>,
}

impl Default for TraceSession {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSession {
    /// Starts a session; the epoch is `now`.
    pub fn new() -> Self {
        TraceSession { epoch: Instant::now(), next_id: Arc::new(AtomicU64::new(1)) }
    }

    /// Nanoseconds since the session epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// A fresh per-worker recorder.
    pub fn recorder(&self) -> SpanRecorder {
        SpanRecorder { session: self.clone(), spans: Vec::new() }
    }
}

/// A per-worker span buffer. Owns its `Vec<Span>`; recording never blocks
/// on other workers.
#[derive(Debug)]
pub struct SpanRecorder {
    session: TraceSession,
    spans: Vec<Span>,
}

impl SpanRecorder {
    /// Opens a span and returns its id.
    pub fn start(
        &mut self,
        name: impl Into<String>,
        kind: SpanKind,
        parent: Option<SpanId>,
    ) -> SpanId {
        let id = SpanId(self.session.next_id.fetch_add(1, Ordering::Relaxed));
        self.spans.push(Span {
            id,
            parent,
            name: name.into(),
            kind,
            start_ns: self.session.now_ns(),
            end_ns: None,
            attrs: Vec::new(),
        });
        id
    }

    /// Closes a span (no-op for ids this recorder never opened).
    pub fn end(&mut self, id: SpanId) {
        let now = self.session.now_ns();
        // open spans cluster at the tail: scan backwards
        if let Some(span) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            span.end_ns = Some(now);
        }
    }

    /// Attaches an attribute to a span owned by this recorder.
    pub fn attr(&mut self, id: SpanId, key: impl Into<String>, value: impl Into<AttrValue>) {
        if let Some(span) = self.spans.iter_mut().rev().find(|s| s.id == id) {
            span.attrs.push((key.into(), value.into()));
        }
    }

    /// Closes every still-open span owned by this recorder at `now` — the
    /// error-path companion to [`SpanRecorder::end`], so a trace cut short
    /// by a failure still validates and can be retained.
    pub fn end_open(&mut self) {
        let now = self.session.now_ns();
        for span in self.spans.iter_mut() {
            if span.end_ns.is_none() {
                span.end_ns = Some(now);
            }
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Consumes the recorder, yielding its raw spans for merging.
    pub fn finish(self) -> Vec<Span> {
        self.spans
    }
}

/// A merged, finished trace: the span tree of one enactment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTrace {
    /// Spans ordered by id (allocation order — a deterministic total
    /// order that interleaves worker buffers consistently).
    spans: Vec<Span>,
}

impl SpanTrace {
    /// Builds a trace from merged recorder outputs.
    pub fn from_spans(mut spans: Vec<Span>) -> Self {
        spans.sort_by_key(|s| s.id);
        SpanTrace { spans }
    }

    /// All spans, ordered by id.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The span with the given id.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.spans.binary_search_by_key(&id, |s| s.id).ok().map(|i| &self.spans[i])
    }

    /// Spans without a parent (normally exactly one: the view span).
    pub fn roots(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// Direct children of a span, sorted by (kind, name, id) so the order
    /// is independent of parallel completion order.
    pub fn children(&self, id: SpanId) -> Vec<&Span> {
        let mut out: Vec<&Span> = self.spans.iter().filter(|s| s.parent == Some(id)).collect();
        out.sort_by(|a, b| {
            a.kind.cmp(&b.kind).then_with(|| a.name.cmp(&b.name)).then(a.id.cmp(&b.id))
        });
        out
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Well-formedness: every span closed, `end >= start`, every parent
    /// exists, no span is its own ancestor, and every child's interval is
    /// contained in its parent's (worker merging must not corrupt the
    /// hierarchy).
    pub fn validate(&self) -> Result<(), String> {
        for span in &self.spans {
            let Some(end) = span.end_ns else {
                return Err(format!("span {} {:?} was never closed", span.id, span.name));
            };
            if end < span.start_ns {
                return Err(format!("span {} {:?} ends before it starts", span.id, span.name));
            }
            // walk up, detecting dangling parents and cycles
            let mut hops = 0usize;
            let mut current = span;
            while let Some(parent_id) = current.parent {
                let Some(parent) = self.span(parent_id) else {
                    return Err(format!(
                        "span {} {:?} has dangling parent {parent_id}",
                        span.id, span.name
                    ));
                };
                hops += 1;
                if hops > self.spans.len() {
                    return Err(format!("span {} {:?} is in a parent cycle", span.id, span.name));
                }
                current = parent;
            }
            if let Some(parent) = span.parent.and_then(|p| self.span(p)) {
                let parent_end = parent.end_ns.unwrap_or(u64::MAX);
                if span.start_ns < parent.start_ns || end > parent_end {
                    return Err(format!(
                        "span {} {:?} [{}..{}] escapes parent {} {:?} [{}..{}]",
                        span.id,
                        span.name,
                        span.start_ns,
                        end,
                        parent.id,
                        parent.name,
                        parent.start_ns,
                        parent_end
                    ));
                }
            }
        }
        Ok(())
    }

    /// Human-readable tree rendering (deterministic: children sorted by
    /// kind, then name).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut roots: Vec<&Span> = self.roots().collect();
        roots.sort_by(|a, b| a.name.cmp(&b.name).then(a.id.cmp(&b.id)));
        for root in roots {
            self.render_node(root, 0, &mut out);
        }
        let _ = write!(out, "{} span(s)", self.spans.len());
        out
    }

    fn render_node(&self, span: &Span, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let indent = "  ".repeat(depth);
        let duration = span
            .duration_ns()
            .map(|ns| format!("{:.3}ms", ns as f64 / 1e6))
            .unwrap_or_else(|| "open".to_string());
        let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(
            out,
            "{indent}[{}] {} ({duration}){}{}",
            span.kind.as_str(),
            span.name,
            if attrs.is_empty() { "" } else { " " },
            attrs.join(" ")
        );
        for child in self.children(span.id) {
            self.render_node(child, depth + 1, out);
        }
    }

    /// JSON-lines export: one span object per line, ordered by id. Format
    /// validated by [`crate::schema::validate_trace_jsonl`].
    pub fn to_jsonl(&self) -> String {
        use crate::json::escape;
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.spans {
            let _ = write!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"kind\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"attrs\":{{",
                s.id.0,
                s.parent.map(|p| p.0.to_string()).unwrap_or_else(|| "null".into()),
                escape(&s.name),
                s.kind.as_str(),
                s.start_ns,
                s.end_ns.map(|e| e.to_string()).unwrap_or_else(|| "null".into()),
            );
            for (i, (k, v)) in s.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = match v {
                    AttrValue::Text(t) => write!(out, "\"{}\":\"{}\"", escape(k), escape(t)),
                    AttrValue::Int(n) => write!(out, "\"{}\":{n}", escape(k)),
                    AttrValue::Float(x) if x.is_finite() => write!(out, "\"{}\":{x}", escape(k)),
                    AttrValue::Float(_) => write!(out, "\"{}\":null", escape(k)),
                    AttrValue::Bool(b) => write!(out, "\"{}\":{b}", escape(k)),
                };
            }
            out.push_str("}}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_trace_is_well_formed() {
        let session = TraceSession::new();
        let mut rec = session.recorder();
        let root = rec.start("view:v", SpanKind::View, None);
        let wave = rec.start("wave:0", SpanKind::Wave, Some(root));
        let node = rec.start("node:n", SpanKind::Node, Some(wave));
        rec.attr(node, "invocations", 3usize);
        rec.end(node);
        rec.end(wave);
        rec.end(root);
        let trace = SpanTrace::from_spans(rec.finish());
        trace.validate().unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.roots().count(), 1);
        let node = trace.spans().iter().find(|s| s.name == "node:n").unwrap();
        assert_eq!(node.attr("invocations"), Some(&AttrValue::Int(3)));
        assert!(trace.render().contains("node:n"));
    }

    #[test]
    fn cross_thread_recorders_merge_without_corruption() {
        let session = TraceSession::new();
        let mut main = session.recorder();
        let root = main.start("view:v", SpanKind::View, None);
        let wave = main.start("wave:0", SpanKind::Wave, Some(root));
        let worker_spans: Vec<Vec<Span>> = std::thread::scope(|scope| {
            (0..4)
                .map(|i| {
                    let session = &session;
                    scope.spawn(move || {
                        let mut rec = session.recorder();
                        let node = rec.start(format!("node:n{i}"), SpanKind::Node, Some(wave));
                        for j in 0..3 {
                            let inv =
                                rec.start(format!("invoke:{j}"), SpanKind::Invocation, Some(node));
                            rec.end(inv);
                        }
                        rec.end(node);
                        rec.finish()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        main.end(wave);
        main.end(root);
        let mut spans = main.finish();
        for w in worker_spans {
            spans.extend(w);
        }
        let trace = SpanTrace::from_spans(spans);
        trace.validate().unwrap();
        assert_eq!(trace.len(), 2 + 4 * 4);
        // ids are unique
        let mut ids: Vec<u64> = trace.spans().iter().map(|s| s.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), trace.len());
        // children of the wave are the 4 nodes, in name order
        let children = trace.children(wave);
        let names: Vec<&str> = children.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["node:n0", "node:n1", "node:n2", "node:n3"]);
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        // unclosed span
        let session = TraceSession::new();
        let mut rec = session.recorder();
        rec.start("open", SpanKind::Custom, None);
        let trace = SpanTrace::from_spans(rec.finish());
        assert!(trace.validate().unwrap_err().contains("never closed"));

        // dangling parent
        let trace = SpanTrace::from_spans(vec![Span {
            id: SpanId(2),
            parent: Some(SpanId(1)),
            name: "orphan".into(),
            kind: SpanKind::Node,
            start_ns: 0,
            end_ns: Some(1),
            attrs: vec![],
        }]);
        assert!(trace.validate().unwrap_err().contains("dangling parent"));

        // child escaping the parent interval
        let trace = SpanTrace::from_spans(vec![
            Span {
                id: SpanId(1),
                parent: None,
                name: "p".into(),
                kind: SpanKind::View,
                start_ns: 10,
                end_ns: Some(20),
                attrs: vec![],
            },
            Span {
                id: SpanId(2),
                parent: Some(SpanId(1)),
                name: "c".into(),
                kind: SpanKind::Node,
                start_ns: 5,
                end_ns: Some(15),
                attrs: vec![],
            },
        ]);
        assert!(trace.validate().unwrap_err().contains("escapes parent"));
    }

    #[test]
    fn end_open_closes_abandoned_spans() {
        let session = TraceSession::new();
        let mut rec = session.recorder();
        let root = rec.start("view:v", SpanKind::View, None);
        let phase = rec.start("phase:enrichment", SpanKind::Phase, Some(root));
        let _ = phase; // simulated failure: neither span is ended explicitly
        rec.end_open();
        let trace = SpanTrace::from_spans(rec.finish());
        trace.validate().unwrap();
        assert!(trace.spans().iter().all(|s| s.end_ns.is_some()));
    }

    #[test]
    fn jsonl_round_trips_through_the_schema_check() {
        let session = TraceSession::new();
        let mut rec = session.recorder();
        let root = rec.start("view \"quoted\"", SpanKind::View, None);
        rec.attr(root, "width", 2usize);
        rec.attr(root, "label", "a\nb");
        rec.end(root);
        let trace = SpanTrace::from_spans(rec.finish());
        let jsonl = trace.to_jsonl();
        let count = crate::schema::validate_trace_jsonl(&jsonl).unwrap();
        assert_eq!(count, 1);
    }
}
