//! The decision-provenance ledger: per data item, what evidence was
//! fetched (Data Enrichment), what score/class each Quality Assertion
//! assigned, and what action was taken — each optionally linked to the
//! span that produced it.
//!
//! Recording is gated on an `AtomicBool` (one relaxed load when
//! disabled), and the bulk APIs take the write lock once per phase, not
//! once per item, so a ledger-enabled run stays close to a disabled one.
//!
//! Every record carries the [`RunId`] of the run that produced it, so
//! [`DecisionLedger::for_run`] can slice the ledger by run — the piece
//! `GET /runs/<id>` serves. A long-lived engine bounds the item map via
//! [`DecisionLedger::set_trace_capacity`] (insertion-order eviction);
//! the CLI keeps it unbounded, as one run's items always fit.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use crate::runid::RunId;
use crate::span::SpanTrace;

/// A captured decision-record value.
///
/// Provenance capture sits on the per-request hot path of a serving
/// engine, so values are stored as captured — numbers raw, strings as
/// shared `Arc<str>` — and rendered to their display form only when a
/// reader asks (`qv explain`, `GET /runs/<id>`). The rendering matches
/// the engine's `EvidenceValue` display: numbers bare, text quoted,
/// symbols (classification labels) bare.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerValue {
    /// Numeric value, rendered bare (`0.9`).
    Num(f64),
    /// Free-text value, rendered quoted (`"P12345"`).
    Text(Arc<str>),
    /// Pre-rendered or symbol-like value (classification labels,
    /// condition results), rendered bare.
    Raw(Arc<str>),
    Bool(bool),
    Null,
}

impl fmt::Display for LedgerValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerValue::Num(n) => write!(f, "{n}"),
            LedgerValue::Text(s) => write!(f, "{s:?}"),
            LedgerValue::Raw(s) => write!(f, "{s}"),
            LedgerValue::Bool(b) => write!(f, "{b}"),
            LedgerValue::Null => write!(f, "null"),
        }
    }
}

impl From<&str> for LedgerValue {
    fn from(s: &str) -> Self {
        LedgerValue::Raw(Arc::from(s))
    }
}

impl From<String> for LedgerValue {
    fn from(s: String) -> Self {
        LedgerValue::Raw(Arc::from(s.as_str()))
    }
}

/// One evidence value fetched for an item during Data Enrichment.
///
/// Names that repeat across every item of a run (properties, sources,
/// group labels, conditions) are `Arc<str>` so a million-item ledger
/// shares one allocation per distinct name instead of one per record.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceRecord {
    /// Quality-evidence property name (e.g. `HitRatio`).
    pub property: Arc<str>,
    /// The captured value (see [`LedgerValue`]).
    pub value: LedgerValue,
    /// Annotation repository / source the value came from, if known.
    pub source: Option<Arc<str>>,
    /// Id of the span under which the fetch happened.
    pub span: Option<u64>,
}

/// One score or class a Quality Assertion assigned to an item.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionRecord {
    /// Assertion output property (e.g. `ScoreClass`).
    pub property: Arc<str>,
    /// The captured score/class value (see [`LedgerValue`]).
    pub value: LedgerValue,
    /// Name of the assertion that produced it, if known.
    pub assertion: Option<Arc<str>>,
    pub span: Option<u64>,
}

/// The action verdict for an item.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionRecord {
    /// Action group label (e.g. `filter top k score`).
    pub group: Arc<str>,
    /// Outcome: `accepted`, `rejected` or `unknown`.
    pub outcome: Arc<str>,
    /// The condition expression that decided it, if known.
    pub condition: Option<Arc<str>>,
    pub span: Option<u64>,
}

/// Everything the ledger knows about one item — the answer to
/// `why(item)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionTrace {
    pub item: String,
    /// The run that (last) recorded into this trace.
    pub run_id: Option<RunId>,
    pub evidence: Vec<EvidenceRecord>,
    pub assertions: Vec<AssertionRecord>,
    pub actions: Vec<ActionRecord>,
}

impl DecisionTrace {
    /// An empty trace for `item`.
    pub fn new(item: impl Into<String>) -> Self {
        DecisionTrace { item: item.into(), ..Default::default() }
    }

    /// Human-readable rendering; with a [`SpanTrace`] the producing spans
    /// are named inline.
    pub fn render_with(&self, spans: Option<&SpanTrace>) -> String {
        use std::fmt::Write as _;
        let span_name = |id: Option<u64>| -> String {
            id.and_then(|id| spans.and_then(|t| t.span(crate::span::SpanId(id))))
                .map(|s| format!("  [span #{} {}]", s.id.0, s.name))
                .unwrap_or_default()
        };
        let mut out = String::new();
        let _ = writeln!(out, "item {}", self.item);
        let _ = writeln!(out, "  evidence:");
        if self.evidence.is_empty() {
            let _ = writeln!(out, "    (none recorded)");
        }
        for e in &self.evidence {
            let source = e.source.as_deref().map(|s| format!(" (from {s})")).unwrap_or_default();
            let _ =
                writeln!(out, "    {} = {}{}{}", e.property, e.value, source, span_name(e.span));
        }
        let _ = writeln!(out, "  assertions:");
        if self.assertions.is_empty() {
            let _ = writeln!(out, "    (none recorded)");
        }
        for a in &self.assertions {
            let by = a.assertion.as_deref().map(|s| format!(" (by {s})")).unwrap_or_default();
            let _ = writeln!(out, "    {} = {}{}{}", a.property, a.value, by, span_name(a.span));
        }
        let _ = writeln!(out, "  actions:");
        if self.actions.is_empty() {
            let _ = writeln!(out, "    (none recorded)");
        }
        for act in &self.actions {
            let cond =
                act.condition.as_deref().map(|c| format!(" (condition: {c})")).unwrap_or_default();
            let _ = writeln!(
                out,
                "    {} -> {}{}{}",
                act.group,
                act.outcome,
                cond,
                span_name(act.span)
            );
        }
        out
    }

    /// Single-object JSON rendering.
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        use std::fmt::Write as _;
        let opt = |v: &Option<Arc<str>>| -> String {
            match v {
                Some(s) => format!("\"{}\"", escape(s)),
                None => "null".to_string(),
            }
        };
        let span = |s: &Option<u64>| -> String {
            s.map(|v| v.to_string()).unwrap_or_else(|| "null".into())
        };
        let run = match self.run_id {
            Some(id) => format!("\"{id}\""),
            None => "null".to_string(),
        };
        let mut out = String::new();
        let _ =
            write!(out, "{{\"item\":\"{}\",\"run_id\":{},\"evidence\":[", escape(&self.item), run);
        for (i, e) in self.evidence.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"property\":\"{}\",\"value\":\"{}\",\"source\":{},\"span\":{}}}",
                escape(&e.property),
                escape(&e.value.to_string()),
                opt(&e.source),
                span(&e.span)
            );
        }
        let _ = write!(out, "],\"assertions\":[");
        for (i, a) in self.assertions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"property\":\"{}\",\"value\":\"{}\",\"assertion\":{},\"span\":{}}}",
                escape(&a.property),
                escape(&a.value.to_string()),
                opt(&a.assertion),
                span(&a.span)
            );
        }
        let _ = write!(out, "],\"actions\":[");
        for (i, act) in self.actions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"group\":\"{}\",\"outcome\":\"{}\",\"condition\":{},\"span\":{}}}",
                escape(&act.group),
                escape(&act.outcome),
                opt(&act.condition),
                span(&act.span)
            );
        }
        out.push_str("]}");
        out
    }
}

/// A run-level (not per-item) event worth remembering alongside the
/// decision traces — today: quality-drift threshold crossings republished
/// from [`crate::drift::DriftMonitor`]. Unlike per-item recording, events
/// are rare and not gated on the enabled flag.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEvent {
    /// Event kind, e.g. `qa.drift.threshold`.
    pub kind: Arc<str>,
    /// What the event is about (the assertion name for drift events).
    pub subject: Arc<str>,
    /// Human-readable detail.
    pub detail: String,
    /// Source sequence number (the drift monitor's, for drift events).
    pub seq: u64,
    /// The run whose completion tripped the event, if known.
    pub run_id: Option<RunId>,
}

/// Item map plus insertion order, guarded by one lock so bounded
/// eviction stays consistent with the map.
#[derive(Default)]
struct TraceStore {
    map: HashMap<String, DecisionTrace>,
    /// Keys in insertion order (each key exactly once; merges into an
    /// existing trace do not re-add it).
    order: VecDeque<String>,
    /// Maximum items before insertion-order eviction; 0 = unbounded.
    capacity: usize,
}

impl TraceStore {
    /// Drops oldest items until one more insert fits the capacity.
    fn evict_for_insert(&mut self) {
        if self.capacity == 0 {
            return;
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
    }

    /// Get-or-create the trace for `item`, stamping `run` when given.
    /// When the existing trace belongs to a *different* run, its records
    /// are cleared first: a run's bundle must never carry a previous
    /// run's decisions for the same item, and a long-lived serve engine
    /// re-running the same items must not accumulate records without
    /// bound.
    fn upsert(&mut self, item: String, run: Option<RunId>) -> &mut DecisionTrace {
        if !self.map.contains_key(&item) {
            self.evict_for_insert();
            self.order.push_back(item.clone());
            self.map.insert(
                item.clone(),
                DecisionTrace { item: item.clone(), run_id: run, ..DecisionTrace::default() },
            );
        }
        let trace = self.map.get_mut(&item).expect("present after insert");
        if run.is_some() && trace.run_id != run {
            trace.run_id = run;
            trace.evidence.clear();
            trace.assertions.clear();
            trace.actions.clear();
        }
        trace
    }
}

/// The ledger itself: item IRI → [`DecisionTrace`], recording gated on an
/// atomic flag (disabled by default — zero overhead when off beyond one
/// relaxed load per bulk call).
#[derive(Default)]
pub struct DecisionLedger {
    enabled: AtomicBool,
    traces: RwLock<TraceStore>,
    events: RwLock<Vec<LedgerEvent>>,
}

impl DecisionLedger {
    /// A fresh, disabled ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Bounds the item map at `capacity` traces, evicting oldest-first
    /// once full (and immediately, if already over). `0` = unbounded
    /// (the default). A long-lived `qv serve` engine sets this so
    /// always-on provenance cannot grow without limit.
    pub fn set_trace_capacity(&self, capacity: usize) {
        let mut store = self.traces.write().unwrap();
        store.capacity = capacity;
        if capacity > 0 {
            while store.map.len() > capacity {
                match store.order.pop_front() {
                    Some(old) => {
                        store.map.remove(&old);
                    }
                    None => break,
                }
            }
        }
    }

    /// Records complete traces for many items in one lock acquisition —
    /// the cheapest write path (one map operation per item, no key
    /// re-hashing per phase). An existing trace for the same item is
    /// merged (records append) when the incoming trace belongs to the
    /// same run (or carries no run id), and *replaced* when a new run
    /// produced it — see [`TraceStore::upsert`] for why.
    pub fn record_traces_bulk(&self, traces: Vec<DecisionTrace>) {
        if !self.enabled() || traces.is_empty() {
            return;
        }
        let mut store = self.traces.write().unwrap();
        store.map.reserve(traces.len());
        for trace in traces {
            if let Some(existing) = store.map.get_mut(&trace.item) {
                if trace.run_id.is_some() && existing.run_id != trace.run_id {
                    *existing = trace;
                } else {
                    if trace.run_id.is_some() {
                        existing.run_id = trace.run_id;
                    }
                    existing.evidence.extend(trace.evidence);
                    existing.assertions.extend(trace.assertions);
                    existing.actions.extend(trace.actions);
                }
                continue;
            }
            store.evict_for_insert();
            store.order.push_back(trace.item.clone());
            store.map.insert(trace.item.clone(), trace);
        }
    }

    /// Records evidence values for many items in one lock acquisition,
    /// stamped with the producing run. Each entry is `(item, records)`.
    pub fn record_evidence_bulk(
        &self,
        run: Option<RunId>,
        entries: Vec<(String, Vec<EvidenceRecord>)>,
    ) {
        if !self.enabled() || entries.is_empty() {
            return;
        }
        let mut store = self.traces.write().unwrap();
        for (item, records) in entries {
            store.upsert(item, run).evidence.extend(records);
        }
    }

    /// Records assertion outputs for many items in one lock acquisition.
    pub fn record_assertions_bulk(
        &self,
        run: Option<RunId>,
        entries: Vec<(String, Vec<AssertionRecord>)>,
    ) {
        if !self.enabled() || entries.is_empty() {
            return;
        }
        let mut store = self.traces.write().unwrap();
        for (item, records) in entries {
            store.upsert(item, run).assertions.extend(records);
        }
    }

    /// Records action outcomes for many items in one lock acquisition.
    pub fn record_actions_bulk(&self, run: Option<RunId>, entries: Vec<(String, ActionRecord)>) {
        if !self.enabled() || entries.is_empty() {
            return;
        }
        let mut store = self.traces.write().unwrap();
        for (item, record) in entries {
            store.upsert(item, run).actions.push(record);
        }
    }

    /// Appends a run-level event (drift crossings etc.). Not gated on
    /// the enabled flag: events are rare and always worth keeping.
    /// Bounded (oldest dropped past 1024) so a long-lived serve engine
    /// can't grow it without limit.
    pub fn record_event(&self, event: LedgerEvent) {
        let mut events = self.events.write().unwrap();
        if events.len() >= 1024 {
            events.remove(0);
        }
        events.push(event);
    }

    /// All recorded run-level events, in recording order.
    pub fn events(&self) -> Vec<LedgerEvent> {
        self.events.read().unwrap().clone()
    }

    /// The run-level events stamped with a specific run.
    pub fn events_for_run(&self, run: RunId) -> Vec<LedgerEvent> {
        self.events.read().unwrap().iter().filter(|e| e.run_id == Some(run)).cloned().collect()
    }

    /// The decision trace for an exact item id.
    pub fn why(&self, item: &str) -> Option<DecisionTrace> {
        self.traces.read().unwrap().map.get(item).cloned()
    }

    /// Finds items whose id equals or ends with `needle` (so a user can
    /// say `explain P1` instead of the full LSID). Results are sorted.
    pub fn find(&self, needle: &str) -> Vec<DecisionTrace> {
        let store = self.traces.read().unwrap();
        let mut out: Vec<DecisionTrace> = store
            .map
            .values()
            .filter(|t| t.item == needle || t.item.ends_with(needle))
            .cloned()
            .collect();
        out.sort_by(|a, b| a.item.cmp(&b.item));
        out
    }

    /// The ledger slice a run produced: every decision trace stamped
    /// with `run`, sorted by item. This is what `GET /runs/<id>` serves.
    pub fn for_run(&self, run: RunId) -> Vec<DecisionTrace> {
        let store = self.traces.read().unwrap();
        let mut out: Vec<DecisionTrace> =
            store.map.values().filter(|t| t.run_id == Some(run)).cloned().collect();
        out.sort_by(|a, b| a.item.cmp(&b.item));
        out
    }

    /// All item ids with a trace, sorted.
    pub fn items(&self) -> Vec<String> {
        let mut out: Vec<String> = self.traces.read().unwrap().map.keys().cloned().collect();
        out.sort();
        out
    }

    /// Number of items traced.
    pub fn len(&self) -> usize {
        self.traces.read().unwrap().map.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all traces (recording flag and run-level events unchanged —
    /// a serve engine clears per-run provenance between submissions but
    /// keeps its drift history).
    pub fn clear(&self) {
        let mut store = self.traces.write().unwrap();
        store.map.clear();
        store.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_evidence() -> Vec<(String, Vec<EvidenceRecord>)> {
        vec![(
            "urn:lsid:t:h:1".to_string(),
            vec![EvidenceRecord {
                property: "HitRatio".into(),
                value: "0.9".into(),
                source: Some("PedroRepo".into()),
                span: Some(4),
            }],
        )]
    }

    #[test]
    fn disabled_ledger_records_nothing() {
        let ledger = DecisionLedger::new();
        ledger.record_evidence_bulk(None, sample_evidence());
        assert!(ledger.is_empty());
        assert!(ledger.why("urn:lsid:t:h:1").is_none());
    }

    #[test]
    fn why_round_trip() {
        let ledger = DecisionLedger::new();
        ledger.set_enabled(true);
        let run = RunId::mint();
        ledger.record_evidence_bulk(Some(run), sample_evidence());
        ledger.record_assertions_bulk(
            Some(run),
            vec![(
                "urn:lsid:t:h:1".to_string(),
                vec![AssertionRecord {
                    property: "ScoreClass".into(),
                    value: "q:high".into(),
                    assertion: Some("PIScore".into()),
                    span: Some(7),
                }],
            )],
        );
        ledger.record_actions_bulk(
            Some(run),
            vec![(
                "urn:lsid:t:h:1".to_string(),
                ActionRecord {
                    group: "filter top k score".into(),
                    outcome: "accepted".into(),
                    condition: Some("ScoreClass in q:high".into()),
                    span: Some(9),
                },
            )],
        );
        let trace = ledger.why("urn:lsid:t:h:1").unwrap();
        assert_eq!(trace.run_id, Some(run));
        assert_eq!(trace.evidence.len(), 1);
        assert_eq!(trace.assertions[0].value.to_string(), "q:high");
        assert_eq!(trace.actions[0].outcome.as_ref(), "accepted");
        let rendered = trace.render_with(None);
        assert!(rendered.contains("HitRatio = 0.9 (from PedroRepo)"));
        assert!(rendered.contains("ScoreClass = q:high (by PIScore)"));
        assert!(rendered.contains("filter top k score -> accepted"));
        // suffix find
        let found = ledger.find("h:1");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].item, "urn:lsid:t:h:1");
        assert!(ledger.find("nope").is_empty());
    }

    #[test]
    fn json_rendering_parses() {
        let ledger = DecisionLedger::new();
        ledger.set_enabled(true);
        ledger.record_evidence_bulk(Some(RunId::from_u64(0xFEED)), sample_evidence());
        let json = ledger.why("urn:lsid:t:h:1").unwrap().to_json();
        let value = crate::json::parse(&json).unwrap();
        let obj = value.as_object().unwrap();
        assert_eq!(obj.get("item").and_then(|v| v.as_str()), Some("urn:lsid:t:h:1"));
        assert_eq!(obj.get("run_id").and_then(|v| v.as_str()), Some("000000000000feed"));
        assert_eq!(obj.get("evidence").and_then(|v| v.as_array()).map(|a| a.len()), Some(1));
    }

    #[test]
    fn for_run_slices_the_ledger_by_run() {
        let ledger = DecisionLedger::new();
        ledger.set_enabled(true);
        let first = RunId::mint();
        let second = RunId::mint();
        ledger.record_evidence_bulk(Some(first), sample_evidence());
        ledger.record_evidence_bulk(Some(second), vec![("urn:lsid:t:h:2".to_string(), vec![])]);
        assert_eq!(ledger.for_run(first).len(), 1);
        assert_eq!(ledger.for_run(first)[0].item, "urn:lsid:t:h:1");
        assert_eq!(ledger.for_run(second)[0].item, "urn:lsid:t:h:2");
        // re-recording the same item under a new run moves it over
        ledger.record_evidence_bulk(Some(second), sample_evidence());
        assert!(ledger.for_run(first).is_empty());
        assert_eq!(ledger.for_run(second).len(), 2);
        // events slice the same way
        ledger.record_event(LedgerEvent {
            kind: "qa.drift.threshold".into(),
            subject: "S".into(),
            detail: "drifted".into(),
            seq: 0,
            run_id: Some(second),
        });
        assert!(ledger.events_for_run(first).is_empty());
        assert_eq!(ledger.events_for_run(second).len(), 1);
    }

    #[test]
    fn bounded_capacity_evicts_oldest_items_first() {
        let ledger = DecisionLedger::new();
        ledger.set_enabled(true);
        ledger.set_trace_capacity(4);
        for i in 0..10 {
            ledger.record_traces_bulk(vec![DecisionTrace::new(format!("item:{i}"))]);
        }
        assert_eq!(ledger.len(), 4);
        assert_eq!(ledger.items(), vec!["item:6", "item:7", "item:8", "item:9"]);
        // merging into a survivor does not evict anything
        ledger.record_traces_bulk(vec![DecisionTrace::new("item:8")]);
        assert_eq!(ledger.len(), 4);
        // shrinking the capacity evicts immediately
        ledger.set_trace_capacity(2);
        assert_eq!(ledger.items(), vec!["item:8", "item:9"]);
    }
}
