//! The decision-provenance ledger: per data item, what evidence was
//! fetched (Data Enrichment), what score/class each Quality Assertion
//! assigned, and what action was taken — each optionally linked to the
//! span that produced it.
//!
//! Recording is gated on an `AtomicBool` (one relaxed load when
//! disabled), and the bulk APIs take the write lock once per phase, not
//! once per item, so a ledger-enabled run stays close to a disabled one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use crate::span::SpanTrace;

/// One evidence value fetched for an item during Data Enrichment.
///
/// Names that repeat across every item of a run (properties, sources,
/// group labels, conditions) are `Arc<str>` so a million-item ledger
/// shares one allocation per distinct name instead of one per record.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceRecord {
    /// Quality-evidence property name (e.g. `HitRatio`).
    pub property: Arc<str>,
    /// Rendered value (`Display` of the engine's `EvidenceValue`).
    pub value: String,
    /// Annotation repository / source the value came from, if known.
    pub source: Option<Arc<str>>,
    /// Id of the span under which the fetch happened.
    pub span: Option<u64>,
}

/// One score or class a Quality Assertion assigned to an item.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionRecord {
    /// Assertion output property (e.g. `ScoreClass`).
    pub property: Arc<str>,
    /// Rendered score/class value.
    pub value: String,
    /// Name of the assertion that produced it, if known.
    pub assertion: Option<Arc<str>>,
    pub span: Option<u64>,
}

/// The action verdict for an item.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionRecord {
    /// Action group label (e.g. `filter top k score`).
    pub group: Arc<str>,
    /// Outcome: `accepted`, `rejected` or `unknown`.
    pub outcome: Arc<str>,
    /// The condition expression that decided it, if known.
    pub condition: Option<Arc<str>>,
    pub span: Option<u64>,
}

/// Everything the ledger knows about one item — the answer to
/// `why(item)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionTrace {
    pub item: String,
    pub evidence: Vec<EvidenceRecord>,
    pub assertions: Vec<AssertionRecord>,
    pub actions: Vec<ActionRecord>,
}

impl DecisionTrace {
    /// An empty trace for `item`.
    pub fn new(item: impl Into<String>) -> Self {
        DecisionTrace { item: item.into(), ..Default::default() }
    }

    /// Human-readable rendering; with a [`SpanTrace`] the producing spans
    /// are named inline.
    pub fn render_with(&self, spans: Option<&SpanTrace>) -> String {
        use std::fmt::Write as _;
        let span_name = |id: Option<u64>| -> String {
            id.and_then(|id| spans.and_then(|t| t.span(crate::span::SpanId(id))))
                .map(|s| format!("  [span #{} {}]", s.id.0, s.name))
                .unwrap_or_default()
        };
        let mut out = String::new();
        let _ = writeln!(out, "item {}", self.item);
        let _ = writeln!(out, "  evidence:");
        if self.evidence.is_empty() {
            let _ = writeln!(out, "    (none recorded)");
        }
        for e in &self.evidence {
            let source = e.source.as_deref().map(|s| format!(" (from {s})")).unwrap_or_default();
            let _ =
                writeln!(out, "    {} = {}{}{}", e.property, e.value, source, span_name(e.span));
        }
        let _ = writeln!(out, "  assertions:");
        if self.assertions.is_empty() {
            let _ = writeln!(out, "    (none recorded)");
        }
        for a in &self.assertions {
            let by = a.assertion.as_deref().map(|s| format!(" (by {s})")).unwrap_or_default();
            let _ = writeln!(out, "    {} = {}{}{}", a.property, a.value, by, span_name(a.span));
        }
        let _ = writeln!(out, "  actions:");
        if self.actions.is_empty() {
            let _ = writeln!(out, "    (none recorded)");
        }
        for act in &self.actions {
            let cond =
                act.condition.as_deref().map(|c| format!(" (condition: {c})")).unwrap_or_default();
            let _ = writeln!(
                out,
                "    {} -> {}{}{}",
                act.group,
                act.outcome,
                cond,
                span_name(act.span)
            );
        }
        out
    }

    /// Single-object JSON rendering.
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        use std::fmt::Write as _;
        let opt = |v: &Option<Arc<str>>| -> String {
            match v {
                Some(s) => format!("\"{}\"", escape(s)),
                None => "null".to_string(),
            }
        };
        let span = |s: &Option<u64>| -> String {
            s.map(|v| v.to_string()).unwrap_or_else(|| "null".into())
        };
        let mut out = String::new();
        let _ = write!(out, "{{\"item\":\"{}\",\"evidence\":[", escape(&self.item));
        for (i, e) in self.evidence.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"property\":\"{}\",\"value\":\"{}\",\"source\":{},\"span\":{}}}",
                escape(&e.property),
                escape(&e.value),
                opt(&e.source),
                span(&e.span)
            );
        }
        let _ = write!(out, "],\"assertions\":[");
        for (i, a) in self.assertions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"property\":\"{}\",\"value\":\"{}\",\"assertion\":{},\"span\":{}}}",
                escape(&a.property),
                escape(&a.value),
                opt(&a.assertion),
                span(&a.span)
            );
        }
        let _ = write!(out, "],\"actions\":[");
        for (i, act) in self.actions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"group\":\"{}\",\"outcome\":\"{}\",\"condition\":{},\"span\":{}}}",
                escape(&act.group),
                escape(&act.outcome),
                opt(&act.condition),
                span(&act.span)
            );
        }
        out.push_str("]}");
        out
    }
}

/// A run-level (not per-item) event worth remembering alongside the
/// decision traces — today: quality-drift threshold crossings republished
/// from [`crate::drift::DriftMonitor`]. Unlike per-item recording, events
/// are rare and not gated on the enabled flag.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEvent {
    /// Event kind, e.g. `qa.drift.threshold`.
    pub kind: Arc<str>,
    /// What the event is about (the assertion name for drift events).
    pub subject: Arc<str>,
    /// Human-readable detail.
    pub detail: String,
    /// Source sequence number (the drift monitor's, for drift events).
    pub seq: u64,
}

/// The ledger itself: item IRI → [`DecisionTrace`], recording gated on an
/// atomic flag (disabled by default — zero overhead when off beyond one
/// relaxed load per bulk call).
#[derive(Default)]
pub struct DecisionLedger {
    enabled: AtomicBool,
    traces: RwLock<HashMap<String, DecisionTrace>>,
    events: RwLock<Vec<LedgerEvent>>,
}

impl DecisionLedger {
    /// A fresh, disabled ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records complete traces for many items in one lock acquisition —
    /// the cheapest write path (one map operation per item, no key
    /// re-hashing per phase). Existing traces for the same item are
    /// merged (records append).
    pub fn record_traces_bulk(&self, traces: Vec<DecisionTrace>) {
        if !self.enabled() || traces.is_empty() {
            return;
        }
        let mut map = self.traces.write().unwrap();
        map.reserve(traces.len());
        for trace in traces {
            match map.entry(trace.item.clone()) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(trace);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let existing = slot.get_mut();
                    existing.evidence.extend(trace.evidence);
                    existing.assertions.extend(trace.assertions);
                    existing.actions.extend(trace.actions);
                }
            }
        }
    }

    /// Records evidence values for many items in one lock acquisition.
    /// Each entry is `(item, records)`.
    pub fn record_evidence_bulk(&self, entries: Vec<(String, Vec<EvidenceRecord>)>) {
        if !self.enabled() || entries.is_empty() {
            return;
        }
        let mut traces = self.traces.write().unwrap();
        for (item, records) in entries {
            let trace = traces
                .entry(item.clone())
                .or_insert_with(|| DecisionTrace { item, ..DecisionTrace::default() });
            trace.evidence.extend(records);
        }
    }

    /// Records assertion outputs for many items in one lock acquisition.
    pub fn record_assertions_bulk(&self, entries: Vec<(String, Vec<AssertionRecord>)>) {
        if !self.enabled() || entries.is_empty() {
            return;
        }
        let mut traces = self.traces.write().unwrap();
        for (item, records) in entries {
            let trace = traces
                .entry(item.clone())
                .or_insert_with(|| DecisionTrace { item, ..DecisionTrace::default() });
            trace.assertions.extend(records);
        }
    }

    /// Records action outcomes for many items in one lock acquisition.
    pub fn record_actions_bulk(&self, entries: Vec<(String, ActionRecord)>) {
        if !self.enabled() || entries.is_empty() {
            return;
        }
        let mut traces = self.traces.write().unwrap();
        for (item, record) in entries {
            let trace = traces
                .entry(item.clone())
                .or_insert_with(|| DecisionTrace { item, ..DecisionTrace::default() });
            trace.actions.push(record);
        }
    }

    /// Appends a run-level event (drift crossings etc.). Not gated on
    /// the enabled flag: events are rare and always worth keeping.
    /// Bounded (oldest dropped past 1024) so a long-lived serve engine
    /// can't grow it without limit.
    pub fn record_event(&self, event: LedgerEvent) {
        let mut events = self.events.write().unwrap();
        if events.len() >= 1024 {
            events.remove(0);
        }
        events.push(event);
    }

    /// All recorded run-level events, in recording order.
    pub fn events(&self) -> Vec<LedgerEvent> {
        self.events.read().unwrap().clone()
    }

    /// The decision trace for an exact item id.
    pub fn why(&self, item: &str) -> Option<DecisionTrace> {
        self.traces.read().unwrap().get(item).cloned()
    }

    /// Finds items whose id equals or ends with `needle` (so a user can
    /// say `explain P1` instead of the full LSID). Results are sorted.
    pub fn find(&self, needle: &str) -> Vec<DecisionTrace> {
        let traces = self.traces.read().unwrap();
        let mut out: Vec<DecisionTrace> = traces
            .values()
            .filter(|t| t.item == needle || t.item.ends_with(needle))
            .cloned()
            .collect();
        out.sort_by(|a, b| a.item.cmp(&b.item));
        out
    }

    /// All item ids with a trace, sorted.
    pub fn items(&self) -> Vec<String> {
        let mut out: Vec<String> = self.traces.read().unwrap().keys().cloned().collect();
        out.sort();
        out
    }

    /// Number of items traced.
    pub fn len(&self) -> usize {
        self.traces.read().unwrap().len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all traces (recording flag and run-level events unchanged —
    /// a serve engine clears per-run provenance between submissions but
    /// keeps its drift history).
    pub fn clear(&self) {
        self.traces.write().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_evidence() -> Vec<(String, Vec<EvidenceRecord>)> {
        vec![(
            "urn:lsid:t:h:1".to_string(),
            vec![EvidenceRecord {
                property: "HitRatio".into(),
                value: "0.9".into(),
                source: Some("PedroRepo".into()),
                span: Some(4),
            }],
        )]
    }

    #[test]
    fn disabled_ledger_records_nothing() {
        let ledger = DecisionLedger::new();
        ledger.record_evidence_bulk(sample_evidence());
        assert!(ledger.is_empty());
        assert!(ledger.why("urn:lsid:t:h:1").is_none());
    }

    #[test]
    fn why_round_trip() {
        let ledger = DecisionLedger::new();
        ledger.set_enabled(true);
        ledger.record_evidence_bulk(sample_evidence());
        ledger.record_assertions_bulk(vec![(
            "urn:lsid:t:h:1".to_string(),
            vec![AssertionRecord {
                property: "ScoreClass".into(),
                value: "q:high".into(),
                assertion: Some("PIScore".into()),
                span: Some(7),
            }],
        )]);
        ledger.record_actions_bulk(vec![(
            "urn:lsid:t:h:1".to_string(),
            ActionRecord {
                group: "filter top k score".into(),
                outcome: "accepted".into(),
                condition: Some("ScoreClass in q:high".into()),
                span: Some(9),
            },
        )]);
        let trace = ledger.why("urn:lsid:t:h:1").unwrap();
        assert_eq!(trace.evidence.len(), 1);
        assert_eq!(trace.assertions[0].value, "q:high");
        assert_eq!(trace.actions[0].outcome.as_ref(), "accepted");
        let rendered = trace.render_with(None);
        assert!(rendered.contains("HitRatio = 0.9 (from PedroRepo)"));
        assert!(rendered.contains("ScoreClass = q:high (by PIScore)"));
        assert!(rendered.contains("filter top k score -> accepted"));
        // suffix find
        let found = ledger.find("h:1");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].item, "urn:lsid:t:h:1");
        assert!(ledger.find("nope").is_empty());
    }

    #[test]
    fn json_rendering_parses() {
        let ledger = DecisionLedger::new();
        ledger.set_enabled(true);
        ledger.record_evidence_bulk(sample_evidence());
        let json = ledger.why("urn:lsid:t:h:1").unwrap().to_json();
        let value = crate::json::parse(&json).unwrap();
        let obj = value.as_object().unwrap();
        assert_eq!(obj.get("item").and_then(|v| v.as_str()), Some("urn:lsid:t:h:1"));
        assert_eq!(obj.get("evidence").and_then(|v| v.as_array()).map(|a| a.len()), Some(1));
    }
}
