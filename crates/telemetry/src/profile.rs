//! Per-plan-node profiling over span traces: self-time/child-time
//! aggregation and a folded-stack (flamegraph-compatible) exporter.
//!
//! A [`Profile`] folds one or more [`SpanTrace`]s into two views:
//!
//! * **stacks** — every root-to-span name path (frames joined with `;`)
//!   with the *self* time accumulated at that exact path, exported via
//!   [`Profile::to_folded`] in the `frame;frame;frame value` format
//!   flamegraph tooling consumes (value = self time in microseconds);
//! * **nodes** — per span name, calls / total / self time, for the
//!   `qv profile` table.
//!
//! Self time is the span's wallclock minus the sum of its direct
//! children's wallclocks (saturating: overlapping parallel children can
//! legitimately sum past the parent).

use std::collections::BTreeMap;

use crate::span::{SpanId, SpanTrace};

/// Aggregated statistics for one span name across traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStat {
    /// Number of spans with this name.
    pub calls: u64,
    /// Summed wallclock, nanoseconds.
    pub total_ns: u64,
    /// Summed self time (wallclock minus direct children), nanoseconds.
    pub self_ns: u64,
}

/// A self-time profile folded from span traces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    stacks: BTreeMap<String, u64>,
    nodes: BTreeMap<String, NodeStat>,
    traces: u64,
}

/// Frames may not contain the folded format's separators — `;` splits
/// frames and the last space splits the count off the stack.
fn frame(name: &str) -> String {
    name.replace([';', ' '], "_")
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one trace into the profile.
    pub fn add_trace(&mut self, trace: &SpanTrace) {
        self.traces += 1;
        // direct-children duration sums in one pass
        let mut child_ns: BTreeMap<SpanId, u64> = BTreeMap::new();
        for span in trace.spans() {
            if let (Some(parent), Some(d)) = (span.parent, span.duration_ns()) {
                *child_ns.entry(parent).or_insert(0) += d;
            }
        }
        for span in trace.spans() {
            let total = span.duration_ns().unwrap_or(0);
            let self_ns = total.saturating_sub(child_ns.get(&span.id).copied().unwrap_or(0));
            let stat = self.nodes.entry(span.name.clone()).or_default();
            stat.calls += 1;
            stat.total_ns += total;
            stat.self_ns += self_ns;
            // root-to-span frame path
            let mut path = vec![frame(&span.name)];
            let mut cursor = span.parent;
            while let Some(id) = cursor {
                let Some(parent) = trace.span(id) else { break };
                path.push(frame(&parent.name));
                cursor = parent.parent;
            }
            path.reverse();
            *self.stacks.entry(path.join(";")).or_insert(0) += self_ns;
        }
    }

    /// Builds a profile from many traces.
    pub fn from_traces<'a>(traces: impl IntoIterator<Item = &'a SpanTrace>) -> Self {
        let mut profile = Profile::new();
        for trace in traces {
            profile.add_trace(trace);
        }
        profile
    }

    /// Number of traces folded in.
    pub fn traces(&self) -> u64 {
        self.traces
    }

    /// Per-name statistics, sorted by name.
    pub fn nodes(&self) -> &BTreeMap<String, NodeStat> {
        &self.nodes
    }

    /// True when nothing was folded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Folded-stack export: one `frame;frame;... value` line per distinct
    /// stack, value = accumulated self time in **microseconds**, sorted
    /// by stack so output is deterministic. Zero-self-time stacks are
    /// kept (a frame that only parents still shapes the flamegraph).
    pub fn to_folded(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (stack, self_ns) in &self.stacks {
            let _ = writeln!(out, "{stack} {}", self_ns / 1_000);
        }
        out
    }

    /// Parses a folded-stack document back into `stack -> value` — the
    /// round-trip check for [`Profile::to_folded`] and external tooling.
    pub fn parse_folded(input: &str) -> Result<BTreeMap<String, u64>, String> {
        let mut out = BTreeMap::new();
        for (lineno, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let n = lineno + 1;
            let (stack, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {n}: expected '<stack> <value>'"))?;
            if stack.is_empty() || stack.split(';').any(|f| f.is_empty()) {
                return Err(format!("line {n}: empty frame in stack {stack:?}"));
            }
            let value = value
                .parse::<u64>()
                .map_err(|_| format!("line {n}: value {value:?} is not a non-negative integer"))?;
            if out.insert(stack.to_string(), value).is_some() {
                return Err(format!("line {n}: duplicate stack {stack:?}"));
            }
        }
        Ok(out)
    }

    /// Human-readable per-node table, widest self-time first.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<(&String, &NodeStat)> = self.nodes.iter().collect();
        rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.0.cmp(b.0)));
        let name_width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(4).max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>8}  {:>12}  {:>12}",
            "node", "calls", "total_ms", "self_ms"
        );
        for (name, stat) in rows {
            let _ = writeln!(
                out,
                "{name:<name_width$}  {:>8}  {:>12.3}  {:>12.3}",
                stat.calls,
                stat.total_ns as f64 / 1e6,
                stat.self_ns as f64 / 1e6,
            );
        }
        let _ = write!(out, "{} trace(s) profiled", self.traces);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanKind};

    fn span(id: u64, parent: Option<u64>, name: &str, start: u64, end: u64) -> Span {
        Span {
            id: SpanId(id),
            parent: parent.map(SpanId),
            name: name.into(),
            kind: SpanKind::Custom,
            start_ns: start,
            end_ns: Some(end),
            attrs: vec![],
        }
    }

    fn sample_trace() -> SpanTrace {
        SpanTrace::from_spans(vec![
            span(1, None, "view:v", 0, 10_000_000),
            span(2, Some(1), "node:annotate", 1_000_000, 3_000_000),
            span(3, Some(1), "node:assert", 3_000_000, 9_000_000),
            span(4, Some(3), "invoke", 4_000_000, 5_000_000),
        ])
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let profile = Profile::from_traces([&sample_trace()]);
        let nodes = profile.nodes();
        // view: 10ms total, children 2ms + 6ms -> 2ms self
        assert_eq!(nodes["view:v"].self_ns, 2_000_000);
        assert_eq!(nodes["view:v"].total_ns, 10_000_000);
        // assert node: 6ms total, child 1ms -> 5ms self
        assert_eq!(nodes["node:assert"].self_ns, 5_000_000);
        // leaves keep their full duration
        assert_eq!(nodes["node:annotate"].self_ns, 2_000_000);
        assert_eq!(nodes["invoke"].self_ns, 1_000_000);
    }

    #[test]
    fn folded_output_round_trips_through_the_parser() {
        let mut profile = Profile::new();
        profile.add_trace(&sample_trace());
        profile.add_trace(&sample_trace()); // aggregation across traces
        let folded = profile.to_folded();
        let parsed = Profile::parse_folded(&folded).unwrap();
        assert_eq!(parsed.len(), 4);
        // 2 traces × 2ms self at the root, in µs
        assert_eq!(parsed["view:v"], 4_000);
        assert_eq!(parsed["view:v;node:assert"], 10_000);
        assert_eq!(parsed["view:v;node:assert;invoke"], 2_000);
        // every stack's frames chain from the root
        assert!(parsed.keys().all(|k| k.starts_with("view:v")));
    }

    #[test]
    fn frames_are_sanitised_for_the_folded_format() {
        let trace = SpanTrace::from_spans(vec![
            span(1, None, "view:v", 0, 2_000_000),
            span(2, Some(1), "act:filter top k;score", 0, 1_000_000),
        ]);
        let folded = Profile::from_traces([&trace]).to_folded();
        let parsed = Profile::parse_folded(&folded).unwrap();
        assert!(parsed.contains_key("view:v;act:filter_top_k_score"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Profile::parse_folded("no-value-here").is_err());
        assert!(Profile::parse_folded("a;b notanumber").is_err());
        assert!(Profile::parse_folded("a;;b 3").is_err());
        assert!(Profile::parse_folded("a;b 1\na;b 2").unwrap_err().contains("duplicate"));
    }

    #[test]
    fn table_renders_per_node_rows() {
        let profile = Profile::from_traces([&sample_trace()]);
        let table = profile.render_table();
        assert!(table.contains("node:assert"));
        assert!(table.contains("1 trace(s) profiled"));
    }
}
