//! Run identifiers: the correlation spine of the observability stack.
//!
//! A [`RunId`] is minted once at every entry point (each `POST
//! /run/<view>` request, each `qv run` / `qv profile` invocation) and
//! threaded through everything that run produces: the root span carries
//! it as an attribute, the trace retainer stores it on
//! [`TraceMeta`](crate::retain::TraceMeta), the decision ledger stamps
//! it on every record, and drift-crossing ledger events reference the
//! run that tripped them. Given the 16-hex-char rendering from an
//! `X-QV-Run-Id` response header, `GET /runs/<id>` (or the exporters)
//! can reassemble the whole picture after the fact.
//!
//! Ids are derived by running a process-unique counter through
//! splitmix64 — the same finalizer the trace retainer uses for
//! sampling — seeded with wall-clock + pid entropy so two processes
//! started back to back do not collide on their first runs.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// splitmix64 finalizer: a full-period, well-mixed permutation of the
/// 64-bit state. Shared by [`RunId::mint`] and the trace retainer's
/// sampling decision.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A telemetry-level run identifier, rendered as 16 lowercase hex chars.
///
/// `Default` is the all-zero id, used by synthetic [`TraceMeta`]s in
/// tests; every real execution path mints a fresh id instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RunId(u64);

impl RunId {
    /// Wraps a raw value (tests and deterministic replay).
    pub fn from_u64(raw: u64) -> RunId {
        RunId(raw)
    }

    /// The raw 64-bit value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Mints a fresh, process-unique id.
    pub fn mint() -> RunId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        static SEED: OnceLock<u64> = OnceLock::new();
        let seed = *SEED.get_or_init(|| {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            nanos ^ ((std::process::id() as u64) << 32) ^ (&COUNTER as *const _ as u64)
        });
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        RunId(splitmix64(seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15))))
    }

    /// Parses the 16-hex-char rendering back. Accepts exactly 16 hex
    /// digits (either case), i.e. whatever [`fmt::Display`] produced.
    pub fn parse(s: &str) -> Option<RunId> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(RunId)
    }
}

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_parse() {
        for raw in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let id = RunId::from_u64(raw);
            let rendered = id.to_string();
            assert_eq!(rendered.len(), 16);
            assert_eq!(RunId::parse(&rendered), Some(id));
        }
        assert_eq!(RunId::parse("00000000DEADBEEF"), Some(RunId::from_u64(0xDEAD_BEEF)));
    }

    #[test]
    fn parse_rejects_malformed_ids() {
        for bad in ["", "123", "0123456789abcdef0", "0123456789abcdeg", "run-0123456789ab"] {
            assert_eq!(RunId::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn minted_ids_are_unique_across_threads() {
        let mut ids: Vec<RunId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| (0..64).map(|_| RunId::mint()).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "minted run ids collided");
    }
}
