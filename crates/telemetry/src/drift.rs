//! Quality-drift monitors: sliding-window distributions of QA
//! classification outcomes, compared against a reference window.
//!
//! The paper's Figure 7 experiment is a drift study in miniature — the
//! proportion of hits each score class receives shifts as the underlying
//! data does, and the user's acceptability criteria are exactly a
//! function of that distribution. The monitor watches the per-assertion
//! class counts the QA operators already aggregate, folds them into a
//! **current window** of fixed size, and when the window fills compares
//! it against the **reference window** (the first completed window, or
//! one pinned via [`DriftMonitor::set_reference`]):
//!
//! * **L1 / total-variation distance** `0.5 · Σ_c |p_ref(c) − p_cur(c)|`
//!   over the union of classes — in `[0, 1]`, threshold-friendly;
//! * **χ² statistic** `Σ_c (n_cur(c) − e(c))² / e(c)` with expected
//!   counts `e(c) = p_ref(c) · n_cur`, floored at 0.5 so classes absent
//!   from the reference don't divide by zero.
//!
//! Each comparison sets the `qa.drift.distance{assertion}` gauge (L1 in
//! permille) and, when L1 crosses the configured threshold, appends a
//! [`DriftEvent`] to a bounded in-monitor log that engines poll with
//! [`DriftMonitor::events_since`] and republish into their decision
//! ledger. The monitor is process-global (like the metrics registry) and
//! disabled by default: one relaxed atomic load when off.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// Drift-monitor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Observations (classified items) per window.
    pub window: u64,
    /// L1 distance in `[0, 1]` at or above which a window counts as
    /// drifted and a [`DriftEvent`] is emitted.
    pub threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig { window: 256, threshold: 0.2 }
    }
}

/// One threshold crossing: the current window's distribution moved at
/// least `threshold` (L1) away from the reference.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEvent {
    /// Monotone sequence number across all assertions.
    pub seq: u64,
    /// The assertion whose class distribution drifted.
    pub assertion: String,
    /// L1 / total-variation distance, `[0, 1]`.
    pub l1: f64,
    /// χ² statistic of the current window against reference proportions.
    pub chi2: f64,
    /// Reference-window class counts.
    pub reference: BTreeMap<String, u64>,
    /// Current-window class counts at the time of the crossing.
    pub current: BTreeMap<String, u64>,
}

#[derive(Debug, Default, Clone)]
struct AssertionWindows {
    reference: BTreeMap<String, u64>,
    reference_total: u64,
    current: BTreeMap<String, u64>,
    current_total: u64,
    last_l1: Option<f64>,
    last_chi2: Option<f64>,
    windows_compared: u64,
}

/// A point-in-time view of one assertion's monitor state.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSnapshot {
    pub assertion: String,
    pub reference: BTreeMap<String, u64>,
    pub current: BTreeMap<String, u64>,
    pub last_l1: Option<f64>,
    pub last_chi2: Option<f64>,
    pub windows_compared: u64,
}

/// L1 / total-variation distance between two count distributions.
pub fn l1_distance(reference: &BTreeMap<String, u64>, current: &BTreeMap<String, u64>) -> f64 {
    let ref_total: u64 = reference.values().sum();
    let cur_total: u64 = current.values().sum();
    if ref_total == 0 || cur_total == 0 {
        return 0.0;
    }
    let mut classes: std::collections::BTreeSet<&str> =
        reference.keys().map(String::as_str).collect();
    classes.extend(current.keys().map(String::as_str));
    let mut sum = 0.0;
    for class in classes {
        let p_ref = *reference.get(class).unwrap_or(&0) as f64 / ref_total as f64;
        let p_cur = *current.get(class).unwrap_or(&0) as f64 / cur_total as f64;
        sum += (p_ref - p_cur).abs();
    }
    0.5 * sum
}

/// χ² statistic of `current` against the proportions of `reference`.
/// Expected counts are floored at 0.5 (classes unseen in the reference
/// would otherwise divide by zero).
pub fn chi2_statistic(reference: &BTreeMap<String, u64>, current: &BTreeMap<String, u64>) -> f64 {
    let ref_total: u64 = reference.values().sum();
    let cur_total: u64 = current.values().sum();
    if ref_total == 0 || cur_total == 0 {
        return 0.0;
    }
    let mut classes: std::collections::BTreeSet<&str> =
        reference.keys().map(String::as_str).collect();
    classes.extend(current.keys().map(String::as_str));
    let mut sum = 0.0;
    for class in classes {
        let p_ref = *reference.get(class).unwrap_or(&0) as f64 / ref_total as f64;
        let observed = *current.get(class).unwrap_or(&0) as f64;
        let expected = (p_ref * cur_total as f64).max(0.5);
        sum += (observed - expected).powi(2) / expected;
    }
    sum
}

/// Maximum drift events the monitor retains (older ones are dropped —
/// engines republish crossings into their ledger promptly).
const EVENT_CAPACITY: usize = 256;

/// The process-global drift monitor. See the module docs for the model.
#[derive(Default)]
pub struct DriftMonitor {
    enabled: AtomicBool,
    config: RwLock<DriftConfig>,
    windows: Mutex<BTreeMap<String, AssertionWindows>>,
    events: Mutex<Vec<DriftEvent>>,
    next_seq: AtomicU64,
}

impl DriftMonitor {
    /// A fresh, disabled monitor (tests; production uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables the monitor with the given configuration.
    pub fn configure(&self, config: DriftConfig) {
        *self.config.write().unwrap() = config;
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns observation on or off (configuration retained).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the monitor is observing.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Folds one batch of per-class counts for `assertion` into the
    /// current window; compares windows as they fill. The QA operator
    /// path calls this once per (node, batch) with counts it already
    /// aggregated — no per-item cost.
    pub fn observe_bulk<S: AsRef<str>>(&self, assertion: &str, counts: &[(S, u64)]) {
        if !self.enabled() || counts.is_empty() {
            return;
        }
        let config = self.config.read().unwrap().clone();
        let mut windows = self.windows.lock().unwrap();
        let state = windows.entry(assertion.to_string()).or_default();
        for (class, n) in counts {
            *state.current.entry(class.as_ref().to_string()).or_insert(0) += n;
            state.current_total += n;
        }
        while state.current_total >= config.window {
            if state.reference_total == 0 {
                // first completed window becomes the reference
                state.reference = std::mem::take(&mut state.current);
                state.reference_total = state.current_total;
                state.current_total = 0;
                continue;
            }
            let l1 = l1_distance(&state.reference, &state.current);
            let chi2 = chi2_statistic(&state.reference, &state.current);
            state.last_l1 = Some(l1);
            state.last_chi2 = Some(chi2);
            state.windows_compared += 1;
            crate::metrics::global()
                .gauge_with("qa.drift.distance", &[("assertion", assertion)])
                .set((l1 * 1000.0).round() as i64);
            crate::metrics::global()
                .counter_with("qa.drift.windows", &[("assertion", assertion)])
                .inc();
            if l1 >= config.threshold {
                let event = DriftEvent {
                    seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
                    assertion: assertion.to_string(),
                    l1,
                    chi2,
                    reference: state.reference.clone(),
                    current: state.current.clone(),
                };
                crate::metrics::global()
                    .counter_with("qa.drift.crossings", &[("assertion", assertion)])
                    .inc();
                let mut events = self.events.lock().unwrap();
                if events.len() >= EVENT_CAPACITY {
                    events.remove(0);
                }
                events.push(event);
            }
            state.current.clear();
            state.current_total = 0;
        }
    }

    /// Pins the reference window for `assertion` to the given counts
    /// (instead of the first completed window).
    pub fn set_reference<S: AsRef<str>>(&self, assertion: &str, counts: &[(S, u64)]) {
        let mut windows = self.windows.lock().unwrap();
        let state = windows.entry(assertion.to_string()).or_default();
        state.reference = counts.iter().map(|(c, n)| (c.as_ref().to_string(), *n)).collect();
        state.reference_total = state.reference.values().sum();
    }

    /// Threshold-crossing events with `seq > after`, oldest first.
    /// Broadcast semantics: events are not consumed, so several engines
    /// (each tracking its own cursor) can republish independently.
    pub fn events_since(&self, after: Option<u64>) -> Vec<DriftEvent> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| after.is_none_or(|a| e.seq > a))
            .cloned()
            .collect()
    }

    /// Per-assertion monitor snapshots, sorted by assertion.
    pub fn snapshot(&self) -> Vec<DriftSnapshot> {
        self.windows
            .lock()
            .unwrap()
            .iter()
            .map(|(assertion, s)| DriftSnapshot {
                assertion: assertion.clone(),
                reference: s.reference.clone(),
                current: s.current.clone(),
                last_l1: s.last_l1,
                last_chi2: s.last_chi2,
                windows_compared: s.windows_compared,
            })
            .collect()
    }

    /// JSON document for the `/drift` endpoint.
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        use std::fmt::Write as _;
        let config = self.config.read().unwrap().clone();
        let counts_json = |counts: &BTreeMap<String, u64>| -> String {
            let inner: Vec<String> =
                counts.iter().map(|(c, n)| format!("\"{}\":{n}", escape(c))).collect();
            format!("{{{}}}", inner.join(","))
        };
        let opt = |v: Option<f64>| -> String {
            match v {
                Some(x) if x.is_finite() => format!("{x:.6}"),
                _ => "null".into(),
            }
        };
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"enabled\":{},\"window\":{},\"threshold\":{},\"assertions\":[",
            self.enabled(),
            config.window,
            config.threshold
        );
        for (i, s) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"assertion\":\"{}\",\"windows_compared\":{},\"last_l1\":{},\"last_chi2\":{},\"reference\":{},\"current\":{}}}",
                escape(&s.assertion),
                s.windows_compared,
                opt(s.last_l1),
                opt(s.last_chi2),
                counts_json(&s.reference),
                counts_json(&s.current),
            );
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events_since(None).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"assertion\":\"{}\",\"l1\":{:.6},\"chi2\":{:.6},\"reference\":{},\"current\":{}}}",
                e.seq,
                escape(&e.assertion),
                e.l1,
                e.chi2,
                counts_json(&e.reference),
                counts_json(&e.current),
            );
        }
        out.push_str("]}");
        out
    }

    /// Drops all windows and events (enabled flag and config unchanged).
    pub fn reset(&self) {
        self.windows.lock().unwrap().clear();
        self.events.lock().unwrap().clear();
    }
}

static GLOBAL: OnceLock<DriftMonitor> = OnceLock::new();

/// The process-global monitor the QA operator path observes into.
pub fn global() -> &'static DriftMonitor {
    GLOBAL.get_or_init(DriftMonitor::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(c, n)| (c.to_string(), *n)).collect()
    }

    #[test]
    fn distances_behave() {
        let a = counts(&[("q:high", 50), ("q:low", 50)]);
        let b = counts(&[("q:high", 50), ("q:low", 50)]);
        assert_eq!(l1_distance(&a, &b), 0.0);
        let c = counts(&[("q:high", 100)]);
        // half the mass moved from q:low to q:high
        assert!((l1_distance(&a, &c) - 0.5).abs() < 1e-9);
        let d = counts(&[("q:other", 100)]);
        // disjoint supports: maximal distance
        assert!((l1_distance(&a, &d) - 1.0).abs() < 1e-9);
        assert!(chi2_statistic(&a, &c) > 0.0);
        assert_eq!(chi2_statistic(&a, &b), 0.0);
    }

    #[test]
    fn disabled_monitor_ignores_observations() {
        let monitor = DriftMonitor::new();
        monitor.observe_bulk("PIScore", &[("q:high", 10u64)]);
        assert!(monitor.snapshot().is_empty());
    }

    #[test]
    fn first_window_becomes_reference_and_shift_crosses_threshold() {
        let monitor = DriftMonitor::new();
        monitor.configure(DriftConfig { window: 100, threshold: 0.2 });
        // window 1: balanced mix -> becomes the reference
        monitor.observe_bulk("PIScore", &[("q:high", 50u64), ("q:low", 50)]);
        assert!(monitor.events_since(None).is_empty());
        let snap = &monitor.snapshot()[0];
        assert_eq!(snap.reference, counts(&[("q:high", 50), ("q:low", 50)]));
        // window 2: everything q:low -> L1 = 0.5 >= 0.2, event emitted
        monitor.observe_bulk("PIScore", &[("q:low", 100u64)]);
        let events = monitor.events_since(None);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].assertion, "PIScore");
        assert!((events[0].l1 - 0.5).abs() < 1e-9);
        assert!(events[0].chi2 > 0.0);
        // window 3: back to the reference mix -> no new event
        monitor.observe_bulk("PIScore", &[("q:high", 50u64), ("q:low", 50)]);
        assert_eq!(monitor.events_since(None).len(), 1);
        // cursor semantics
        assert!(monitor.events_since(Some(events[0].seq)).is_empty());
    }

    #[test]
    fn small_batches_accumulate_into_windows() {
        let monitor = DriftMonitor::new();
        monitor.configure(DriftConfig { window: 10, threshold: 0.3 });
        for _ in 0..10 {
            monitor.observe_bulk("A", &[("x", 1u64)]); // reference: all x
        }
        for _ in 0..10 {
            monitor.observe_bulk("A", &[("y", 1u64)]); // drifted: all y
        }
        let events = monitor.events_since(None);
        assert_eq!(events.len(), 1);
        assert!((events[0].l1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pinned_reference_is_used() {
        let monitor = DriftMonitor::new();
        monitor.configure(DriftConfig { window: 4, threshold: 0.4 });
        monitor.set_reference("B", &[("x", 100u64)]);
        monitor.observe_bulk("B", &[("y", 4u64)]);
        let events = monitor.events_since(None);
        assert_eq!(events.len(), 1);
        assert!((events[0].l1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_parses_and_reflects_state() {
        let monitor = DriftMonitor::new();
        monitor.configure(DriftConfig { window: 4, threshold: 0.1 });
        monitor.observe_bulk("PIScore", &[("q:high", 4u64)]);
        monitor.observe_bulk("PIScore", &[("q:low", 4u64)]);
        let json = monitor.to_json();
        let value = crate::json::parse(&json).unwrap();
        assert_eq!(value.get("enabled").and_then(|v| v.as_bool()), Some(true));
        let assertions = value.get("assertions").and_then(|v| v.as_array()).unwrap();
        assert_eq!(assertions.len(), 1);
        assert_eq!(assertions[0].get("assertion").and_then(|v| v.as_str()), Some("PIScore"));
        let events = value.get("events").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("l1").and_then(|v| v.as_f64()), Some(1.0));
    }
}
