//! # qurator-telemetry
//!
//! The observability substrate the paper's promise of *inspectable*
//! quality decisions rests on (§1: the scientist must be able to ask why
//! an item was classified the way it was; the Taverna deployment leans on
//! workflow provenance for exactly this). Three pillars:
//!
//! * [`span`] — hierarchical spans (view → wave → node → iteration
//!   invocation) with monotonic timestamps, parent links and key/value
//!   attributes. Spans are recorded into per-worker [`span::SpanRecorder`]s
//!   (no locks on the hot path) and merged into a [`span::SpanTrace`] when
//!   an enactment finishes;
//! * [`metrics`] — a process-wide registry of counters, gauges and
//!   fixed-bucket log₂-scale histograms backed by sharded atomics, so the
//!   enrichment hot path can record rates and latencies without
//!   serialising writers;
//! * [`ledger`] — the decision-provenance ledger: per data item, the
//!   evidence values fetched (Data Enrichment), the scores/classes
//!   assigned (Quality Assertions) and the actions taken, each linked to
//!   the span that produced it, queryable as `why(item) ->`
//!   [`ledger::DecisionTrace`].
//!
//! Exporters ([`export`]) cover a JSON-lines span log, Prometheus-style
//! text exposition and a human-readable trace renderer; [`schema`]
//! validates emitted artifacts in-tree (used by the CI smoke job), on top
//! of the dependency-free JSON parser in [`json`].
//!
//! The crate is intentionally dependency-free (std only) so every layer of
//! the stack — rdf, annotations, workflow, core, cli, bench — can link it
//! without cycles.

pub mod export;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod schema;
pub mod span;

pub use ledger::{ActionRecord, AssertionRecord, DecisionLedger, DecisionTrace, EvidenceRecord};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use span::{AttrValue, Span, SpanId, SpanKind, SpanRecorder, SpanTrace, TraceSession};

/// The process-wide metrics registry (see [`metrics::global`]).
pub fn metrics() -> &'static MetricsRegistry {
    metrics::global()
}
