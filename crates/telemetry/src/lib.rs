//! # qurator-telemetry
//!
//! The observability substrate the paper's promise of *inspectable*
//! quality decisions rests on (§1: the scientist must be able to ask why
//! an item was classified the way it was; the Taverna deployment leans on
//! workflow provenance for exactly this). Three pillars:
//!
//! * [`span`] — hierarchical spans (view → wave → node → iteration
//!   invocation) with monotonic timestamps, parent links and key/value
//!   attributes. Spans are recorded into per-worker [`span::SpanRecorder`]s
//!   (no locks on the hot path) and merged into a [`span::SpanTrace`] when
//!   an enactment finishes;
//! * [`metrics`] — a process-wide registry of counters, gauges and
//!   fixed-bucket log₂-scale histograms backed by sharded atomics, so the
//!   enrichment hot path can record rates and latencies without
//!   serialising writers;
//! * [`ledger`] — the decision-provenance ledger: per data item, the
//!   evidence values fetched (Data Enrichment), the scores/classes
//!   assigned (Quality Assertions) and the actions taken, each linked to
//!   the span that produced it, queryable as `why(item) ->`
//!   [`ledger::DecisionTrace`].
//!
//! On top of the per-run pillars sits the continuous-observability layer
//! for long-lived engines (`qv serve`):
//!
//! * [`retain`] — bounded, tail-sampled retention of finished span trees
//!   in per-worker ring shards ([`retain::TraceRetainer`], configured by
//!   [`retain::TelemetryConfig`]);
//! * [`drift`] — sliding-window QA-classification distributions compared
//!   (L1 / χ²) against a reference window, with threshold-crossing
//!   events republished into the ledger;
//! * [`profile`] — per-plan-node self-time aggregation over retained
//!   traces and a folded-stack (flamegraph) exporter;
//! * [`runid`] — the correlation spine: a [`runid::RunId`] minted per
//!   request/invocation and stamped onto spans, retained traces, ledger
//!   records and drift-crossing events;
//! * [`accesslog`] — a bounded, sharded structured access log (one JSON
//!   line per served request, each carrying its run id);
//! * [`slo`] — per-route latency/availability error budgets over a
//!   sliding window of the existing request metrics;
//! * [`stats`] — observed plan-node statistics (EXPLAIN ANALYZE):
//!   per-run [`stats::RunStats`] merged across workers plus persisted
//!   per-view [`stats::StatsProfile`] decayed aggregates that feed the
//!   plan pass pipeline's cost decisions;
//! * [`naming`] — the metric-name convention lint and committed
//!   allowlist enforced by `qv telemetry-check`.
//!
//! Exporters ([`export`]) cover a JSON-lines span log, Prometheus-style
//! text exposition and a human-readable trace renderer; [`schema`]
//! validates emitted artifacts in-tree (used by the CI smoke job), on top
//! of the dependency-free JSON parser in [`json`].
//!
//! The crate is intentionally dependency-free (std only) so every layer of
//! the stack — rdf, annotations, workflow, core, cli, bench — can link it
//! without cycles.

pub mod accesslog;
pub mod drift;
pub mod export;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod naming;
pub mod profile;
pub mod retain;
pub mod runid;
pub mod schema;
pub mod slo;
pub mod span;
pub mod stats;

pub use accesslog::{AccessLog, AccessRecord};
pub use drift::{DriftConfig, DriftEvent, DriftMonitor};
pub use ledger::{
    ActionRecord, AssertionRecord, DecisionLedger, DecisionTrace, EvidenceRecord, LedgerEvent,
    LedgerValue,
};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use profile::Profile;
pub use retain::{KeepReason, RetainedTrace, TelemetryConfig, TraceMeta, TraceRetainer};
pub use runid::RunId;
pub use slo::{RouteSlo, SloConfig, SloTracker};
pub use span::{AttrValue, Span, SpanId, SpanKind, SpanRecorder, SpanTrace, TraceSession};
pub use stats::{NodeStats, RunStats, StatsCollector, StatsProfile};

/// The process-wide metrics registry (see [`metrics::global`]).
pub fn metrics() -> &'static MetricsRegistry {
    metrics::global()
}
