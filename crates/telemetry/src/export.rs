//! File-writing exporters: the thin glue between the in-memory telemetry
//! structures and the artifacts the CLI flags (`--trace-out`,
//! `--metrics-out`) surface.

use std::io::Write as _;
use std::path::Path;

use crate::accesslog::AccessLog;
use crate::metrics::MetricsRegistry;
use crate::span::SpanTrace;

/// Writes a span trace as JSON-lines to `path` (validated by
/// [`crate::schema::validate_trace_jsonl`]).
pub fn write_trace_jsonl(trace: &SpanTrace, path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(trace.to_jsonl().as_bytes())
}

/// Writes the registry's Prometheus-style exposition to `path`.
pub fn write_metrics_text(registry: &MetricsRegistry, path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(registry.render_prometheus().as_bytes())
}

/// Dumps an access log's in-memory ring (newest first) as JSON-lines to
/// `path` (validated by [`crate::schema::validate_access_log_jsonl`]).
/// The ring holds only the most recent records; the `--access-log` file
/// sink is the complete stream.
pub fn write_access_log_jsonl(log: &AccessLog, path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(log.recent_jsonl(usize::MAX).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, TraceSession};

    #[test]
    fn written_artifacts_pass_their_schema_checks() {
        let dir =
            std::env::temp_dir().join(format!("qurator-telemetry-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let session = TraceSession::new();
        let mut rec = session.recorder();
        let root = rec.start("view:v", SpanKind::View, None);
        rec.end(root);
        let trace = SpanTrace::from_spans(rec.finish());
        let trace_path = dir.join("trace.jsonl");
        write_trace_jsonl(&trace, &trace_path).unwrap();
        let contents = std::fs::read_to_string(&trace_path).unwrap();
        assert_eq!(crate::schema::validate_trace_jsonl(&contents).unwrap(), 1);

        let registry = MetricsRegistry::new();
        registry.counter("export.test").add(5);
        let metrics_path = dir.join("metrics.prom");
        write_metrics_text(&registry, &metrics_path).unwrap();
        let contents = std::fs::read_to_string(&metrics_path).unwrap();
        assert_eq!(crate::schema::validate_metrics_text(&contents).unwrap(), 1);

        let log = AccessLog::new(8);
        log.record(crate::accesslog::AccessRecord {
            seq: 0,
            ts_ms: 1,
            peer: "127.0.0.1:1".into(),
            route: "/run".into(),
            status: 200,
            bytes: 2,
            latency_us: 3,
            run_id: Some(crate::runid::RunId::from_u64(7)),
            shed: false,
            timeout: false,
        });
        let log_path = dir.join("access.jsonl");
        write_access_log_jsonl(&log, &log_path).unwrap();
        let contents = std::fs::read_to_string(&log_path).unwrap();
        assert_eq!(crate::schema::validate_access_log_jsonl(&contents).unwrap(), 1);

        std::fs::remove_dir_all(&dir).ok();
    }
}
