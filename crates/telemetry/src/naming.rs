//! Metric-name convention lint.
//!
//! Every metric this workspace registers follows
//! `<subsystem>.<noun>.<verb|unit>` — two to three dots, lowercase
//! `snake_case` segments (`store.wal.fsync_ns`, `plan.pass.duration_us`).
//! [`ALLOWLIST`] is the committed registry of names; a metric that is not
//! listed here fails `qv telemetry-check`, so new instrumentation cannot
//! silently drift from the scheme. A handful of pre-convention names are
//! [`GRANDFATHERED`] — allowed to keep their historical shape but closed
//! to imitation.

use std::collections::BTreeSet;

/// Every metric name the workspace may register, sorted. Add new metrics
/// here (and keep them convention-clean) before registering them.
pub const ALLOWLIST: &[&str] = &[
    "annotations.write.count",
    "enact.node.duration_ns",
    "enact.wave.width",
    "engine.execute.count",
    "enrich.bulk.calls",
    "enrich.bulk.dense",
    "enrich.bulk.latency_ns",
    "enrich.bulk.rows",
    "enrich.bulk.sparse",
    "enrich.lookup.count",
    "enrich.lookup.latency_ns",
    "enrich.op.items",
    "enrich.op.latency_ns",
    "lint.diagnostics",
    "lint.pass.duration_us",
    "lint.pass.runs",
    "plan.pass.duration_us",
    "plan.pass.runs",
    "qa.assert.count",
    "qa.classify.count",
    "qa.drift.crossings",
    "qa.drift.distance",
    "qa.drift.windows",
    "serve.accesslog.sink_error",
    "serve.queue.depth",
    "serve.read.error",
    "serve.read.timeout",
    "serve.request.latency",
    "serve.requests",
    "serve.shed.count",
    "serve.write_error",
    "slo.budget.remaining",
    "slo.burn.rate",
    "sparql.query.count",
    "sparql.query.latency_ns",
    "sparql.result.rows",
    "store.base.triples",
    "store.compact.count",
    "store.compact.duration_us",
    "store.compact.folded",
    "store.dict.bytes",
    "store.dict.terms",
    "store.wal.append_ns",
    "store.wal.batch_records",
    "store.wal.fsync_ns",
    "trace.retain.dropped",
    "trace.retain.kept",
    "trace.retain.offered",
    "trace.retain.resident",
];

/// Pre-convention names (fewer than three segments) that predate the
/// lint. Closed set: do not add to it — rename instead.
pub const GRANDFATHERED: &[&str] = &["lint.diagnostics", "serve.requests", "serve.write_error"];

/// Suffixes the Prometheus exposition appends to a histogram's base name.
const HISTOGRAM_SUFFIXES: &[&str] = &["_bucket", "_count", "_sum", "_p50", "_p95"];

/// Strips `{labels}` and histogram exposition suffixes from a rendered
/// series name, yielding the registered base name.
pub fn base_name(series: &str) -> &str {
    let name = series.split('{').next().unwrap_or(series);
    for suffix in HISTOGRAM_SUFFIXES {
        if let Some(stripped) = name.strip_suffix(suffix) {
            // Only strip when what remains is itself a plausible metric
            // name (so a counter literally named `foo.bar_count` — none
            // exist — would still lint against its full name).
            if stripped.contains('.') {
                return stripped;
            }
        }
    }
    name
}

/// Structural convention check: 3–4 lowercase snake_case segments.
pub fn convention_ok(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    if !(3..=4).contains(&segments.len()) {
        return false;
    }
    segments.iter().all(|seg| {
        let mut chars = seg.chars();
        matches!(chars.next(), Some('a'..='z'))
            && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// Checks one registered base name against convention + allowlist.
pub fn check_name(name: &str) -> Result<(), String> {
    if !ALLOWLIST.contains(&name) {
        return Err(format!(
            "metric {name:?} is not in the committed allowlist (telemetry::naming::ALLOWLIST)"
        ));
    }
    if !convention_ok(name) && !GRANDFATHERED.contains(&name) {
        return Err(format!(
            "metric {name:?} violates the <subsystem>.<noun>.<verb|unit> convention and is not grandfathered"
        ));
    }
    Ok(())
}

/// Lints a Prometheus-style metrics exposition: every series' base name
/// must pass [`check_name`]. Returns the number of distinct base names
/// checked, or every violation found.
pub fn lint_metrics_text(input: &str) -> Result<usize, Vec<String>> {
    let mut names = BTreeSet::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, _value)) = line.rsplit_once(' ') else { continue };
        names.insert(base_name(series).to_string());
    }
    let errors: Vec<String> =
        names.iter().filter_map(|name| check_name(name).err()).collect();
    if errors.is_empty() {
        Ok(names.len())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_is_sorted_and_unique() {
        let mut sorted = ALLOWLIST.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, ALLOWLIST, "keep ALLOWLIST sorted and duplicate-free");
    }

    #[test]
    fn every_allowlisted_name_is_convention_clean_or_grandfathered() {
        for name in ALLOWLIST {
            assert!(
                convention_ok(name) || GRANDFATHERED.contains(name),
                "{name} violates the naming convention without being grandfathered"
            );
        }
        for name in GRANDFATHERED {
            assert!(ALLOWLIST.contains(name), "{name} grandfathered but not allowlisted");
            assert!(!convention_ok(name), "{name} is convention-clean; drop it from GRANDFATHERED");
        }
    }

    #[test]
    fn base_name_strips_labels_and_histogram_suffixes() {
        assert_eq!(base_name("serve.requests{route=\"/run\",status=\"200\"}"), "serve.requests");
        assert_eq!(base_name("store.wal.fsync_ns_bucket{le=\"1024\"}"), "store.wal.fsync_ns");
        assert_eq!(base_name("store.wal.fsync_ns_p95"), "store.wal.fsync_ns");
        assert_eq!(base_name("enrich.lookup.count"), "enrich.lookup.count");
    }

    #[test]
    fn check_name_rejects_unknown_and_malformed() {
        assert!(check_name("store.wal.fsync_ns").is_ok());
        assert!(check_name("serve.requests").is_ok()); // grandfathered
        assert!(check_name("totally.new.metric").unwrap_err().contains("allowlist"));
        assert!(check_name("Bad.Name.Case").is_err());
    }

    #[test]
    fn lint_walks_an_exposition() {
        let good = "# comment\nenrich.op.items 5\nserve.requests{route=\"/run\"} 2\nplan.pass.duration_us_p50 10\n";
        assert_eq!(lint_metrics_text(good), Ok(3));
        let bad = "rogue.metric 1\n";
        let errs = lint_metrics_text(bad).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("rogue.metric"));
    }
}
