//! Bounded trace retention with tail-based sampling.
//!
//! PR 2's [`crate::span::TraceSession`] accumulates every span of one run
//! and hands the merged [`SpanTrace`] to the caller — fine for `qv run`,
//! unbounded for a long-lived engine (`qv serve`) that enacts millions of
//! submissions. The [`TraceRetainer`] sits behind the engine: every
//! finished trace is *offered*, the retainer decides **after seeing the
//! whole trace** (tail-based sampling) whether it is worth keeping, and
//! retained traces live in fixed-capacity per-worker ring shards so
//! memory is bounded no matter how long the engine runs.
//!
//! Keep policy, in priority order (first match wins):
//! 1. the trace recorded an error ([`KeepReason::Error`]);
//! 2. the run rejected at least one item ([`KeepReason::Rejected`]) —
//!    rejections are the paper's signal of interest, Figure 7's GO-term
//!    experiment is exactly a study of what gets filtered;
//! 3. the root span's wallclock is at or beyond the configured quantile
//!    of all root durations seen so far ([`KeepReason::Slow`]) — the
//!    quantile is estimated from a log₂ histogram of *offered* (not
//!    retained) durations, so the threshold adapts as the workload does;
//! 4. otherwise a probabilistic sample at `sample_rate`
//!    ([`KeepReason::Sampled`]).
//!
//! Span ids are remapped into a retainer-global id space at offer time
//! (each session numbers its own spans from 1), so the concatenated
//! JSON-lines of [`TraceRetainer::recent_jsonl`] still satisfies
//! [`crate::schema::validate_trace_jsonl`]'s unique-id rule.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::drift::DriftConfig;
use crate::metrics::{Histogram, SHARDS};
use crate::runid::{splitmix64, RunId};
use crate::span::{Span, SpanId, SpanTrace};

/// Configuration for the continuous-observability layer: trace retention
/// and sampling here, drift detection via the embedded [`DriftConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Total retained-trace budget across all ring shards. Rounded up to
    /// a multiple of the shard count; see [`TraceRetainer::capacity`].
    pub trace_capacity: usize,
    /// Probability in `[0, 1]` of keeping a trace that matched no
    /// always-keep rule.
    pub sample_rate: f64,
    /// Root-duration quantile in `[0, 1]` beyond which a trace counts as
    /// slow and is always kept.
    pub slow_quantile: f64,
    /// Offers to observe before the slow-quantile rule activates (a
    /// threshold estimated from three runs is noise).
    pub slow_min_offers: u64,
    /// Drift-monitor configuration (see [`crate::drift`]).
    pub drift: DriftConfig,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 256,
            sample_rate: 0.05,
            slow_quantile: 0.95,
            slow_min_offers: 32,
            drift: DriftConfig::default(),
        }
    }
}

/// Why a trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// The trace recorded an error.
    Error,
    /// The run rejected at least one item.
    Rejected,
    /// Root wallclock at/beyond the slow quantile.
    Slow,
    /// Probabilistic tail sample.
    Sampled,
}

impl KeepReason {
    /// Stable label used in metrics and exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            KeepReason::Error => "error",
            KeepReason::Rejected => "rejected",
            KeepReason::Slow => "slow",
            KeepReason::Sampled => "sampled",
        }
    }
}

/// What the engine knows about a finished run, alongside the spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceMeta {
    /// View name the trace belongs to.
    pub view: String,
    /// The run that produced the trace (see [`crate::runid`]).
    pub run_id: RunId,
    /// Whether the run failed.
    pub error: bool,
    /// How many items the run's actions rejected.
    pub rejected: u64,
}

/// One retained trace plus its retention verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct RetainedTrace {
    /// Global admission sequence number (monotone across shards).
    pub seq: u64,
    pub view: String,
    /// The run that produced the trace.
    pub run_id: RunId,
    pub reason: KeepReason,
    /// Root span wallclock, nanoseconds.
    pub root_duration_ns: u64,
    pub rejected: u64,
    /// The span tree, ids remapped into the retainer-global space.
    pub trace: SpanTrace,
}

#[derive(Default)]
struct RingShard {
    ring: VecDeque<RetainedTrace>,
}

/// Fixed-capacity retention of sampled traces. Offers from different
/// worker threads land in different ring shards (the same thread-local
/// shard index the metrics registry uses), so concurrent engines never
/// contend on one lock; each shard's ring evicts its own oldest entry
/// when full.
pub struct TraceRetainer {
    shards: Vec<Mutex<RingShard>>,
    per_shard: usize,
    sample_permille: u64,
    slow_quantile: f64,
    slow_min_offers: u64,
    durations: Histogram,
    offered: AtomicU64,
    seq: AtomicU64,
    /// Global span-id allocator for remapping (see module docs).
    id_base: AtomicU64,
    /// splitmix64 state for the sampling decision — deterministic per
    /// retainer, so tests with `sample_rate` 0 or 1 are exact and others
    /// reproducible.
    rng: AtomicU64,
}

impl TraceRetainer {
    /// Builds a retainer from the retention half of a [`TelemetryConfig`].
    pub fn new(config: &TelemetryConfig) -> Self {
        let per_shard = config.trace_capacity.div_ceil(SHARDS).max(1);
        TraceRetainer {
            shards: (0..SHARDS).map(|_| Mutex::new(RingShard::default())).collect(),
            per_shard,
            sample_permille: (config.sample_rate.clamp(0.0, 1.0) * 1000.0).round() as u64,
            slow_quantile: config.slow_quantile.clamp(0.0, 1.0),
            slow_min_offers: config.slow_min_offers,
            durations: Histogram::default(),
            offered: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            id_base: AtomicU64::new(0),
            rng: AtomicU64::new(0x5153_5953_4C41_4253), // arbitrary fixed seed
        }
    }

    /// Hard upper bound on resident traces: `per_shard × shards`.
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// Number of offers so far (kept or not).
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Number of currently resident traces.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().ring.len()).sum()
    }

    /// The current slow threshold in nanoseconds, if active.
    pub fn slow_threshold_ns(&self) -> Option<u64> {
        if self.offered() >= self.slow_min_offers {
            Some(self.durations.quantile(self.slow_quantile))
        } else {
            None
        }
    }

    fn decide(&self, meta: &TraceMeta, root_duration_ns: u64) -> Option<KeepReason> {
        if meta.error {
            return Some(KeepReason::Error);
        }
        if meta.rejected > 0 {
            return Some(KeepReason::Rejected);
        }
        if let Some(threshold) = self.slow_threshold_ns() {
            if root_duration_ns >= threshold {
                return Some(KeepReason::Slow);
            }
        }
        let roll = splitmix64(self.rng.fetch_add(1, Ordering::Relaxed)) % 1000;
        (roll < self.sample_permille).then_some(KeepReason::Sampled)
    }

    /// Offers a finished trace; returns the keep reason when retained.
    /// The decision sees the complete trace (tail-based): error and
    /// rejection outcomes are known, and the root duration is compared
    /// against the adaptive quantile threshold *before* this offer is
    /// folded into it.
    pub fn offer(&self, trace: SpanTrace, meta: TraceMeta) -> Option<KeepReason> {
        let root_duration_ns =
            trace.roots().filter_map(|s| s.duration_ns()).max().unwrap_or_default();
        let reason = self.decide(&meta, root_duration_ns);
        self.offered.fetch_add(1, Ordering::Relaxed);
        self.durations.record(root_duration_ns);
        let metrics = crate::metrics::global();
        metrics.counter("trace.retain.offered").inc();
        let Some(reason) = reason else {
            metrics.counter("trace.retain.dropped").inc();
            return None;
        };
        metrics.counter_with("trace.retain.kept", &[("reason", reason.as_str())]).inc();

        let max_id = trace.spans().iter().map(|s| s.id.0).max().unwrap_or(0);
        let base = self.id_base.fetch_add(max_id, Ordering::Relaxed);
        let spans: Vec<Span> = trace
            .spans()
            .iter()
            .map(|s| Span {
                id: SpanId(s.id.0 + base),
                parent: s.parent.map(|p| SpanId(p.0 + base)),
                ..s.clone()
            })
            .collect();
        let retained = RetainedTrace {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            view: meta.view,
            run_id: meta.run_id,
            reason,
            root_duration_ns,
            rejected: meta.rejected,
            trace: SpanTrace::from_spans(spans),
        };
        let shard = &self.shards[crate::metrics::shard_index() % self.shards.len()];
        let mut guard = shard.lock().unwrap();
        if guard.ring.len() >= self.per_shard {
            guard.ring.pop_front();
        }
        guard.ring.push_back(retained);
        drop(guard);
        metrics.gauge("trace.retain.resident").set(self.resident() as i64);
        Some(reason)
    }

    /// The most recently admitted traces (newest first), at most `limit`.
    pub fn recent(&self, limit: usize) -> Vec<RetainedTrace> {
        let mut out: Vec<RetainedTrace> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().unwrap().ring.iter().cloned());
        }
        out.sort_by_key(|r| std::cmp::Reverse(r.seq));
        out.truncate(limit);
        out
    }

    /// Finds the retained trace for a run id, if it is still resident.
    /// (At most one trace per run id: a run finishes exactly once.)
    pub fn find_run(&self, run: RunId) -> Option<RetainedTrace> {
        for shard in &self.shards {
            let guard = shard.lock().unwrap();
            if let Some(retained) = guard.ring.iter().find(|r| r.run_id == run) {
                return Some(retained.clone());
            }
        }
        None
    }

    /// JSON-lines export of [`TraceRetainer::recent`]: each retained
    /// trace contributes one `{"type":"trace",...}` header line followed
    /// by its span lines. Span ids are globally unique (remapped at offer
    /// time), so the whole document passes
    /// [`crate::schema::validate_trace_jsonl`].
    pub fn recent_jsonl(&self, limit: usize) -> String {
        use crate::json::escape;
        use std::fmt::Write as _;
        let mut out = String::new();
        for retained in self.recent(limit) {
            let _ = writeln!(
                out,
                "{{\"type\":\"trace\",\"seq\":{},\"view\":\"{}\",\"run_id\":\"{}\",\"reason\":\"{}\",\"root_duration_ns\":{},\"rejected\":{},\"spans\":{}}}",
                retained.seq,
                escape(&retained.view),
                retained.run_id,
                retained.reason.as_str(),
                retained.root_duration_ns,
                retained.rejected,
                retained.trace.len(),
            );
            out.push_str(&retained.trace.to_jsonl());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, TraceSession};

    fn sample_trace(name: &str) -> SpanTrace {
        let session = TraceSession::new();
        let mut rec = session.recorder();
        let root = rec.start(format!("view:{name}"), SpanKind::View, None);
        let phase = rec.start("phase:assertions", SpanKind::Phase, Some(root));
        rec.end(phase);
        rec.end(root);
        SpanTrace::from_spans(rec.finish())
    }

    fn keep_all_config() -> TelemetryConfig {
        TelemetryConfig { sample_rate: 1.0, ..TelemetryConfig::default() }
    }

    #[test]
    fn ring_buffer_is_bounded_at_ten_times_capacity() {
        let config = TelemetryConfig { trace_capacity: 16, ..keep_all_config() };
        let retainer = TraceRetainer::new(&config);
        let capacity = retainer.capacity();
        for i in 0..capacity * 10 {
            retainer.offer(
                sample_trace("fig1"),
                TraceMeta { view: format!("v{i}"), ..TraceMeta::default() },
            );
            assert!(
                retainer.resident() <= capacity,
                "resident {} exceeded capacity {capacity} after {i} offers",
                retainer.resident()
            );
        }
        assert_eq!(retainer.offered(), capacity as u64 * 10);
        // newest-first and nothing older than the rings can hold
        let recent = retainer.recent(usize::MAX);
        assert!(recent.len() <= capacity);
        assert!(recent.windows(2).all(|w| w[0].seq > w[1].seq));
    }

    #[test]
    fn error_and_rejecting_traces_are_always_kept() {
        let config = TelemetryConfig { sample_rate: 0.0, ..TelemetryConfig::default() };
        let retainer = TraceRetainer::new(&config);
        assert_eq!(
            retainer.offer(
                sample_trace("a"),
                TraceMeta { view: "a".into(), error: true, ..TraceMeta::default() }
            ),
            Some(KeepReason::Error)
        );
        assert_eq!(
            retainer.offer(
                sample_trace("b"),
                TraceMeta { view: "b".into(), rejected: 3, ..TraceMeta::default() }
            ),
            Some(KeepReason::Rejected)
        );
        // an unremarkable trace at sample_rate 0 is dropped
        assert_eq!(retainer.offer(sample_trace("c"), TraceMeta::default()), None);
        assert_eq!(retainer.resident(), 2);
    }

    #[test]
    fn slow_traces_are_kept_once_the_quantile_is_warm() {
        let config = TelemetryConfig {
            sample_rate: 0.0,
            slow_quantile: 0.95,
            slow_min_offers: 8,
            ..TelemetryConfig::default()
        };
        let retainer = TraceRetainer::new(&config);
        // warm the duration histogram with fast synthetic traces
        for _ in 0..16 {
            retainer.offer(sample_trace("warm"), TraceMeta::default());
        }
        let threshold = retainer.slow_threshold_ns().unwrap();
        // hand-build a trace far beyond the threshold
        let slow = SpanTrace::from_spans(vec![Span {
            id: SpanId(1),
            parent: None,
            name: "view:slow".into(),
            kind: SpanKind::View,
            start_ns: 0,
            end_ns: Some(threshold.saturating_mul(64).max(1 << 30)),
            attrs: vec![],
        }]);
        assert_eq!(
            retainer.offer(slow, TraceMeta { view: "slow".into(), ..TraceMeta::default() }),
            Some(KeepReason::Slow)
        );
    }

    #[test]
    fn sampling_rate_is_respected_roughly() {
        let config = TelemetryConfig {
            trace_capacity: 4096,
            sample_rate: 0.5,
            ..TelemetryConfig::default()
        };
        let retainer = TraceRetainer::new(&config);
        let mut kept = 0usize;
        for _ in 0..1000 {
            if retainer.offer(sample_trace("s"), TraceMeta::default()).is_some() {
                kept += 1;
            }
        }
        // slow-keeps push this above the raw 50% sample floor; allow slack
        assert!((300..=900).contains(&kept), "kept {kept} of 1000 at rate 0.5");
    }

    #[test]
    fn recent_jsonl_has_globally_unique_span_ids() {
        let retainer = TraceRetainer::new(&keep_all_config());
        for i in 0..5 {
            retainer.offer(
                sample_trace(&format!("v{i}")),
                TraceMeta { view: format!("v{i}"), ..TraceMeta::default() },
            );
        }
        let jsonl = retainer.recent_jsonl(5);
        // 5 traces × 2 spans validate as ONE document: ids were remapped
        // into the retainer-global space, so no duplicates across traces
        assert_eq!(crate::schema::validate_trace_jsonl(&jsonl).unwrap(), 10);
    }

    #[test]
    fn run_ids_are_retained_and_resolvable() {
        let retainer = TraceRetainer::new(&keep_all_config());
        let runs: Vec<RunId> = (0..4).map(|_| RunId::mint()).collect();
        for (i, run) in runs.iter().enumerate() {
            retainer.offer(
                sample_trace(&format!("v{i}")),
                TraceMeta { view: format!("v{i}"), run_id: *run, ..TraceMeta::default() },
            );
        }
        let found = retainer.find_run(runs[2]).expect("run 2 resident");
        assert_eq!(found.view, "v2");
        assert_eq!(found.run_id, runs[2]);
        assert_eq!(retainer.find_run(RunId::mint()), None);
        // the export header carries the id in its 16-hex rendering
        let jsonl = retainer.recent_jsonl(usize::MAX);
        for run in &runs {
            assert!(jsonl.contains(&format!("\"run_id\":\"{run}\"")), "{run} missing");
        }
    }

    #[test]
    fn concurrent_offers_stay_bounded_and_unique() {
        let config = TelemetryConfig { trace_capacity: 32, ..keep_all_config() };
        let retainer = TraceRetainer::new(&config);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let retainer = &retainer;
                scope.spawn(move || {
                    for _ in 0..50 {
                        retainer.offer(sample_trace("p"), TraceMeta::default());
                    }
                });
            }
        });
        assert!(retainer.resident() <= retainer.capacity());
        let recent = retainer.recent(usize::MAX);
        let mut seqs: Vec<u64> = recent.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), recent.len());
        let mut ids: Vec<u64> =
            recent.iter().flat_map(|r| r.trace.spans().iter().map(|s| s.id.0)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), recent.iter().map(|r| r.trace.len()).sum::<usize>());
    }
}
