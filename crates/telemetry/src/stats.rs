//! Observed plan-node statistics — the EXPLAIN ANALYZE substrate.
//!
//! Every execution of a quality view records, per plan node, what the
//! operators actually saw: rows in/out, observed evidence cardinality,
//! per-item hit counts and wall time. Three types carry the data:
//!
//! * [`NodeStats`] — one node's observed counters for one run (summed
//!   across calls, so a node invoked once per worker merges like the
//!   span tree: counts add, wall time adds);
//! * [`RunStats`] — the per-run roll-up: every node keyed by plan-node
//!   name, plus the input cardinality. Produced by draining a
//!   [`StatsCollector`];
//! * [`StatsProfile`] — the persisted per-view aggregate: an
//!   exponentially-decayed average of each node's counters across runs,
//!   keyed by a stable view hash. This is what the plan pass pipeline
//!   reads back (`qurator_plan::passes::lower_with_profile`) so later
//!   optimizer decisions can consult real cardinalities instead of
//!   guessing — the cost-model hook.
//!
//! The collector is shared by *both* execution paths: the interpreter
//! and the compiled workflow wrap the same operator processors, which
//! record into the collector inside their shared methods. Recording is a
//! handful of integer adds under a short mutex hold (node counts are
//! small: one touch per node per run, not per item), cheap enough to
//! leave on permanently (`BENCH_analyze_overhead.json` pins it ≤5%).

use crate::json::{escape, parse, Value};
use crate::runid::RunId;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Default decay factor for [`StatsProfile`] averages: each new run
/// contributes 30%, history 70% (`avg' = α·new + (1−α)·avg`).
pub const DEFAULT_DECAY: f64 = 0.3;

/// One plan node's observed counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Operator invocations folded into this record (parallel workers
    /// merge by summing, like span-tree merge).
    pub calls: u64,
    /// Data items entering the node.
    pub rows_in: u64,
    /// Data items leaving the node (sum of group sizes for actions).
    pub rows_out: u64,
    /// Evidence values observed (annotations written for annotators,
    /// evidence entries fetched for enrichment).
    pub evidence: u64,
    /// Items the node "hit": rows with ≥1 evidence value for enrichment,
    /// rows tagged for assertions, rows accepted for actions.
    pub hits: u64,
    /// Wall time spent inside the operator, summed across calls.
    pub wall_ns: u64,
}

impl NodeStats {
    /// Folds another sample into this one (all counters sum).
    pub fn merge(&mut self, other: &NodeStats) {
        self.calls += other.calls;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.evidence += other.evidence;
        self.hits += other.hits;
        self.wall_ns += other.wall_ns;
    }
}

/// The per-run statistics roll-up: one [`NodeStats`] per plan node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// View name the run executed.
    pub view: String,
    /// The run id, when the host minted one.
    pub run_id: Option<RunId>,
    /// Input data-set cardinality.
    pub items: u64,
    /// Observed counters keyed by plan-node name.
    pub nodes: BTreeMap<String, NodeStats>,
}

impl RunStats {
    /// The stats of one node, if it recorded any.
    pub fn node(&self, name: &str) -> Option<&NodeStats> {
        self.nodes.get(name)
    }

    /// Merges another run's counters into this one (worker merge).
    pub fn merge(&mut self, other: &RunStats) {
        for (name, stats) in &other.nodes {
            self.nodes.entry(name.clone()).or_default().merge(stats);
        }
    }

    /// Total wall nanoseconds across all nodes.
    pub fn total_wall_ns(&self) -> u64 {
        self.nodes.values().map(|n| n.wall_ns).sum()
    }

    /// Serialises to one JSON object (the `/runs/<id>` join format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"type\":\"run_stats\"");
        out.push_str(&format!(",\"view\":\"{}\"", escape(&self.view)));
        match self.run_id {
            Some(run) => out.push_str(&format!(",\"run_id\":\"{run}\"")),
            None => out.push_str(",\"run_id\":null"),
        }
        out.push_str(&format!(",\"items\":{}", self.items));
        out.push_str(",\"nodes\":{");
        let mut first = true;
        for (name, n) in &self.nodes {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"calls\":{},\"rows_in\":{},\"rows_out\":{},\"evidence\":{},\"hits\":{},\"wall_ns\":{}}}",
                escape(name), n.calls, n.rows_in, n.rows_out, n.evidence, n.hits, n.wall_ns
            ));
        }
        out.push_str("}}");
        out
    }

    /// Parses the [`Self::to_json`] format back.
    pub fn parse(input: &str) -> Result<RunStats, String> {
        let value = parse(input)?;
        let obj = value.as_object().ok_or("run stats must be a JSON object")?;
        if value.get("type").and_then(|v| v.as_str()) != Some("run_stats") {
            return Err("type is not \"run_stats\"".into());
        }
        let view = obj
            .get("view")
            .and_then(|v| v.as_str())
            .ok_or("view must be a string")?
            .to_string();
        let run_id = match obj.get("run_id") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .and_then(RunId::parse)
                    .ok_or("run_id must be null or 16 hex chars")?,
            ),
        };
        let items = obj.get("items").and_then(|v| v.as_u64()).ok_or("items must be an integer")?;
        let mut nodes = BTreeMap::new();
        let node_obj = obj.get("nodes").and_then(|v| v.as_object()).ok_or("nodes must be an object")?;
        for (name, v) in node_obj {
            nodes.insert(name.clone(), parse_node_counters(v)?);
        }
        Ok(RunStats { view, run_id, items, nodes })
    }
}

fn parse_node_counters(v: &Value) -> Result<NodeStats, String> {
    let obj = v.as_object().ok_or("node stats must be an object")?;
    let int = |key: &str| -> Result<u64, String> {
        obj.get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("node counter {key:?} must be a non-negative integer"))
    };
    Ok(NodeStats {
        calls: int("calls")?,
        rows_in: int("rows_in")?,
        rows_out: int("rows_out")?,
        evidence: int("evidence")?,
        hits: int("hits")?,
        wall_ns: int("wall_ns")?,
    })
}

/// The thread-safe recording sink the operator processors write into.
///
/// One collector is created per bound plan; processors hold clones of the
/// `Arc` and record once per invocation. Parallel enactment workers
/// record concurrently; their samples merge by summation, so parallel
/// and sequential executions of the same plan over the same data produce
/// identical row counts.
#[derive(Debug, Default)]
pub struct StatsCollector {
    enabled: AtomicBool,
    nodes: Mutex<BTreeMap<String, NodeStats>>,
}

impl StatsCollector {
    /// A fresh, enabled collector.
    pub fn new() -> Self {
        StatsCollector { enabled: AtomicBool::new(true), nodes: Mutex::new(BTreeMap::new()) }
    }

    /// Whether recording is on (processors check this before counting, so
    /// a disabled collector costs one relaxed load per node call).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Switches recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Folds one operator invocation's sample into the node's counters.
    pub fn record(&self, node: &str, sample: NodeStats) {
        if !self.enabled() {
            return;
        }
        let mut nodes = self.nodes.lock().unwrap_or_else(|p| p.into_inner());
        match nodes.get_mut(node) {
            Some(existing) => existing.merge(&sample),
            None => {
                nodes.insert(node.to_string(), sample);
            }
        }
    }

    /// Takes everything recorded so far as a [`RunStats`] and resets the
    /// collector for the next run (bound plans are reused across runs on
    /// the compiled path).
    pub fn drain(&self, view: &str, run_id: Option<RunId>, items: u64) -> RunStats {
        let nodes = std::mem::take(&mut *self.nodes.lock().unwrap_or_else(|p| p.into_inner()));
        RunStats { view: view.to_string(), run_id, items, nodes }
    }
}

/// A stable hash of a view's statistical identity: the view name plus
/// its plan-node names, FNV-1a folded. Profiles are keyed by this so a
/// structurally-edited view (nodes added/removed/renamed) starts a fresh
/// profile instead of decaying against stale shapes.
pub fn view_key<'a>(view: &str, node_names: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    fold(view.as_bytes());
    for name in node_names {
        fold(&[0x1f]); // unit separator: ("ab","c") ≠ ("a","bc")
        fold(name.as_bytes());
    }
    hash
}

/// One node's exponentially-decayed averages in a [`StatsProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeProfile {
    pub calls: f64,
    pub rows_in: f64,
    pub rows_out: f64,
    pub evidence: f64,
    pub hits: f64,
    pub wall_ns: f64,
}

impl NodeProfile {
    fn observe(&mut self, sample: &NodeStats, alpha: f64, first: bool) {
        let ema = |avg: &mut f64, new: u64| {
            let new = new as f64;
            *avg = if first { new } else { alpha * new + (1.0 - alpha) * *avg };
        };
        ema(&mut self.calls, sample.calls);
        ema(&mut self.rows_in, sample.rows_in);
        ema(&mut self.rows_out, sample.rows_out);
        ema(&mut self.evidence, sample.evidence);
        ema(&mut self.hits, sample.hits);
        ema(&mut self.wall_ns, sample.wall_ns);
    }
}

/// The persisted per-view statistics profile: exponentially-decayed
/// per-node aggregates across runs, keyed by [`view_key`].
///
/// Written under `<store>/stats/<view>.json` (or `--stats-out`) and
/// loadable by the plan pass pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsProfile {
    /// View name.
    pub view: String,
    /// Stable view-shape hash ([`view_key`]).
    pub key: u64,
    /// Runs folded into the averages.
    pub runs: u64,
    /// Decay factor α.
    pub alpha: f64,
    /// Decayed per-node averages.
    pub nodes: BTreeMap<String, NodeProfile>,
}

impl StatsProfile {
    /// An empty profile for a view shape.
    pub fn new(view: impl Into<String>, key: u64) -> Self {
        StatsProfile { view: view.into(), key, runs: 0, alpha: DEFAULT_DECAY, nodes: BTreeMap::new() }
    }

    /// Folds one run into the decayed averages.
    pub fn observe(&mut self, run: &RunStats) {
        let first = self.runs == 0;
        self.runs += 1;
        for (name, sample) in &run.nodes {
            self.nodes.entry(name.clone()).or_default().observe(sample, self.alpha, first);
        }
    }

    /// One node's decayed averages.
    pub fn node(&self, name: &str) -> Option<&NodeProfile> {
        self.nodes.get(name)
    }

    /// Serialises to one JSON object. The key is rendered as a hex
    /// string — JSON numbers are doubles and cannot carry a u64 exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"type\":\"stats_profile\"");
        out.push_str(&format!(",\"view\":\"{}\"", escape(&self.view)));
        out.push_str(&format!(",\"key\":\"{:016x}\"", self.key));
        out.push_str(&format!(",\"runs\":{}", self.runs));
        out.push_str(&format!(",\"alpha\":{}", self.alpha));
        out.push_str(",\"nodes\":{");
        let mut first = true;
        for (name, n) in &self.nodes {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"calls\":{},\"rows_in\":{},\"rows_out\":{},\"evidence\":{},\"hits\":{},\"wall_ns\":{}}}",
                escape(name),
                fmt(n.calls),
                fmt(n.rows_in),
                fmt(n.rows_out),
                fmt(n.evidence),
                fmt(n.hits),
                fmt(n.wall_ns)
            ));
        }
        out.push_str("}}\n");
        out
    }

    /// Parses the [`Self::to_json`] format back.
    pub fn parse(input: &str) -> Result<StatsProfile, String> {
        let value = parse(input.trim())?;
        let obj = value.as_object().ok_or("stats profile must be a JSON object")?;
        if value.get("type").and_then(|v| v.as_str()) != Some("stats_profile") {
            return Err("type is not \"stats_profile\"".into());
        }
        let view = obj
            .get("view")
            .and_then(|v| v.as_str())
            .ok_or("view must be a string")?
            .to_string();
        let key = obj
            .get("key")
            .and_then(|v| v.as_str())
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("key must be a hex string")?;
        let runs = obj.get("runs").and_then(|v| v.as_u64()).ok_or("runs must be an integer")?;
        let alpha = obj.get("alpha").and_then(|v| v.as_f64()).ok_or("alpha must be a number")?;
        if !(0.0..=1.0).contains(&alpha) {
            return Err(format!("alpha {alpha} outside [0, 1]"));
        }
        let mut nodes = BTreeMap::new();
        let node_obj = obj.get("nodes").and_then(|v| v.as_object()).ok_or("nodes must be an object")?;
        for (name, v) in node_obj {
            let n = v.as_object().ok_or("node profile must be an object")?;
            let num = |key: &str| -> Result<f64, String> {
                n.get(key)
                    .and_then(|v| v.as_f64())
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| format!("node average {key:?} must be a non-negative number"))
            };
            nodes.insert(
                name.clone(),
                NodeProfile {
                    calls: num("calls")?,
                    rows_in: num("rows_in")?,
                    rows_out: num("rows_out")?,
                    evidence: num("evidence")?,
                    hits: num("hits")?,
                    wall_ns: num("wall_ns")?,
                },
            );
        }
        Ok(StatsProfile { view, key, runs, alpha, nodes })
    }

    /// Writes the profile to `path` (parent directories created).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Loads a profile from `path`.
    pub fn load(path: &Path) -> Result<StatsProfile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The profile file name for a view under a stats directory:
/// non-alphanumeric view-name characters are flattened so arbitrary view
/// names cannot escape the directory.
pub fn profile_file_name(view: &str) -> String {
    let safe: String = view
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    format!("{safe}.json")
}

/// JSON-safe float (finite values only reach here, but stay defensive).
fn fmt(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: u64) -> NodeStats {
        NodeStats { calls: 1, rows_in: rows, rows_out: rows, evidence: rows * 3, hits: rows, wall_ns: 1000 }
    }

    #[test]
    fn collector_merges_concurrent_samples_by_summation() {
        let collector = std::sync::Arc::new(StatsCollector::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = collector.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        c.record("Enrich", sample(5));
                    }
                });
            }
        });
        let run = collector.drain("v", None, 5);
        let n = run.node("Enrich").unwrap();
        assert_eq!(n.calls, 200);
        assert_eq!(n.rows_in, 1000);
        assert_eq!(n.evidence, 3000);
        // drained: next run starts clean
        assert!(collector.drain("v", None, 5).nodes.is_empty());
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let collector = StatsCollector::new();
        collector.set_enabled(false);
        collector.record("x", sample(9));
        assert!(collector.drain("v", None, 0).nodes.is_empty());
    }

    #[test]
    fn run_stats_round_trip_json() {
        let mut run = RunStats { view: "fig1".into(), run_id: RunId::parse("00000000deadbeef"), items: 5, nodes: BTreeMap::new() };
        run.nodes.insert("Enrich".into(), sample(5));
        run.nodes.insert("keep".into(), NodeStats { calls: 1, rows_in: 5, rows_out: 3, evidence: 0, hits: 3, wall_ns: 42 });
        let parsed = RunStats::parse(&run.to_json()).unwrap();
        assert_eq!(parsed, run);

        let no_run = RunStats { run_id: None, ..run };
        assert_eq!(RunStats::parse(&no_run.to_json()).unwrap().run_id, None);
    }

    #[test]
    fn profile_decay_math() {
        let mut profile = StatsProfile::new("v", 7);
        let mut run = RunStats::default();
        run.nodes.insert("n".into(), sample(10));
        profile.observe(&run);
        // first run seeds the average exactly
        assert_eq!(profile.node("n").unwrap().rows_in, 10.0);

        let mut run2 = RunStats::default();
        run2.nodes.insert("n".into(), sample(20));
        profile.observe(&run2);
        // α·20 + (1−α)·10 with α = 0.3
        let expect = 0.3 * 20.0 + 0.7 * 10.0;
        assert!((profile.node("n").unwrap().rows_in - expect).abs() < 1e-9);
        assert_eq!(profile.runs, 2);
    }

    #[test]
    fn profile_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("qv-stats-{}", std::process::id()));
        let mut profile = StatsProfile::new("my view!", view_key("my view!", ["a", "b"]));
        let mut run = RunStats::default();
        run.nodes.insert("a".into(), sample(3));
        profile.observe(&run);
        let path = dir.join(profile_file_name("my view!"));
        profile.save(&path).unwrap();
        let loaded = StatsProfile::load(&path).unwrap();
        assert_eq!(loaded, profile);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn view_key_is_shape_sensitive() {
        assert_eq!(view_key("v", ["a", "b"]), view_key("v", ["a", "b"]));
        assert_ne!(view_key("v", ["a", "b"]), view_key("v", ["a"]));
        assert_ne!(view_key("v", ["a", "b"]), view_key("w", ["a", "b"]));
        assert_ne!(view_key("v", ["ab", "c"]), view_key("v", ["a", "bc"]));
    }

    #[test]
    fn parse_rejects_malformed_profiles() {
        assert!(StatsProfile::parse("{}").is_err());
        assert!(StatsProfile::parse("{\"type\":\"stats_profile\",\"view\":\"v\",\"key\":\"zz\",\"runs\":0,\"alpha\":0.3,\"nodes\":{}}").is_err());
        let bad_alpha = "{\"type\":\"stats_profile\",\"view\":\"v\",\"key\":\"1f\",\"runs\":0,\"alpha\":7,\"nodes\":{}}";
        assert!(StatsProfile::parse(bad_alpha).unwrap_err().contains("alpha"));
    }
}
