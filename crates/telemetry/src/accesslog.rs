//! Structured access log for `qv serve`: one JSONL record per request.
//!
//! Records land in a bounded, lock-sharded in-memory ring (served back
//! at `GET /log/recent`) and, when a file sink is attached via
//! `--access-log <path>`, are appended to disk as they arrive. Each
//! record carries the request's [`RunId`] when one was minted, so an
//! access-log line is the entry point into the full correlation chain
//! (trace → ledger → drift) via `GET /runs/<id>`.
//!
//! Shards are picked round-robin by the record's global sequence
//! number, so concurrent workers land on different mutexes most of the
//! time, residency stays exactly bounded, and reading the ring back
//! restores total order by sequence number.

use crate::runid::RunId;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const SHARDS: usize = crate::metrics::SHARDS;

/// One served request (or early failure), as recorded by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessRecord {
    /// Global sequence number, assigned by [`AccessLog::record`].
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Client peer address (`ip:port`), or `"-"` when unknown.
    pub peer: String,
    /// Clamped route label (the same low-cardinality set the request
    /// metrics use), `"-"` for requests that failed before routing.
    pub route: String,
    /// HTTP status sent.
    pub status: u16,
    /// Response body bytes.
    pub bytes: u64,
    /// Wall time from request receipt to response write.
    pub latency_us: u64,
    /// The run minted for this request, when it executed a view.
    pub run_id: Option<RunId>,
    /// The request was shed by admission control (503 + Retry-After).
    pub shed: bool,
    /// The request timed out mid-read (408).
    pub timeout: bool,
}

impl AccessRecord {
    /// The record as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let run = match self.run_id {
            Some(id) => format!("\"{id}\""),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"type\":\"access\",\"seq\":{},\"ts_ms\":{},\"peer\":\"{}\",",
                "\"route\":\"{}\",\"status\":{},\"bytes\":{},\"latency_us\":{},",
                "\"run_id\":{},\"shed\":{},\"timeout\":{}}}"
            ),
            self.seq,
            self.ts_ms,
            crate::json::escape(&self.peer),
            crate::json::escape(&self.route),
            self.status,
            self.bytes,
            self.latency_us,
            run,
            self.shed,
            self.timeout,
        )
    }
}

#[derive(Default)]
struct Shard {
    ring: VecDeque<AccessRecord>,
}

/// Bounded, sharded access-log ring with an optional file sink.
pub struct AccessLog {
    shards: [Mutex<Shard>; SHARDS],
    seq: AtomicU64,
    /// Per-shard ring capacity (total capacity / SHARDS, at least 1).
    shard_capacity: usize,
    sink: Option<Mutex<std::fs::File>>,
}

impl AccessLog {
    /// An in-memory-only log keeping the most recent `capacity` records.
    pub fn new(capacity: usize) -> AccessLog {
        AccessLog {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            seq: AtomicU64::new(0),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            sink: None,
        }
    }

    /// Attaches an append-mode file sink; every record is written as one
    /// JSON line as it arrives.
    pub fn with_sink(capacity: usize, path: &Path) -> std::io::Result<AccessLog> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        let mut log = AccessLog::new(capacity);
        log.sink = Some(Mutex::new(file));
        Ok(log)
    }

    /// Records one request. The record's `seq` field is assigned here;
    /// the caller fills everything else.
    pub fn record(&self, mut record: AccessRecord) {
        record.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = &self.sink {
            let mut line = record.to_json();
            line.push('\n');
            let mut file = sink.lock().unwrap_or_else(|e| e.into_inner());
            if file.write_all(line.as_bytes()).is_err() {
                crate::metrics().counter("serve.accesslog.sink_error").inc();
            }
        }
        let shard = &self.shards[(record.seq % SHARDS as u64) as usize];
        let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
        while shard.ring.len() >= self.shard_capacity {
            shard.ring.pop_front();
        }
        shard.ring.push_back(record);
    }

    /// Total records ever recorded.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The most recent records, newest first, up to `limit`.
    pub fn recent(&self, limit: usize) -> Vec<AccessRecord> {
        let mut all: Vec<AccessRecord> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            all.extend(shard.ring.iter().cloned());
        }
        all.sort_by_key(|r| std::cmp::Reverse(r.seq));
        all.truncate(limit);
        all
    }

    /// The most recent records as JSON lines, newest first.
    pub fn recent_jsonl(&self, limit: usize) -> String {
        let mut out = String::new();
        for record in self.recent(limit) {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(route: &str, status: u16) -> AccessRecord {
        AccessRecord {
            seq: 0,
            ts_ms: 1_700_000_000_000,
            peer: "127.0.0.1:5000".into(),
            route: route.into(),
            status,
            bytes: 42,
            latency_us: 120,
            run_id: Some(RunId::from_u64(0xABCD)),
            shed: false,
            timeout: false,
        }
    }

    #[test]
    fn ring_keeps_the_newest_records_and_orders_them() {
        let log = AccessLog::new(16);
        for i in 0..100u16 {
            log.record(record("/run", 200 + i % 2));
        }
        assert_eq!(log.recorded(), 100);
        let recent = log.recent(8);
        assert_eq!(recent.len(), 8);
        // newest first, strictly descending seq, all from the tail
        assert!(recent.windows(2).all(|w| w[0].seq > w[1].seq));
        assert_eq!(recent[0].seq, 99);
        // residency is hard-bounded by the configured capacity
        assert_eq!(log.recent(usize::MAX).len(), 16);
    }

    #[test]
    fn jsonl_lines_are_schema_valid() {
        let log = AccessLog::new(8);
        log.record(record("/run", 200));
        let mut shed = record("-", 503);
        shed.run_id = None;
        shed.shed = true;
        log.record(shed);
        let jsonl = log.recent_jsonl(usize::MAX);
        crate::schema::validate_access_log_jsonl(&jsonl).unwrap();
        assert!(jsonl.contains("\"run_id\":\"000000000000abcd\""));
        assert!(jsonl.contains("\"run_id\":null"));
        assert!(jsonl.contains("\"shed\":true"));
    }

    #[test]
    fn sink_appends_one_line_per_record() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("qv-accesslog-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let log = AccessLog::with_sink(8, &path).expect("open sink");
            for _ in 0..3 {
                log.record(record("/metrics", 200));
            }
        }
        let text = std::fs::read_to_string(&path).expect("read sink");
        assert_eq!(text.lines().count(), 3);
        crate::schema::validate_access_log_jsonl(&text).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_recording_keeps_sequence_unique() {
        let log = AccessLog::new(1024);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..64 {
                        log.record(record("/run", 200));
                    }
                });
            }
        });
        let mut seqs: Vec<u64> = log.recent(usize::MAX).iter().map(|r| r.seq).collect();
        assert_eq!(seqs.len(), 512);
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 512, "duplicate sequence numbers");
    }
}
