//! The value model flowing over data links.
//!
//! Taverna's data model is strings and nested lists; the quality framework
//! additionally ships structured messages (data sets, annotation maps)
//! between processors, so we extend the model with numbers, booleans and
//! records. Everything is deep-clonable and order-stable so enactments are
//! deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// A value on a data link.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Data {
    /// Absence of a value (distinct from an empty list).
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    Text(String),
    List(Vec<Data>),
    Record(BTreeMap<String, Data>),
}

impl Data {
    /// Builds a record from `(field, value)` pairs.
    pub fn record<I, K>(fields: I) -> Self
    where
        I: IntoIterator<Item = (K, Data)>,
        K: Into<String>,
    {
        Data::Record(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a list.
    pub fn list(items: impl IntoIterator<Item = Data>) -> Self {
        Data::List(items.into_iter().collect())
    }

    /// Text accessor.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Data::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Data::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Data::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// List accessor.
    pub fn as_list(&self) -> Option<&[Data]> {
        match self {
            Data::List(v) => Some(v),
            _ => None,
        }
    }

    /// Record accessor.
    pub fn as_record(&self) -> Option<&BTreeMap<String, Data>> {
        match self {
            Data::Record(m) => Some(m),
            _ => None,
        }
    }

    /// Record field accessor.
    pub fn field(&self, name: &str) -> Option<&Data> {
        self.as_record().and_then(|m| m.get(name))
    }

    /// The nesting depth: 0 for scalars/records, 1 + max child depth for
    /// lists (empty lists have depth 1). This drives implicit iteration.
    pub fn depth(&self) -> usize {
        match self {
            Data::List(items) => 1 + items.iter().map(Data::depth).max().unwrap_or(0),
            _ => 0,
        }
    }

    /// Total number of scalar leaves (diagnostics / report sizing).
    pub fn leaf_count(&self) -> usize {
        match self {
            Data::List(items) => items.iter().map(Data::leaf_count).sum(),
            Data::Record(fields) => fields.values().map(Data::leaf_count).sum(),
            Data::Null => 0,
            _ => 1,
        }
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Data::Null => write!(f, "null"),
            Data::Bool(b) => write!(f, "{b}"),
            Data::Number(n) => write!(f, "{n}"),
            Data::Text(s) => write!(f, "{s:?}"),
            Data::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Data::Record(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<&str> for Data {
    fn from(s: &str) -> Self {
        Data::Text(s.to_string())
    }
}

impl From<String> for Data {
    fn from(s: String) -> Self {
        Data::Text(s)
    }
}

impl From<f64> for Data {
    fn from(n: f64) -> Self {
        Data::Number(n)
    }
}

impl From<i64> for Data {
    fn from(n: i64) -> Self {
        Data::Number(n as f64)
    }
}

impl From<bool> for Data {
    fn from(b: bool) -> Self {
        Data::Bool(b)
    }
}

impl<T: Into<Data>> FromIterator<T> for Data {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Data::List(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_semantics() {
        assert_eq!(Data::Text("x".into()).depth(), 0);
        assert_eq!(Data::list([]).depth(), 1);
        assert_eq!(Data::list([Data::from("a")]).depth(), 1);
        assert_eq!(Data::list([Data::list([Data::from(1i64)])]).depth(), 2);
        assert_eq!(Data::record([("k", Data::from(1i64))]).depth(), 0);
    }

    #[test]
    fn accessors() {
        let r = Data::record([("name", "P1".into()), ("score", 0.5.into())]);
        assert_eq!(r.field("name").and_then(Data::as_text), Some("P1"));
        assert_eq!(r.field("score").and_then(Data::as_number), Some(0.5));
        assert!(r.field("missing").is_none());
        assert!(r.as_list().is_none());
    }

    #[test]
    fn leaf_count() {
        let v = Data::list([
            Data::record([("a", 1i64.into()), ("b", Data::Null)]),
            Data::list(["x".into(), "y".into()]),
        ]);
        assert_eq!(v.leaf_count(), 3);
    }

    #[test]
    fn display_is_readable() {
        let v = Data::list([Data::record([("id", "P1".into())]), 2i64.into()]);
        assert_eq!(v.to_string(), r#"[{id: "P1"}, 2]"#);
    }

    #[test]
    fn collect_into_list() {
        let v: Data = (1i64..=3).collect();
        assert_eq!(v.as_list().unwrap().len(), 3);
    }
}
