//! Workflow embedding (paper §6.2): merging a compiled quality workflow
//! into a host experiment workflow through a deployment descriptor of
//! adapters and connectors.
//!
//! "Two main elements must be considered, (i) a set of adapters that
//! surround the embedded quality flows, and (ii) the connections among host
//! and embedded processors, which may occur through the adapters."

use crate::model::{PortRef, Workflow};
use crate::processor::Processor;
use crate::{Result, WorkflowError};
use std::sync::Arc;

/// A connector in a deployment descriptor: host output port → embedded
/// input port, or embedded output port → host input port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connector {
    /// Source processor and output port. Processor names refer to the host
    /// workflow, or to the embedded workflow when prefixed with the embed
    /// prefix chosen at [`Workflow::embed`] time.
    pub from: PortRef,
    /// Target processor and input port (same naming rule).
    pub to: PortRef,
}

impl Connector {
    /// Builds a connector.
    pub fn new(from_node: &str, from_port: &str, to_node: &str, to_port: &str) -> Self {
        Connector { from: PortRef::new(from_node, from_port), to: PortRef::new(to_node, to_port) }
    }
}

/// The deployment descriptor: adapters + connectors (the Taverna-specific
/// XML of §6.2, as a typed structure).
#[derive(Default)]
pub struct EmbedDescriptor {
    /// Adapters are processors in their own right; they are added to the
    /// host under their given names before connectors are installed.
    pub adapters: Vec<(String, Arc<dyn Processor>)>,
    /// Connections among host, embedded and adapter processors.
    pub connectors: Vec<Connector>,
    /// Data links of the host to sever before connecting (the embedding
    /// interposes the quality flow on an existing host edge).
    pub severed_links: Vec<(PortRef, PortRef)>,
}

impl EmbedDescriptor {
    /// An empty descriptor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an adapter processor.
    pub fn with_adapter(mut self, name: impl Into<String>, p: Arc<dyn Processor>) -> Self {
        self.adapters.push((name.into(), p));
        self
    }

    /// Adds a connector.
    pub fn with_connector(mut self, c: Connector) -> Self {
        self.connectors.push(c);
        self
    }

    /// Severs an existing host data link (so the quality flow can be
    /// interposed between producer and consumer).
    pub fn severing(mut self, from: PortRef, to: PortRef) -> Self {
        self.severed_links.push((from, to));
        self
    }
}

impl std::fmt::Debug for EmbedDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbedDescriptor")
            .field("adapters", &self.adapters.iter().map(|(n, _)| n).collect::<Vec<_>>())
            .field("connectors", &self.connectors)
            .field("severed_links", &self.severed_links)
            .finish()
    }
}

impl Workflow {
    /// Embeds `sub` into `self`: every processor of `sub` is copied under
    /// `prefix/<name>`, `sub`'s internal links are preserved, and the
    /// descriptor's adapters/connectors wire the two flows together.
    ///
    /// `sub`'s own workflow inputs/outputs are *not* imported — the
    /// descriptor's connectors replace them, mirroring the paper's
    /// deployment step where "the output ports of actions are bound to data
    /// links that transfer the surviving data back to the embedding
    /// workflow".
    pub fn embed(
        &mut self,
        sub: &Workflow,
        prefix: &str,
        descriptor: &EmbedDescriptor,
    ) -> Result<()> {
        // 1. sever host links the embedding replaces
        for (from, to) in &descriptor.severed_links {
            let before = self.data_links().len();
            self.retain_data_links(|l| !(l.from == *from && l.to == *to));
            if self.data_links().len() == before {
                return Err(WorkflowError::Unknown(format!(
                    "cannot sever non-existent link {from} -> {to}"
                )));
            }
        }

        // 2. copy sub's processors under the prefix
        for node in sub.nodes().map(str::to_string).collect::<Vec<_>>() {
            let processor = sub.processor(&node).expect("listed").clone();
            self.add(format!("{prefix}/{node}"), processor)?;
        }
        // 3. copy sub's internal links
        for link in sub.data_links() {
            self.link(
                &format!("{prefix}/{}", link.from.processor),
                &link.from.port,
                &format!("{prefix}/{}", link.to.processor),
                &link.to.port,
            )?;
        }
        for (before, after) in sub.control_links() {
            self.control_link(&format!("{prefix}/{before}"), &format!("{prefix}/{after}"))?;
        }

        // 4. adapters
        for (name, processor) in &descriptor.adapters {
            self.add(name.clone(), processor.clone())?;
        }

        // 5. connectors
        for c in &descriptor.connectors {
            self.link(&c.from.processor, &c.from.port, &c.to.processor, &c.to.port)?;
        }

        // embedding must leave the workflow valid
        self.validate().map(|_| ())
    }

    /// Keeps only the data links satisfying the predicate (used by embed).
    pub(crate) fn retain_data_links(&mut self, keep: impl Fn(&crate::model::DataLink) -> bool) {
        let links = std::mem::take(self.data_links_mut());
        *self.data_links_mut() = links.into_iter().filter(|l| keep(l)).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Data;
    use crate::processor::{Context, FnProcessor};
    use crate::Enactor;
    use std::collections::BTreeMap;

    fn constant(name: &str, value: f64) -> Arc<dyn Processor> {
        let v = Data::from(value);
        Arc::new(FnProcessor::new(name, &[], &["out"], move |_, _| {
            Ok(BTreeMap::from([("out".to_string(), v.clone())]))
        }))
    }

    fn add_one(name: &str) -> Arc<dyn Processor> {
        Arc::new(FnProcessor::map1(name, "in", "out", |v, _| {
            Ok(Data::Number(v.as_number().unwrap() + 1.0))
        }))
    }

    /// host: src -> sink; embedded: a single +1 processor interposed on the
    /// severed src->sink edge.
    #[test]
    fn interpose_quality_flow_on_host_edge() {
        let mut host = Workflow::new("host");
        host.add("src", constant("c", 10.0)).unwrap();
        host.add("sink", add_one("sink")).unwrap();
        host.link("src", "out", "sink", "in").unwrap();
        host.declare_output("final", PortRef::new("sink", "out")).unwrap();

        let mut quality = Workflow::new("quality");
        quality.add("boost", add_one("boost")).unwrap();

        let descriptor = EmbedDescriptor::new()
            .severing(PortRef::new("src", "out"), PortRef::new("sink", "in"))
            .with_connector(Connector::new("src", "out", "qv/boost", "in"))
            .with_connector(Connector::new("qv/boost", "out", "sink", "in"));

        host.embed(&quality, "qv", &descriptor).unwrap();

        let report = Enactor::new().run(&host, &BTreeMap::new(), &Context::new()).unwrap();
        // 10 -> boost(+1) -> sink(+1) = 12
        assert_eq!(report.outputs["final"], Data::from(12.0));
        assert!(host.nodes().any(|n| n == "qv/boost"));
    }

    #[test]
    fn embedding_preserves_sub_structure() {
        let mut sub = Workflow::new("sub");
        sub.add("a", add_one("a")).unwrap();
        sub.add("b", add_one("b")).unwrap();
        sub.link("a", "out", "b", "in").unwrap();
        sub.control_link("a", "b").unwrap();

        let mut host = Workflow::new("host");
        host.add("src", constant("c", 1.0)).unwrap();
        let descriptor =
            EmbedDescriptor::new().with_connector(Connector::new("src", "out", "q/a", "in"));
        host.embed(&sub, "q", &descriptor).unwrap();

        assert!(host
            .data_links()
            .iter()
            .any(|l| l.from.processor == "q/a" && l.to.processor == "q/b"));
        assert!(host.control_links().iter().any(|(x, y)| x == "q/a" && y == "q/b"));
    }

    #[test]
    fn adapters_are_added_and_connected() {
        let mut host = Workflow::new("host");
        host.add("src", constant("c", 3.0)).unwrap();

        let mut sub = Workflow::new("sub");
        sub.add("p", add_one("p")).unwrap();

        // an adapter doubling the value before it enters the quality flow
        let adapter = Arc::new(FnProcessor::map1("doubler", "in", "out", |v, _| {
            Ok(Data::Number(v.as_number().unwrap() * 2.0))
        }));
        let descriptor = EmbedDescriptor::new()
            .with_adapter("adapt", adapter)
            .with_connector(Connector::new("src", "out", "adapt", "in"))
            .with_connector(Connector::new("adapt", "out", "q/p", "in"));
        host.embed(&sub, "q", &descriptor).unwrap();
        host.declare_output("r", PortRef::new("q/p", "out")).unwrap();

        let report = Enactor::new().run(&host, &BTreeMap::new(), &Context::new()).unwrap();
        assert_eq!(report.outputs["r"], Data::from(7.0)); // 3*2+1
    }

    #[test]
    fn severing_missing_link_fails() {
        let mut host = Workflow::new("host");
        host.add("src", constant("c", 1.0)).unwrap();
        let sub = Workflow::new("sub");
        let descriptor =
            EmbedDescriptor::new().severing(PortRef::new("src", "out"), PortRef::new("nope", "in"));
        assert!(host.embed(&sub, "q", &descriptor).is_err());
    }

    #[test]
    fn name_collisions_are_rejected() {
        let mut host = Workflow::new("host");
        host.add("q/p", constant("c", 1.0)).unwrap();
        let mut sub = Workflow::new("sub");
        sub.add("p", add_one("p")).unwrap();
        let err = host.embed(&sub, "q", &EmbedDescriptor::new()).unwrap_err();
        assert!(matches!(err, WorkflowError::Invalid(_)));
    }
}
