//! # qurator-workflow
//!
//! A scientific-workflow engine in the style of Taverna (reproduction
//! substrate for *Quality Views*, VLDB 2006, §6).
//!
//! The paper compiles quality views into workflows for the Taverna
//! workbench, whose "simple workflow design primitives … are common to many
//! similar models": processors drawn from an extensible collection,
//! composed with **data links** (output port → input port) and **control
//! links** (B starts only after A completes). This crate implements those
//! primitives from scratch:
//!
//! * [`data`] — the value model flowing over data links (text, numbers,
//!   lists, records — a superset of Taverna's string/list model);
//! * [`processor`] — the [`processor::Processor`] trait (the extensible
//!   processor collection) and an execution context carrying shared
//!   resources (annotation repositories, service registries);
//! * [`model`] — the workflow graph: processors, data/control links,
//!   workflow input/output ports, validation (port existence, single
//!   writer per input, acyclicity) and topological ordering;
//! * [`enact`] — the enactor: wave-parallel execution (independent ready
//!   processors run concurrently on scoped threads, worker panics surfaced
//!   as execution errors), Taverna-style
//!   implicit iteration (a list arriving on an item-depth port maps the
//!   processor over the elements), and an execution report with per-node
//!   timings;
//! * [`embed`] — workflow nesting and the host-embedding operation the QV
//!   deployment step performs (prefix-merge + connectors, paper §6.2).

pub mod data;
pub mod embed;
pub mod enact;
pub mod model;
pub mod processor;

pub use data::Data;
pub use embed::{Connector, EmbedDescriptor};
pub use enact::{EnactmentReport, Enactor, NodeEvent};
pub use model::{DataLink, PortRef, Workflow};
pub use processor::{Context, FnProcessor, Processor};

/// Errors from the workflow layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// The referenced processor/port does not exist.
    Unknown(String),
    /// Graph construction violates the model (duplicate names, double-fed
    /// input ports, …).
    Invalid(String),
    /// The data-link graph has a cycle.
    Cyclic(String),
    /// A processor failed during enactment.
    Execution { processor: String, message: String },
    /// An input port received no value at enactment time.
    MissingInput { processor: String, port: String },
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::Unknown(m) => write!(f, "unknown workflow entity: {m}"),
            WorkflowError::Invalid(m) => write!(f, "invalid workflow: {m}"),
            WorkflowError::Cyclic(m) => write!(f, "workflow cycle: {m}"),
            WorkflowError::Execution { processor, message } => {
                write!(f, "processor {processor:?} failed: {message}")
            }
            WorkflowError::MissingInput { processor, port } => {
                write!(f, "processor {processor:?} got no value on port {port:?}")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WorkflowError>;
