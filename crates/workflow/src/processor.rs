//! The processor trait — Taverna's "extensible collection of processors" —
//! and the execution context shared across an enactment.

use crate::data::Data;
use crate::{Result, WorkflowError};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Named inputs handed to a processor invocation.
pub type Inputs = BTreeMap<String, Data>;
/// Named outputs produced by a processor invocation.
pub type Outputs = BTreeMap<String, Data>;

/// Shared, read-only execution context. Services reach stateful resources
/// (annotation repositories, registries) through here; interior mutability
/// inside the resources themselves (e.g. `parking_lot` locks) makes them
/// usable from the wave-parallel enactor.
#[derive(Clone, Default)]
pub struct Context {
    resources: BTreeMap<String, Arc<dyn Any + Send + Sync>>,
}

impl Context {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a shared resource under a name.
    pub fn insert<T: Any + Send + Sync>(&mut self, name: impl Into<String>, resource: Arc<T>) {
        self.resources.insert(name.into(), resource);
    }

    /// Fetches a shared resource by name and type.
    pub fn get<T: Any + Send + Sync>(&self, name: &str) -> Option<Arc<T>> {
        self.resources.get(name).and_then(|r| r.clone().downcast::<T>().ok())
    }

    /// Fetches a resource or produces a uniform execution error.
    pub fn require<T: Any + Send + Sync>(&self, name: &str, who: &str) -> Result<Arc<T>> {
        self.get(name).ok_or_else(|| WorkflowError::Execution {
            processor: who.to_string(),
            message: format!("required context resource {name:?} is missing or has the wrong type"),
        })
    }

    /// Names of all registered resources.
    pub fn resource_names(&self) -> impl Iterator<Item = &str> {
        self.resources.keys().map(String::as_str)
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("resources", &self.resources.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// A workflow processor.
///
/// `input_depths` declares the expected nesting depth per input port
/// (0 = single item, 1 = list, …). When an actual value is *deeper* than
/// declared, the enactor applies Taverna-style implicit iteration: the
/// processor is invoked once per element and the outputs are re-wrapped
/// into a list.
pub trait Processor: Send + Sync {
    /// The processor-type name (shown in reports and used by scavenging).
    fn type_name(&self) -> &str;

    /// Declared input ports with their expected depths.
    fn input_ports(&self) -> Vec<(String, usize)>;

    /// Declared output ports.
    fn output_ports(&self) -> Vec<String>;

    /// Executes one invocation.
    fn execute(&self, inputs: &Inputs, ctx: &Context) -> Result<Outputs>;

    /// Ports that may legally be absent at invocation time.
    fn optional_ports(&self) -> Vec<String> {
        Vec::new()
    }
}

/// A processor defined by a closure — the quickest way to add adapters and
/// test fixtures (Taverna's "local workers").
pub struct FnProcessor {
    name: String,
    inputs: Vec<(String, usize)>,
    outputs: Vec<String>,
    optional: Vec<String>,
    #[allow(clippy::type_complexity)]
    body: Box<dyn Fn(&Inputs, &Context) -> Result<Outputs> + Send + Sync>,
}

impl FnProcessor {
    /// Creates a closure-backed processor.
    pub fn new(
        name: impl Into<String>,
        inputs: &[(&str, usize)],
        outputs: &[&str],
        body: impl Fn(&Inputs, &Context) -> Result<Outputs> + Send + Sync + 'static,
    ) -> Self {
        FnProcessor {
            name: name.into(),
            inputs: inputs.iter().map(|(n, d)| (n.to_string(), *d)).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            optional: Vec::new(),
            body: Box::new(body),
        }
    }

    /// Marks ports as optional.
    pub fn with_optional(mut self, ports: &[&str]) -> Self {
        self.optional = ports.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Convenience: a single-input single-output item processor.
    pub fn map1(
        name: impl Into<String>,
        input: &str,
        output: &str,
        f: impl Fn(&Data, &Context) -> Result<Data> + Send + Sync + 'static,
    ) -> Self {
        let input_name = input.to_string();
        let output_name = output.to_string();
        let name = name.into();
        let who = name.clone();
        FnProcessor::new(name, &[(input, 0)], &[output], move |inputs, ctx| {
            let v = inputs.get(&input_name).ok_or_else(|| WorkflowError::MissingInput {
                processor: who.clone(),
                port: input_name.clone(),
            })?;
            let out = f(v, ctx)?;
            Ok(BTreeMap::from([(output_name.clone(), out)]))
        })
    }
}

impl Processor for FnProcessor {
    fn type_name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> Vec<(String, usize)> {
        self.inputs.clone()
    }

    fn output_ports(&self) -> Vec<String> {
        self.outputs.clone()
    }

    fn execute(&self, inputs: &Inputs, ctx: &Context) -> Result<Outputs> {
        (self.body)(inputs, ctx)
    }

    fn optional_ports(&self) -> Vec<String> {
        self.optional.clone()
    }
}

impl std::fmt::Debug for FnProcessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnProcessor")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_typed_resources() {
        let mut ctx = Context::new();
        ctx.insert("counter", Arc::new(42u32));
        assert_eq!(ctx.get::<u32>("counter").as_deref(), Some(&42));
        assert!(ctx.get::<String>("counter").is_none(), "wrong type");
        assert!(ctx.get::<u32>("missing").is_none());
        assert!(ctx.require::<u32>("missing", "p").is_err());
        assert_eq!(ctx.resource_names().collect::<Vec<_>>(), vec!["counter"]);
    }

    #[test]
    fn fn_processor_executes() {
        let p = FnProcessor::map1("double", "x", "y", |v, _| {
            Ok(Data::Number(v.as_number().unwrap_or(0.0) * 2.0))
        });
        assert_eq!(p.type_name(), "double");
        let inputs = BTreeMap::from([("x".to_string(), Data::from(21.0))]);
        let out = p.execute(&inputs, &Context::new()).unwrap();
        assert_eq!(out["y"], Data::from(42.0));
    }

    #[test]
    fn map1_missing_input_errors() {
        let p = FnProcessor::map1("id", "x", "y", |v, _| Ok(v.clone()));
        let err = p.execute(&BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, WorkflowError::MissingInput { .. }));
    }
}
