//! The workflow graph: processors composed with data and control links.

use crate::processor::Processor;
use crate::{Result, WorkflowError};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// A `(processor, port)` endpoint of a data link.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PortRef {
    pub processor: String,
    pub port: String,
}

impl PortRef {
    /// Builds a port reference.
    pub fn new(processor: impl Into<String>, port: impl Into<String>) -> Self {
        PortRef { processor: processor.into(), port: port.into() }
    }
}

impl std::fmt::Display for PortRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.processor, self.port)
    }
}

/// A data link between an output port and an input port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLink {
    pub from: PortRef,
    pub to: PortRef,
}

/// A named workflow: the unit the QV compiler produces and the deployment
/// step embeds into host workflows.
#[derive(Clone, Default)]
pub struct Workflow {
    name: String,
    processors: BTreeMap<String, Arc<dyn Processor>>,
    data_links: Vec<DataLink>,
    control_links: Vec<(String, String)>,
    /// workflow input name → target ports fed by it
    inputs: BTreeMap<String, Vec<PortRef>>,
    /// workflow output name → source port
    outputs: BTreeMap<String, PortRef>,
}

impl Workflow {
    /// An empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Workflow { name: name.into(), ..Default::default() }
    }

    /// The workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a processor under a unique node name.
    pub fn add(
        &mut self,
        node: impl Into<String>,
        processor: Arc<dyn Processor>,
    ) -> Result<&mut Self> {
        let node = node.into();
        if self.processors.contains_key(&node) {
            return Err(WorkflowError::Invalid(format!("duplicate processor name {node:?}")));
        }
        self.processors.insert(node, processor);
        Ok(self)
    }

    /// Connects `from_node.from_port -> to_node.to_port`.
    pub fn link(
        &mut self,
        from_node: &str,
        from_port: &str,
        to_node: &str,
        to_port: &str,
    ) -> Result<&mut Self> {
        let from = PortRef::new(from_node, from_port);
        let to = PortRef::new(to_node, to_port);
        self.check_output_port(&from)?;
        self.check_input_port(&to)?;
        if self.writer_of(&to).is_some() {
            return Err(WorkflowError::Invalid(format!("input port {to} already has a writer")));
        }
        self.data_links.push(DataLink { from, to });
        Ok(self)
    }

    /// Adds a control link: `after` starts only once `before` completed.
    pub fn control_link(&mut self, before: &str, after: &str) -> Result<&mut Self> {
        for node in [before, after] {
            if !self.processors.contains_key(node) {
                return Err(WorkflowError::Unknown(format!("processor {node:?}")));
            }
        }
        self.control_links.push((before.to_string(), after.to_string()));
        Ok(self)
    }

    /// Declares a workflow input feeding the given port.
    pub fn declare_input(&mut self, name: impl Into<String>, to: PortRef) -> Result<&mut Self> {
        self.check_input_port(&to)?;
        if self.writer_of(&to).is_some() {
            return Err(WorkflowError::Invalid(format!("input port {to} already has a writer")));
        }
        self.inputs.entry(name.into()).or_default().push(to);
        Ok(self)
    }

    /// Declares a workflow output sourced from the given port.
    pub fn declare_output(&mut self, name: impl Into<String>, from: PortRef) -> Result<&mut Self> {
        self.check_output_port(&from)?;
        self.outputs.insert(name.into(), from);
        Ok(self)
    }

    fn check_input_port(&self, port: &PortRef) -> Result<()> {
        let p = self
            .processors
            .get(&port.processor)
            .ok_or_else(|| WorkflowError::Unknown(format!("processor {:?}", port.processor)))?;
        if !p.input_ports().iter().any(|(n, _)| *n == port.port) {
            return Err(WorkflowError::Unknown(format!(
                "input port {port} (processor type {:?})",
                p.type_name()
            )));
        }
        Ok(())
    }

    fn check_output_port(&self, port: &PortRef) -> Result<()> {
        let p = self
            .processors
            .get(&port.processor)
            .ok_or_else(|| WorkflowError::Unknown(format!("processor {:?}", port.processor)))?;
        if !p.output_ports().contains(&port.port) {
            return Err(WorkflowError::Unknown(format!(
                "output port {port} (processor type {:?})",
                p.type_name()
            )));
        }
        Ok(())
    }

    /// The data link (or workflow input name) feeding an input port.
    fn writer_of(&self, port: &PortRef) -> Option<&DataLink> {
        self.data_links.iter().find(|l| l.to == *port)
    }

    /// True if a workflow input feeds the port.
    pub fn input_feeds(&self, port: &PortRef) -> Option<&str> {
        self.inputs
            .iter()
            .find(|(_, targets)| targets.contains(port))
            .map(|(name, _)| name.as_str())
    }

    // ---------- read accessors ----------

    /// Node names in insertion-independent (sorted) order.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.processors.keys().map(String::as_str)
    }

    /// The processor at a node.
    pub fn processor(&self, node: &str) -> Option<&Arc<dyn Processor>> {
        self.processors.get(node)
    }

    /// All data links.
    pub fn data_links(&self) -> &[DataLink] {
        &self.data_links
    }

    /// Mutable access for the embedding machinery.
    pub(crate) fn data_links_mut(&mut self) -> &mut Vec<DataLink> {
        &mut self.data_links
    }

    /// All control links.
    pub fn control_links(&self) -> &[(String, String)] {
        &self.control_links
    }

    /// Declared workflow inputs.
    pub fn inputs(&self) -> impl Iterator<Item = (&str, &[PortRef])> {
        self.inputs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Declared workflow outputs.
    pub fn outputs(&self) -> impl Iterator<Item = (&str, &PortRef)> {
        self.outputs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.processors.len()
    }

    /// True when the workflow has no processors.
    pub fn is_empty(&self) -> bool {
        self.processors.is_empty()
    }

    // ---------- validation ----------

    /// Dependency edges (union of data and control links) as node pairs.
    pub fn dependency_edges(&self) -> impl Iterator<Item = (&str, &str)> {
        self.data_links
            .iter()
            .map(|l| (l.from.processor.as_str(), l.to.processor.as_str()))
            .chain(self.control_links.iter().map(|(a, b)| (a.as_str(), b.as_str())))
    }

    /// Validates the graph: every referenced node/port exists (by
    /// construction), every *required* input port has a writer (data link or
    /// workflow input), and the dependency graph is acyclic. Returns a
    /// topological order of the nodes.
    pub fn validate(&self) -> Result<Vec<String>> {
        // required ports must be fed
        for (node, processor) in &self.processors {
            let optional: BTreeSet<String> = processor.optional_ports().into_iter().collect();
            for (port, _) in processor.input_ports() {
                if optional.contains(&port) {
                    continue;
                }
                let port_ref = PortRef::new(node.clone(), port.clone());
                if self.writer_of(&port_ref).is_none() && self.input_feeds(&port_ref).is_none() {
                    return Err(WorkflowError::MissingInput { processor: node.clone(), port });
                }
            }
        }
        self.topological_order()
    }

    /// Kahn's algorithm over the dependency edges; deterministic (sorted
    /// node order within each wave).
    pub fn topological_order(&self) -> Result<Vec<String>> {
        let mut indegree: BTreeMap<&str, usize> =
            self.processors.keys().map(|k| (k.as_str(), 0)).collect();
        let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut seen_edges: BTreeSet<(&str, &str)> = BTreeSet::new();
        for (from, to) in self.dependency_edges() {
            if from == to {
                return Err(WorkflowError::Cyclic(format!("self-loop on {from:?}")));
            }
            if seen_edges.insert((from, to)) {
                adjacency.entry(from).or_default().push(to);
                *indegree.get_mut(to).expect("checked on insert") += 1;
            }
        }
        let mut ready: VecDeque<&str> =
            indegree.iter().filter(|(_, d)| **d == 0).map(|(n, _)| *n).collect();
        let mut order = Vec::with_capacity(self.processors.len());
        while let Some(node) = ready.pop_front() {
            order.push(node.to_string());
            if let Some(children) = adjacency.get(node) {
                for child in children {
                    let d = indegree.get_mut(child).expect("known node");
                    *d -= 1;
                    if *d == 0 {
                        ready.push_back(child);
                    }
                }
            }
        }
        if order.len() != self.processors.len() {
            let stuck: Vec<&str> =
                indegree.iter().filter(|(_, d)| **d > 0).map(|(n, _)| *n).collect();
            return Err(WorkflowError::Cyclic(format!("cycle involving {stuck:?}")));
        }
        Ok(order)
    }

    /// Execution waves: groups of nodes whose dependencies are all in
    /// earlier waves (the enactor runs each wave in parallel).
    pub fn waves(&self) -> Result<Vec<Vec<String>>> {
        let order = self.topological_order()?;
        let mut level: BTreeMap<&str, usize> = BTreeMap::new();
        let mut preds: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (from, to) in self.dependency_edges() {
            preds.entry(to).or_default().push(from);
        }
        let mut waves: Vec<Vec<String>> = Vec::new();
        for node in &order {
            let lvl = preds
                .get(node.as_str())
                .map(|ps| ps.iter().map(|p| level[p] + 1).max().unwrap_or(0))
                .unwrap_or(0);
            level.insert(node, lvl);
            if waves.len() <= lvl {
                waves.resize_with(lvl + 1, Vec::new);
            }
            waves[lvl].push(node.clone());
        }
        Ok(waves)
    }

    /// A GraphViz DOT rendering (handy for eyeballing compiled QVs against
    /// the paper's Figure 6).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        for (node, p) in &self.processors {
            let _ = writeln!(out, "  \"{node}\" [label=\"{node}\\n({})\"];", p.type_name());
        }
        for l in &self.data_links {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}→{}\"];",
                l.from.processor, l.to.processor, l.from.port, l.to.port
            );
        }
        for (a, b) in &self.control_links {
            let _ = writeln!(out, "  \"{a}\" -> \"{b}\" [style=dashed];");
        }
        let _ = writeln!(out, "}}");
        out
    }
}

impl std::fmt::Debug for Workflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workflow")
            .field("name", &self.name)
            .field("processors", &self.processors.keys().collect::<Vec<_>>())
            .field("data_links", &self.data_links.len())
            .field("control_links", &self.control_links.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Data;
    use crate::processor::FnProcessor;

    fn passthrough(name: &str) -> Arc<dyn Processor> {
        Arc::new(FnProcessor::map1(name, "in", "out", |v, _| Ok(v.clone())))
    }

    fn chain3() -> Workflow {
        let mut w = Workflow::new("chain");
        w.add("a", passthrough("p")).unwrap();
        w.add("b", passthrough("p")).unwrap();
        w.add("c", passthrough("p")).unwrap();
        w.link("a", "out", "b", "in").unwrap();
        w.link("b", "out", "c", "in").unwrap();
        w.declare_input("x", PortRef::new("a", "in")).unwrap();
        w.declare_output("y", PortRef::new("c", "out")).unwrap();
        w
    }

    #[test]
    fn construction_and_validation() {
        let w = chain3();
        let order = w.validate().unwrap();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn bad_references_are_rejected() {
        let mut w = Workflow::new("t");
        w.add("a", passthrough("p")).unwrap();
        assert!(w.add("a", passthrough("p")).is_err(), "duplicate node");
        assert!(w.link("a", "nope", "a", "in").is_err(), "unknown out port");
        assert!(w.link("missing", "out", "a", "in").is_err());
        assert!(w.declare_output("o", PortRef::new("a", "in")).is_err(), "in is not an output");
    }

    #[test]
    fn double_writer_rejected() {
        let mut w = Workflow::new("t");
        w.add("a", passthrough("p")).unwrap();
        w.add("b", passthrough("p")).unwrap();
        w.add("c", passthrough("p")).unwrap();
        w.link("a", "out", "c", "in").unwrap();
        assert!(w.link("b", "out", "c", "in").is_err());
        assert!(w.declare_input("x", PortRef::new("c", "in")).is_err());
    }

    #[test]
    fn unfed_required_port_fails_validation() {
        let mut w = Workflow::new("t");
        w.add("a", passthrough("p")).unwrap();
        assert!(matches!(w.validate(), Err(WorkflowError::MissingInput { .. })));
    }

    #[test]
    fn optional_ports_may_stay_unfed() {
        let mut w = Workflow::new("t");
        let p = FnProcessor::new("opt", &[("maybe", 0)], &["out"], |_, _| {
            Ok(BTreeMap::from([("out".to_string(), Data::Null)]))
        })
        .with_optional(&["maybe"]);
        w.add("a", Arc::new(p)).unwrap();
        assert!(w.validate().is_ok());
    }

    #[test]
    fn cycles_detected() {
        let mut w = Workflow::new("t");
        w.add("a", passthrough("p")).unwrap();
        w.add("b", passthrough("p")).unwrap();
        w.link("a", "out", "b", "in").unwrap();
        w.link("b", "out", "a", "in").unwrap();
        assert!(matches!(w.topological_order(), Err(WorkflowError::Cyclic(_))));
    }

    #[test]
    fn control_links_order_execution() {
        let mut w = Workflow::new("t");
        for n in ["a", "b"] {
            let p = FnProcessor::new(n, &[], &["out"], |_, _| {
                Ok(BTreeMap::from([("out".to_string(), Data::Null)]))
            });
            w.add(n, Arc::new(p)).unwrap();
        }
        w.control_link("b", "a").unwrap();
        assert_eq!(w.topological_order().unwrap(), vec!["b", "a"]);
        assert!(w.control_link("b", "missing").is_err());
    }

    #[test]
    fn waves_group_independent_nodes() {
        let mut w = Workflow::new("t");
        let src = FnProcessor::new("src", &[], &["out"], |_, _| {
            Ok(BTreeMap::from([("out".to_string(), Data::from(1i64))]))
        });
        w.add("s", Arc::new(src)).unwrap();
        w.add("l", passthrough("p")).unwrap();
        w.add("r", passthrough("p")).unwrap();
        w.add("join", passthrough("p")).unwrap();
        w.link("s", "out", "l", "in").unwrap();
        w.link("s", "out", "r", "in").unwrap();
        w.link("l", "out", "join", "in").unwrap();
        let waves = w.waves().unwrap();
        assert_eq!(waves[0], vec!["s"]);
        assert_eq!(waves[1], vec!["l", "r"]);
        assert_eq!(waves[2], vec!["join"]);
    }

    #[test]
    fn dot_rendering_mentions_everything() {
        let dot = chain3().to_dot();
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.contains("out→in"));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::data::Data;
    use crate::processor::FnProcessor;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// A passthrough node with one optional input and one output.
    fn node() -> Arc<dyn Processor> {
        Arc::new(
            FnProcessor::new("n", &[("in", 0)], &["out"], |_, _| {
                Ok(BTreeMap::from([("out".to_string(), Data::Null)]))
            })
            .with_optional(&["in"]),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// For any DAG (control edges i -> j with i < j): the topological
        /// order respects every edge, and waves are a valid level
        /// assignment (every predecessor sits in a strictly earlier wave).
        #[test]
        fn order_and_waves_respect_random_dags(
            edges in proptest::collection::btree_set((0usize..12, 0usize..12), 0..40)
        ) {
            let mut w = Workflow::new("t");
            for i in 0..12 {
                w.add(format!("n{i}"), node()).unwrap();
            }
            for (a, b) in &edges {
                if a < b {
                    w.control_link(&format!("n{a}"), &format!("n{b}")).unwrap();
                }
            }
            let order = w.topological_order().unwrap();
            let position: BTreeMap<&str, usize> =
                order.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
            for (a, b) in &edges {
                if a < b {
                    let pa = position[format!("n{a}").as_str()];
                    let pb = position[format!("n{b}").as_str()];
                    prop_assert!(pa < pb, "edge n{}->n{} violated", a, b);
                }
            }
            let waves = w.waves().unwrap();
            let mut level: BTreeMap<String, usize> = BTreeMap::new();
            for (lvl, wave) in waves.iter().enumerate() {
                for n in wave {
                    level.insert(n.clone(), lvl);
                }
            }
            prop_assert_eq!(level.len(), 12, "every node appears in exactly one wave");
            for (a, b) in &edges {
                if a < b {
                    let la = level[&format!("n{a}")];
                    let lb = level[&format!("n{b}")];
                    prop_assert!(la < lb, "wave levels for n{}->n{}", a, b);
                }
            }
        }

        /// Back-edges always produce a cycle error.
        #[test]
        fn cycles_always_detected(n in 2usize..8) {
            let mut w = Workflow::new("t");
            for i in 0..n {
                w.add(format!("n{i}"), node()).unwrap();
            }
            for i in 0..n - 1 {
                w.control_link(&format!("n{i}"), &format!("n{}", i + 1)).unwrap();
            }
            w.control_link(&format!("n{}", n - 1), "n0").unwrap();
            prop_assert!(matches!(w.topological_order(), Err(WorkflowError::Cyclic(_))));
        }
    }
}
