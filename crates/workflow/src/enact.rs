//! The enactor: executes a validated workflow over concrete inputs.
//!
//! Execution proceeds in *waves* (antichains of the dependency graph);
//! within a wave every processor runs on its own scoped thread.
//! Implicit iteration follows Taverna's cross-product strategy: whenever an
//! input arrives with more list-nesting than the port declares, the
//! processor is mapped over the elements and its outputs are re-wrapped.

use crate::data::Data;
use crate::model::{PortRef, Workflow};
use crate::processor::{Context, Inputs, Outputs, Processor};
use crate::{Result, WorkflowError};
use qurator_telemetry::span::Span;
use qurator_telemetry::{
    Histogram, RunId, SpanId, SpanKind, SpanRecorder, SpanTrace, TraceSession,
};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Per-node invocation spans are capped so implicit iteration over a
/// large collection cannot blow up the trace; the overflow is recorded
/// on the node span as `invocations.dropped`.
const MAX_INVOCATION_SPANS: usize = 4096;

fn wave_width_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("enact.wave.width"))
}

fn node_duration_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("enact.node.duration_ns"))
}

/// Per-node timing and sizing captured during an enactment.
#[derive(Debug, Clone)]
pub struct NodeEvent {
    pub node: String,
    pub processor_type: String,
    pub wave: usize,
    pub duration: Duration,
    /// Sum of scalar leaves over all outputs (rough output volume).
    pub output_leaves: usize,
    /// Number of implicit-iteration invocations (1 = no iteration).
    pub invocations: usize,
    /// The node's span in [`EnactmentReport::trace`].
    pub span: Option<SpanId>,
}

/// The result of one enactment: workflow outputs, the per-node event
/// list (sorted by `(wave, node)` — deterministic regardless of parallel
/// completion order) and the full span tree.
#[derive(Debug, Clone)]
pub struct EnactmentReport {
    pub outputs: BTreeMap<String, Data>,
    pub events: Vec<NodeEvent>,
    pub total: Duration,
    trace: SpanTrace,
    index: BTreeMap<String, usize>,
}

impl EnactmentReport {
    fn new(
        outputs: BTreeMap<String, Data>,
        mut events: Vec<NodeEvent>,
        total: Duration,
        trace: SpanTrace,
    ) -> Self {
        events.sort_by(|a, b| a.wave.cmp(&b.wave).then_with(|| a.node.cmp(&b.node)));
        let index = events.iter().enumerate().map(|(i, e)| (e.node.clone(), i)).collect();
        EnactmentReport { outputs, events, total, trace, index }
    }

    /// The event for a node, if it ran (O(1) via an index map).
    pub fn event(&self, node: &str) -> Option<&NodeEvent> {
        self.index.get(node).map(|&i| &self.events[i])
    }

    /// The hierarchical span tree of this enactment
    /// (view → wave → node → invocation).
    pub fn trace(&self) -> &SpanTrace {
        &self.trace
    }

    /// A one-line-per-node textual trace, ordered by (wave, node).
    pub fn render_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(
                out,
                "wave {} | {:<28} | {:<24} | {:>5} calls | {:>7} leaves | {:?}",
                e.wave, e.node, e.processor_type, e.invocations, e.output_leaves, e.duration
            );
        }
        let _ = writeln!(out, "total: {:?}", self.total);
        out
    }

    /// The span tree rendered as an indented hierarchy.
    pub fn render_spans(&self) -> String {
        self.trace.render()
    }
}

/// Enactment engine with a parallelism switch (the E5 ablation compares
/// sequential vs wave-parallel execution).
#[derive(Debug, Clone)]
pub struct Enactor {
    parallel: bool,
    run_id: Option<RunId>,
}

impl Default for Enactor {
    fn default() -> Self {
        Enactor { parallel: true, run_id: None }
    }
}

impl Enactor {
    /// A wave-parallel enactor (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// A strictly sequential enactor.
    pub fn sequential() -> Self {
        Enactor { parallel: false, run_id: None }
    }

    /// Stamps the enactment's root `view:` span with a caller-minted run
    /// id, so compiled-path traces correlate like interpreted ones.
    pub fn with_run_id(mut self, run: RunId) -> Self {
        self.run_id = Some(run);
        self
    }

    /// Validates and executes the workflow.
    pub fn run(
        &self,
        workflow: &Workflow,
        inputs: &BTreeMap<String, Data>,
        ctx: &Context,
    ) -> Result<EnactmentReport> {
        workflow.validate()?;
        let started = Instant::now();
        let waves = workflow.waves()?;

        let session = TraceSession::new();
        let mut main_rec = session.recorder();
        let view_span = main_rec.start(format!("view:{}", workflow.name()), SpanKind::View, None);
        if let Some(run) = self.run_id {
            main_rec.attr(view_span, "run_id", run.to_string());
        }
        main_rec.attr(view_span, "waves", waves.len());
        main_rec.attr(view_span, "parallel", self.parallel);

        // Values produced on output ports so far.
        let mut port_values: BTreeMap<PortRef, Data> = BTreeMap::new();
        let mut events: Vec<NodeEvent> = Vec::new();
        let mut worker_spans: Vec<Span> = Vec::new();

        for (wave_index, wave) in waves.iter().enumerate() {
            wave_width_hist().record(wave.len() as u64);
            let wave_span =
                main_rec.start(format!("wave:{wave_index}"), SpanKind::Wave, Some(view_span));
            main_rec.attr(wave_span, "width", wave.len());

            // Assemble each node's inputs up front (read-only phase).
            let mut jobs: Vec<(String, &Workflow, Inputs)> = Vec::with_capacity(wave.len());
            for node in wave {
                let inputs_for_node = assemble_inputs(workflow, node, inputs, &port_values)?;
                jobs.push((node.clone(), workflow, inputs_for_node));
            }

            // Execute the wave. Each worker records spans into its own
            // buffer (derived from the shared session) and hands it back
            // with the result; nothing is shared between workers but the
            // span-id counter.
            let results: Vec<Result<NodeRun>> = if self.parallel && jobs.len() > 1 {
                std::thread::scope(|scope| {
                    let session = &session;
                    let handles: Vec<_> = jobs
                        .iter()
                        .map(|(node, wf, node_inputs)| {
                            scope.spawn(move || {
                                run_node_guarded(wf, node, node_inputs, ctx, session, wave_span)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .zip(jobs.iter())
                        .map(|(handle, (node, _, _))| match handle.join() {
                            Ok(result) => result,
                            // A worker can only be "gone" if its panic escaped the
                            // catch_unwind (panic-in-panic-payload Drop); still
                            // surface it as this node's execution failure.
                            Err(payload) => Err(panic_to_error(node, payload)),
                        })
                        .collect()
                })
            } else {
                jobs.iter()
                    .map(|(node, wf, node_inputs)| {
                        run_node_guarded(wf, node, node_inputs, ctx, &session, wave_span)
                    })
                    .collect()
            };

            for result in results {
                let run = result?;
                let output_leaves = run.outputs.values().map(Data::leaf_count).sum();
                let processor_type =
                    workflow.processor(&run.node).expect("node exists").type_name().to_string();
                node_duration_hist().record(run.duration.as_nanos() as u64);
                worker_spans.extend(run.spans);
                for (port, value) in run.outputs {
                    port_values.insert(PortRef::new(run.node.clone(), port), value);
                }
                events.push(NodeEvent {
                    node: run.node,
                    processor_type,
                    wave: wave_index,
                    duration: run.duration,
                    output_leaves,
                    invocations: run.invocations,
                    span: Some(run.span),
                });
            }
            main_rec.end(wave_span);
        }

        // Collect workflow outputs.
        let mut outputs = BTreeMap::new();
        for (name, source) in workflow.outputs() {
            let value = port_values.get(source).cloned().ok_or_else(|| {
                WorkflowError::Unknown(format!(
                    "workflow output {name:?} source {source} produced nothing"
                ))
            })?;
            outputs.insert(name.to_string(), value);
        }

        main_rec.attr(view_span, "nodes", events.len());
        main_rec.end(view_span);
        let mut spans = main_rec.finish();
        spans.append(&mut worker_spans);
        let trace = SpanTrace::from_spans(spans);

        Ok(EnactmentReport::new(outputs, events, started.elapsed(), trace))
    }
}

/// Everything a worker hands back for one node.
struct NodeRun {
    node: String,
    outputs: Outputs,
    duration: Duration,
    invocations: usize,
    /// The node's own span id (parent of its invocation spans).
    span: SpanId,
    /// The worker's span buffer: the node span plus invocation spans.
    spans: Vec<Span>,
}

/// Renders a panic payload (`&str` or `String`, the two forms `panic!`
/// produces) as an [`WorkflowError::Execution`] for the given node.
fn panic_to_error(node: &str, payload: Box<dyn std::any::Any + Send>) -> WorkflowError {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    WorkflowError::Execution {
        processor: node.to_string(),
        message: format!("processor panicked: {message}"),
    }
}

/// Runs a node, converting a panicking processor into a regular
/// [`WorkflowError::Execution`] instead of aborting the whole enactment
/// (a panic on a worker thread used to take down the scope).
fn run_node_guarded(
    workflow: &Workflow,
    node: &str,
    inputs: &Inputs,
    ctx: &Context,
    session: &TraceSession,
    wave_span: SpanId,
) -> Result<NodeRun> {
    catch_unwind(AssertUnwindSafe(|| run_node(workflow, node, inputs, ctx, session, wave_span)))
        .unwrap_or_else(|payload| Err(panic_to_error(node, payload)))
}

fn run_node(
    workflow: &Workflow,
    node: &str,
    inputs: &Inputs,
    ctx: &Context,
    session: &TraceSession,
    wave_span: SpanId,
) -> Result<NodeRun> {
    let processor = workflow.processor(node).expect("validated");
    let mut rec = session.recorder();
    let node_span = rec.start(format!("node:{node}"), SpanKind::Node, Some(wave_span));
    rec.attr(node_span, "processor", processor.type_name());
    let started = Instant::now();
    let mut invocations = 0usize;
    let mut tracer = InvocationTracer { rec: &mut rec, parent: node_span, recorded: 0 };
    let outputs =
        invoke_with_iteration(processor.as_ref(), inputs, ctx, &mut invocations, &mut tracer)
            .map_err(|e| match e {
                WorkflowError::Execution { .. } | WorkflowError::MissingInput { .. } => e,
                other => WorkflowError::Execution {
                    processor: node.to_string(),
                    message: other.to_string(),
                },
            })?;
    let dropped = invocations.saturating_sub(tracer.recorded);
    rec.attr(node_span, "invocations", invocations);
    if dropped > 0 {
        rec.attr(node_span, "invocations.dropped", dropped);
    }
    rec.end(node_span);
    Ok(NodeRun {
        node: node.to_string(),
        outputs,
        duration: started.elapsed(),
        invocations,
        span: node_span,
        spans: rec.finish(),
    })
}

/// Wraps leaf processor invocations in [`SpanKind::Invocation`] spans,
/// up to [`MAX_INVOCATION_SPANS`] per node.
struct InvocationTracer<'a> {
    rec: &'a mut SpanRecorder,
    parent: SpanId,
    recorded: usize,
}

impl InvocationTracer<'_> {
    fn invoke(
        &mut self,
        processor: &dyn Processor,
        inputs: &Inputs,
        ctx: &Context,
        index: usize,
    ) -> Result<Outputs> {
        if self.recorded >= MAX_INVOCATION_SPANS {
            return processor.execute(inputs, ctx);
        }
        self.recorded += 1;
        let span =
            self.rec.start(format!("invoke:{index}"), SpanKind::Invocation, Some(self.parent));
        let result = processor.execute(inputs, ctx);
        self.rec.end(span);
        result
    }
}

fn assemble_inputs(
    workflow: &Workflow,
    node: &str,
    workflow_inputs: &BTreeMap<String, Data>,
    port_values: &BTreeMap<PortRef, Data>,
) -> Result<Inputs> {
    let processor = workflow.processor(node).expect("validated");
    let mut assembled: Inputs = BTreeMap::new();
    for (port, _) in processor.input_ports() {
        let port_ref = PortRef::new(node, port.clone());
        // data link feeding the port?
        let from_link =
            workflow.data_links().iter().find(|l| l.to == port_ref).map(|l| l.from.clone());
        if let Some(from) = from_link {
            let value = port_values.get(&from).cloned().ok_or_else(|| {
                WorkflowError::MissingInput { processor: node.to_string(), port: port.clone() }
            })?;
            assembled.insert(port, value);
            continue;
        }
        // workflow input feeding the port?
        if let Some(name) = workflow.input_feeds(&port_ref) {
            let value =
                workflow_inputs.get(name).cloned().ok_or_else(|| WorkflowError::MissingInput {
                    processor: format!("workflow input {name:?}"),
                    port: port.clone(),
                })?;
            assembled.insert(port, value);
        }
        // otherwise: optional port (validate() guaranteed), stays absent
    }
    Ok(assembled)
}

/// Invokes a processor with Taverna-style implicit iteration.
///
/// Strategy selection mirrors Taverna's iteration strategies:
/// * when *several* ports are deeper than declared and their top-level
///   lists have equal length, they are zipped element-wise (**dot
///   product** — the natural strategy for aligned per-spot streams);
/// * otherwise the first too-deep port is expanded on its own and the
///   rest are handled recursively (**cross product**).
fn invoke_with_iteration(
    processor: &dyn Processor,
    inputs: &Inputs,
    ctx: &Context,
    invocations: &mut usize,
    tracer: &mut InvocationTracer<'_>,
) -> Result<Outputs> {
    let deep_ports: Vec<String> = processor
        .input_ports()
        .into_iter()
        .filter_map(|(port, declared)| {
            inputs.get(&port).filter(|v| v.depth() > declared).map(|_| port)
        })
        .collect();
    if deep_ports.is_empty() {
        *invocations += 1;
        return tracer.invoke(processor, inputs, ctx, *invocations);
    }

    let list_of = |port: &str| -> &Vec<Data> {
        match &inputs[port] {
            Data::List(items) => items,
            // depth > declared implies a list at the top level
            _ => unreachable!("depth > 0 but not a list"),
        }
    };

    // dot product across all deep ports when their lengths agree
    let first_len = list_of(&deep_ports[0]).len();
    let dot = deep_ports.len() > 1 && deep_ports.iter().all(|p| list_of(p).len() == first_len);

    let mut collected: BTreeMap<String, Vec<Data>> = BTreeMap::new();
    if dot {
        for index in 0..first_len {
            let mut sub = inputs.clone();
            for port in &deep_ports {
                sub.insert(port.clone(), list_of(port)[index].clone());
            }
            let out = invoke_with_iteration(processor, &sub, ctx, invocations, tracer)?;
            for (k, v) in out {
                collected.entry(k).or_default().push(v);
            }
        }
    } else {
        let port = &deep_ports[0];
        for item in list_of(port) {
            let mut sub = inputs.clone();
            sub.insert(port.clone(), item.clone());
            let out = invoke_with_iteration(processor, &sub, ctx, invocations, tracer)?;
            for (k, v) in out {
                collected.entry(k).or_default().push(v);
            }
        }
    }
    let mut wrapped: Outputs = BTreeMap::new();
    for name in processor.output_ports() {
        let values = collected.remove(&name).unwrap_or_default();
        wrapped.insert(name, Data::List(values));
    }
    Ok(wrapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::FnProcessor;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn upper() -> Arc<dyn Processor> {
        Arc::new(FnProcessor::map1("upper", "in", "out", |v, _| {
            Ok(Data::Text(v.as_text().unwrap_or("").to_uppercase()))
        }))
    }

    #[test]
    fn runs_a_chain() {
        let mut w = Workflow::new("t");
        w.add("u", upper()).unwrap();
        w.declare_input("text", PortRef::new("u", "in")).unwrap();
        w.declare_output("result", PortRef::new("u", "out")).unwrap();
        let report = Enactor::new()
            .run(&w, &BTreeMap::from([("text".to_string(), "hi".into())]), &Context::new())
            .unwrap();
        assert_eq!(report.outputs["result"], Data::Text("HI".into()));
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.event("u").unwrap().invocations, 1);
    }

    #[test]
    fn implicit_iteration_maps_lists() {
        let mut w = Workflow::new("t");
        w.add("u", upper()).unwrap();
        w.declare_input("text", PortRef::new("u", "in")).unwrap();
        w.declare_output("result", PortRef::new("u", "out")).unwrap();
        let input = Data::list(["a".into(), "b".into(), "c".into()]);
        let report = Enactor::new()
            .run(&w, &BTreeMap::from([("text".to_string(), input)]), &Context::new())
            .unwrap();
        assert_eq!(report.outputs["result"], Data::list(["A".into(), "B".into(), "C".into()]));
        assert_eq!(report.event("u").unwrap().invocations, 3);
    }

    #[test]
    fn nested_iteration_preserves_structure() {
        let mut w = Workflow::new("t");
        w.add("u", upper()).unwrap();
        w.declare_input("text", PortRef::new("u", "in")).unwrap();
        w.declare_output("result", PortRef::new("u", "out")).unwrap();
        let input = Data::list([Data::list(["a".into()]), Data::list(["b".into(), "c".into()])]);
        let report = Enactor::new()
            .run(&w, &BTreeMap::from([("text".to_string(), input)]), &Context::new())
            .unwrap();
        assert_eq!(
            report.outputs["result"],
            Data::list([Data::list(["A".into()]), Data::list(["B".into(), "C".into()])])
        );
    }

    #[test]
    fn list_port_receives_whole_list() {
        // declared depth 1: no iteration even for list input
        let p = FnProcessor::new("count", &[("items", 1)], &["n"], |inputs, _| {
            let n = inputs["items"].as_list().map(|l| l.len()).unwrap_or(0);
            Ok(BTreeMap::from([("n".to_string(), Data::from(n as i64))]))
        });
        let mut w = Workflow::new("t");
        w.add("c", Arc::new(p)).unwrap();
        w.declare_input("items", PortRef::new("c", "items")).unwrap();
        w.declare_output("n", PortRef::new("c", "n")).unwrap();
        let input = Data::list(["a".into(), "b".into()]);
        let report = Enactor::new()
            .run(&w, &BTreeMap::from([("items".to_string(), input)]), &Context::new())
            .unwrap();
        assert_eq!(report.outputs["n"], Data::from(2i64));
        assert_eq!(report.event("c").unwrap().invocations, 1);
    }

    #[test]
    fn diamond_executes_in_waves_and_parallel_matches_sequential() {
        fn make() -> Workflow {
            let src = FnProcessor::new("src", &[], &["out"], |_, _| {
                Ok(BTreeMap::from([("out".to_string(), Data::from(2.0))]))
            });
            let double = |name: &str| {
                Arc::new(FnProcessor::map1(name, "in", "out", |v, _| {
                    Ok(Data::Number(v.as_number().unwrap() * 2.0))
                }))
            };
            let sum = FnProcessor::new("sum", &[("a", 0), ("b", 0)], &["out"], |inputs, _| {
                let a = inputs["a"].as_number().unwrap();
                let b = inputs["b"].as_number().unwrap();
                Ok(BTreeMap::from([("out".to_string(), Data::from(a + b))]))
            });
            let mut w = Workflow::new("diamond");
            w.add("s", Arc::new(src)).unwrap();
            w.add("l", double("dl")).unwrap();
            w.add("r", double("dr")).unwrap();
            w.add("j", Arc::new(sum)).unwrap();
            w.link("s", "out", "l", "in").unwrap();
            w.link("s", "out", "r", "in").unwrap();
            w.link("l", "out", "j", "a").unwrap();
            w.link("r", "out", "j", "b").unwrap();
            w.declare_output("total", PortRef::new("j", "out")).unwrap();
            w
        }
        let ctx = Context::new();
        let par = Enactor::new().run(&make(), &BTreeMap::new(), &ctx).unwrap();
        let seq = Enactor::sequential().run(&make(), &BTreeMap::new(), &ctx).unwrap();
        assert_eq!(par.outputs["total"], Data::from(8.0));
        assert_eq!(seq.outputs["total"], par.outputs["total"]);
        assert_eq!(par.event("l").unwrap().wave, 1);
        assert_eq!(par.event("j").unwrap().wave, 2);
    }

    #[test]
    fn execution_errors_carry_node_name() {
        let bad = FnProcessor::new("boom", &[], &["out"], |_, _| {
            Err(WorkflowError::Execution { processor: "boom".into(), message: "kaput".into() })
        });
        let mut w = Workflow::new("t");
        w.add("b", Arc::new(bad)).unwrap();
        let err = Enactor::new().run(&w, &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, WorkflowError::Execution { .. }));
    }

    #[test]
    fn panicking_processor_in_parallel_wave_is_an_execution_error() {
        // Two independent nodes in one wave so the parallel path is taken;
        // one of them panics mid-execute.
        let ok = FnProcessor::new("ok", &[], &["out"], |_, _| {
            Ok(BTreeMap::from([("out".to_string(), Data::from(1.0))]))
        });
        let bad =
            FnProcessor::new("panics", &[], &["out"], |_, _| panic!("simulated worker crash"));
        let mut w = Workflow::new("t");
        w.add("good", Arc::new(ok)).unwrap();
        w.add("bad", Arc::new(bad)).unwrap();
        w.declare_output("x", PortRef::new("good", "out")).unwrap();
        let err = Enactor::new().run(&w, &BTreeMap::new(), &Context::new()).unwrap_err();
        match err {
            WorkflowError::Execution { processor, message } => {
                assert_eq!(processor, "bad");
                assert!(message.contains("simulated worker crash"), "message: {message}");
            }
            other => panic!("expected Execution error, got {other:?}"),
        }
    }

    #[test]
    fn panicking_processor_in_sequential_run_is_an_execution_error() {
        let bad = FnProcessor::new("panics", &[], &["out"], |_, _| panic!("sequential crash"));
        let mut w = Workflow::new("t");
        w.add("bad", Arc::new(bad)).unwrap();
        let err = Enactor::sequential().run(&w, &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(
            matches!(err, WorkflowError::Execution { ref processor, .. } if processor == "bad")
        );
    }

    #[test]
    fn missing_workflow_input_is_reported() {
        let mut w = Workflow::new("t");
        w.add("u", upper()).unwrap();
        w.declare_input("text", PortRef::new("u", "in")).unwrap();
        let err = Enactor::new().run(&w, &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, WorkflowError::MissingInput { .. }));
    }

    #[test]
    fn context_resources_reach_processors() {
        let counter = Arc::new(AtomicUsize::new(0));
        let p = FnProcessor::new("bump", &[], &["out"], |_, ctx| {
            let c = ctx.require::<AtomicUsize>("counter", "bump")?;
            c.fetch_add(1, Ordering::SeqCst);
            Ok(BTreeMap::from([("out".to_string(), Data::Null)]))
        });
        let mut w = Workflow::new("t");
        w.add("b", Arc::new(p)).unwrap();
        let mut ctx = Context::new();
        ctx.insert("counter", counter.clone());
        Enactor::new().run(&w, &BTreeMap::new(), &ctx).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn span_tree_is_well_formed_under_parallel_enactment() {
        // A wide wave of independent nodes with implicit iteration, so
        // several workers record node + invocation spans concurrently.
        let mut w = Workflow::new("wide");
        for i in 0..6 {
            w.add(format!("u{i}"), upper()).unwrap();
            w.declare_input(format!("t{i}"), PortRef::new(format!("u{i}"), "in")).unwrap();
            w.declare_output(format!("r{i}"), PortRef::new(format!("u{i}"), "out")).unwrap();
        }
        let inputs: BTreeMap<String, Data> = (0..6)
            .map(|i| (format!("t{i}"), Data::list(["a".into(), "b".into(), "c".into()])))
            .collect();
        let report = Enactor::new().run(&w, &inputs, &Context::new()).unwrap();
        let trace = report.trace();
        // every span closed, every parent exists, intervals nest
        trace.validate().unwrap();
        // exactly one root: the view span
        let roots: Vec<_> = trace.roots().collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "view:wide");
        assert_eq!(roots[0].kind, SpanKind::View);
        // one wave with 6 node children, each with 3 invocation spans
        let waves = trace.children(roots[0].id);
        assert_eq!(waves.len(), 1);
        let nodes = trace.children(waves[0].id);
        assert_eq!(nodes.len(), 6);
        for node in &nodes {
            assert_eq!(node.kind, SpanKind::Node);
            let invocations = trace.children(node.id);
            assert_eq!(invocations.len(), 3);
            assert!(invocations.iter().all(|s| s.kind == SpanKind::Invocation));
        }
        // events link back to their node spans
        for event in &report.events {
            let span = report.trace().span(event.span.unwrap()).unwrap();
            assert_eq!(span.name, format!("node:{}", event.node));
        }
        // span ids are unique across workers
        let mut ids: Vec<u64> = trace.spans().iter().map(|s| s.id.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), trace.len());
    }

    #[test]
    fn events_are_sorted_and_event_lookup_is_indexed() {
        let mut w = Workflow::new("t");
        // nodes added in non-alphabetical order, one wave
        for name in ["zeta", "alpha", "mid"] {
            w.add(name, upper()).unwrap();
            w.declare_input(format!("in_{name}"), PortRef::new(name, "in")).unwrap();
            w.declare_output(format!("out_{name}"), PortRef::new(name, "out")).unwrap();
        }
        let inputs: BTreeMap<String, Data> =
            ["zeta", "alpha", "mid"].iter().map(|n| (format!("in_{n}"), "x".into())).collect();
        let report = Enactor::new().run(&w, &inputs, &Context::new()).unwrap();
        let order: Vec<&str> = report.events.iter().map(|e| e.node.as_str()).collect();
        assert_eq!(order, vec!["alpha", "mid", "zeta"]);
        for name in ["zeta", "alpha", "mid"] {
            assert_eq!(report.event(name).unwrap().node, name);
        }
        assert!(report.event("missing").is_none());
    }

    #[test]
    fn invocation_spans_are_capped() {
        let mut w = Workflow::new("t");
        w.add("u", upper()).unwrap();
        w.declare_input("text", PortRef::new("u", "in")).unwrap();
        w.declare_output("result", PortRef::new("u", "out")).unwrap();
        let big = Data::List((0..MAX_INVOCATION_SPANS + 10).map(|_| "x".into()).collect());
        let report = Enactor::new()
            .run(&w, &BTreeMap::from([("text".to_string(), big)]), &Context::new())
            .unwrap();
        let event = report.event("u").unwrap();
        assert_eq!(event.invocations, MAX_INVOCATION_SPANS + 10);
        let node_span = report.trace().span(event.span.unwrap()).unwrap();
        assert_eq!(
            node_span.attr("invocations.dropped"),
            Some(&qurator_telemetry::AttrValue::Int(10))
        );
        assert_eq!(report.trace().children(node_span.id).len(), MAX_INVOCATION_SPANS);
        report.trace().validate().unwrap();
    }

    #[test]
    fn trace_rendering() {
        let mut w = Workflow::new("t");
        w.add("u", upper()).unwrap();
        w.declare_input("text", PortRef::new("u", "in")).unwrap();
        let report = Enactor::new()
            .run(&w, &BTreeMap::from([("text".to_string(), "x".into())]), &Context::new())
            .unwrap();
        let trace = report.render_trace();
        assert!(trace.contains("upper"));
        assert!(trace.contains("total:"));
    }
}

#[cfg(test)]
mod iteration_strategy_tests {
    use super::*;
    use crate::processor::FnProcessor;
    use std::sync::Arc;

    fn pair_sum() -> Arc<dyn Processor> {
        Arc::new(FnProcessor::new("sum2", &[("a", 0), ("b", 0)], &["out"], |inputs, _| {
            let a = inputs["a"].as_number().unwrap();
            let b = inputs["b"].as_number().unwrap();
            Ok(BTreeMap::from([("out".to_string(), Data::from(a + b))]))
        }))
    }

    fn run_pairwise(a: Data, b: Data) -> (Data, usize) {
        let mut w = Workflow::new("t");
        w.add("s", pair_sum()).unwrap();
        w.declare_input("a", PortRef::new("s", "a")).unwrap();
        w.declare_input("b", PortRef::new("s", "b")).unwrap();
        w.declare_output("out", PortRef::new("s", "out")).unwrap();
        let report = Enactor::new()
            .run(&w, &BTreeMap::from([("a".to_string(), a), ("b".to_string(), b)]), &Context::new())
            .unwrap();
        (report.outputs["out"].clone(), report.event("s").unwrap().invocations)
    }

    #[test]
    fn equal_length_lists_zip_as_dot_product() {
        let a = Data::list([1i64.into(), 2i64.into(), 3i64.into()]);
        let b = Data::list([10i64.into(), 20i64.into(), 30i64.into()]);
        let (out, invocations) = run_pairwise(a, b);
        assert_eq!(out, Data::list([11.0.into(), 22.0.into(), 33.0.into()]));
        assert_eq!(invocations, 3, "dot product, not 9");
    }

    #[test]
    fn unequal_lengths_fall_back_to_cross_product() {
        let a = Data::list([1i64.into(), 2i64.into()]);
        let b = Data::list([10i64.into(), 20i64.into(), 30i64.into()]);
        let (out, invocations) = run_pairwise(a, b);
        assert_eq!(invocations, 6);
        // cross product nests: for each a, a list over b
        assert_eq!(
            out,
            Data::list([
                Data::list([11.0.into(), 21.0.into(), 31.0.into()]),
                Data::list([12.0.into(), 22.0.into(), 32.0.into()]),
            ])
        );
    }

    #[test]
    fn one_deep_one_scalar_iterates_the_deep_port() {
        let a = Data::list([1i64.into(), 2i64.into()]);
        let b = Data::from(100i64);
        let (out, invocations) = run_pairwise(a, b);
        assert_eq!(out, Data::list([101.0.into(), 102.0.into()]));
        assert_eq!(invocations, 2);
    }
}
