//! # qurator-expr
//!
//! The condition expression language for quality-view actions (reproduction
//! of *Quality Views*, VLDB 2006, §4.1 and §5.1).
//!
//! The paper's action operators evaluate boolean expressions over quality
//! evidence values and quality-assertion tags, e.g.:
//!
//! * `score < 3.2`
//! * `PIScoreClassification in { q:high, q:mid }`
//! * `ScoreClass in q:high, q:mid and HR_MC > 20` (the §5.1 filter)
//!
//! This crate provides the lexer, parser, typed AST, static type checker and
//! evaluator for that language:
//!
//! * relational operators `< <= > >= = == != <>`;
//! * set membership `x in a, b, c` (braces optional: `x in { a, b }`);
//! * boolean connectives `and`, `or`, `not` (case-insensitive) and `&& || !`;
//! * arithmetic `+ - * /` with standard precedence and parentheses;
//! * literals: numbers, single/double-quoted strings, `true`/`false`;
//! * identifiers: evidence/tag variables (`HR_MC`, `score`) and ontology
//!   terms with a namespace prefix (`q:high`), which evaluate to symbols.
//!
//! Missing evidence is a first-class concern (the paper's annotation maps
//! may carry null evidence values): any comparison or arithmetic over
//! [`Value::Null`] yields `Null`, and a `Null` condition outcome is treated
//! as *not accepted* by the action operators.
//!
//! ```
//! use qurator_expr::{parse, Env, Value};
//!
//! let expr = parse("ScoreClass in q:high, q:mid and HR_MC > 20").unwrap();
//! let mut env = Env::new();
//! env.bind("ScoreClass", Value::symbol("q:high"));
//! env.bind("HR_MC", Value::from(31.5));
//! assert!(expr.eval(&env).unwrap().as_accepted());
//! ```

mod ast;
mod eval;
mod lexer;
mod parser;
mod typecheck;
mod value;

pub use ast::{BinaryOp, Expr, UnaryOp};
pub use eval::Env;
pub use parser::parse;
pub use typecheck::{check, ExprType, TypeEnv};
pub use value::Value;

/// Errors from the expression layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// Lexical or syntactic error at a byte offset.
    Syntax { pos: usize, message: String },
    /// Static type error found by [`check`].
    Type(String),
    /// Runtime evaluation error.
    Eval(String),
}

impl std::fmt::Display for ExprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExprError::Syntax { pos, message } => {
                write!(f, "syntax error at offset {pos}: {message}")
            }
            ExprError::Type(m) => write!(f, "type error: {m}"),
            ExprError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for ExprError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ExprError>;
